//! Federation determinism contracts: S=1 byte-identity with the plain
//! engine, reproducible S=4 merged logs, checkpoint/resume equivalence,
//! and live cross-shard co-allocation.

use ecosched_core::{Perf, Price, ResourceRequest, TimeDelta, TimePoint};
use ecosched_engine::{ArrivalConfig, Engine, EngineConfig};
use ecosched_federation::{
    merge_shard_logs, Federation, FederationConfig, FederationRun, Placement, RoutePolicy,
};
use ecosched_select::Amp;
use ecosched_sim::{IntRange, JobGenConfig, RevocationConfig, SlotGenConfig};

/// The pinned E15 base scenario (the engine crate's default config): the
/// S=1 federation must reproduce the plain engine on it byte for byte.
fn base_config() -> EngineConfig {
    EngineConfig::default()
}

/// A churned variant of the base scenario (the E15 revocation arm).
fn churn_config() -> EngineConfig {
    EngineConfig {
        revocation: RevocationConfig::per_slot(0.08),
        ..EngineConfig::default()
    }
}

/// A federation whose shards are individually too small for most jobs:
/// 4-6 node requests over shards publishing 2-3 slots per cycle. The
/// cheapest-probe router finds no single-shard window early on and the
/// cross-shard path fires.
fn starved_config(shards: u32) -> FederationConfig {
    let base = EngineConfig {
        slot_gen: SlotGenConfig {
            slot_count: IntRange::new(2, 3),
            ..SlotGenConfig::default()
        },
        arrivals: ArrivalConfig::Poisson {
            mean_interarrival: 20.0,
            jobs: 16,
            job_gen: JobGenConfig {
                nodes: IntRange::new(4, 6),
                ..JobGenConfig::default()
            },
        },
        ..EngineConfig::default()
    };
    FederationConfig {
        route: RoutePolicy::CheapestProbe,
        cross_shard: true,
        ..FederationConfig::new(base, shards)
    }
}

/// The pinned merged-log hash of the S=1 federation over the default base
/// scenario at seed 42. Equal to the engine's own log hash only up to
/// re-tagging (the merged log carries shard indices); what is pinned here
/// is that neither the engine nor the merge layer drifts silently.
const PINNED_S1_ENGINE_LOG_HASH: &str = "d245a5529ef056e5";

#[test]
fn single_shard_is_byte_identical_to_the_engine() {
    for (config, seed) in [(base_config(), 42), (churn_config(), 1789)] {
        let engine = Engine::new(config.clone(), Amp::new()).unwrap();
        let engine_run = engine.run(seed).unwrap();

        let fed = Federation::new(FederationConfig::new(config, 1), Amp::new()).unwrap();
        let fed_run = fed.run(seed).unwrap();

        // Shard 0 *is* the engine: same log bytes, same report bytes.
        assert_eq!(fed_run.shards.len(), 1);
        assert_eq!(fed_run.shards[0].log.to_json(), engine_run.log.to_json());
        assert_eq!(
            fed_run.shards[0].report.to_json(),
            engine_run.report.to_json()
        );

        // The merged log is the engine log tagged with shard 0.
        assert_eq!(fed_run.merged.len(), engine_run.log.len());
        for (fed_entry, entry) in fed_run.merged.entries.iter().zip(&engine_run.log.entries) {
            assert_eq!(fed_entry.shard, 0);
            assert_eq!(
                (fed_entry.time, fed_entry.seq, fed_entry.event),
                (entry.time, entry.seq, entry.event)
            );
        }
        assert_eq!(fed_run.report.jobs_offered, engine_run.report.jobs_arrived);
    }
}

#[test]
fn single_shard_engine_log_hash_is_pinned() {
    let fed = Federation::new(FederationConfig::new(base_config(), 1), Amp::new()).unwrap();
    let run = fed.run(42).unwrap();
    assert_eq!(
        run.shards[0].report.log_hash, PINNED_S1_ENGINE_LOG_HASH,
        "the S=1 federation no longer reproduces the pinned engine log; \
         if the engine changed intentionally, re-pin this hash"
    );
}

#[test]
fn market_representation_is_invisible_to_the_federation() {
    // The interval-vs-flat A/B at the topmost layer: the S=1 cell must
    // reproduce the pinned hash under *both* market representations, and
    // a 4-shard cross-shard federation must merge byte-identical logs.
    for interval_market in [true, false] {
        let config = EngineConfig {
            interval_market,
            ..base_config()
        };
        let fed = Federation::new(FederationConfig::new(config, 1), Amp::new()).unwrap();
        let run = fed.run(42).unwrap();
        assert_eq!(
            run.shards[0].report.log_hash, PINNED_S1_ENGINE_LOG_HASH,
            "interval_market={interval_market}: pinned S=1 hash lost"
        );
    }

    let run_with = |interval_market: bool| {
        let mut config = starved_config(4);
        config.base.interval_market = interval_market;
        let fed = Federation::new(config, Amp::new()).unwrap();
        fed.run(23).unwrap()
    };
    let interval = run_with(true);
    let flat = run_with(false);
    assert_eq!(interval.merged.to_json(), flat.merged.to_json());
    assert_eq!(interval.report.to_json(), flat.report.to_json());
}

#[test]
fn multi_shard_merged_log_is_reproducible_and_sorted() {
    for policy in [
        RoutePolicy::RoundRobin,
        RoutePolicy::LeastBacklog,
        RoutePolicy::CheapestProbe,
    ] {
        let config = FederationConfig {
            route: policy,
            ..FederationConfig::new(base_config(), 4)
        };
        let fed = Federation::new(config, Amp::new()).unwrap();
        let first = fed.run(7).unwrap();
        let second = fed.run(7).unwrap();

        assert_eq!(
            first.merged.to_json(),
            second.merged.to_json(),
            "{policy:?}: re-run diverged"
        );
        assert_eq!(first.report.to_json(), second.report.to_json());
        assert!(first.merged.is_strictly_ordered());

        // The live merge equals the sorted union of the final shard logs.
        let logs: Vec<_> = first.shards.iter().map(|run| &run.log).collect();
        assert_eq!(first.merged, merge_shard_logs(&logs));
        let total: usize = first.shards.iter().map(|run| run.log.len()).sum();
        assert_eq!(first.merged.len(), total);

        // Every offered job was routed somewhere.
        let routed: u64 = first.report.routing.routed.iter().sum();
        assert_eq!(
            routed + first.report.routing.cross_shard_committed,
            first.report.jobs_offered,
            "{policy:?}: offered jobs leaked"
        );
    }
}

#[test]
fn round_robin_spreads_jobs_evenly() {
    let config = FederationConfig {
        route: RoutePolicy::RoundRobin,
        ..FederationConfig::new(base_config(), 4)
    };
    let fed = Federation::new(config, Amp::new()).unwrap();
    let run = fed.run(11).unwrap();
    let lo = run.report.routing.routed.iter().min().copied().unwrap();
    let hi = run.report.routing.routed.iter().max().copied().unwrap();
    assert!(
        hi - lo <= 1,
        "round robin skewed: {:?}",
        run.report.routing.routed
    );
}

#[test]
fn checkpoint_resume_reproduces_the_merged_log() {
    let config = starved_config(4);
    let fed = Federation::new(config.clone(), Amp::new()).unwrap();
    let baseline = fed.run(23).unwrap();

    // Kill after a third of the merged events, checkpoint, resume on a
    // freshly built federation, and run to the end.
    let kill_at = baseline.merged.len() / 3;
    let mut state = fed.start(23);
    for _ in 0..kill_at {
        fed.step(&mut state).unwrap().expect("baseline ran further");
    }
    let checkpoint = fed.checkpoint(&state);
    drop(state);

    let rebuilt = Federation::new(config, Amp::new()).unwrap();
    let mut resumed = rebuilt.resume(&checkpoint).unwrap();
    while rebuilt.step(&mut resumed).unwrap().is_some() {}
    let recovered = rebuilt.finish(resumed);

    assert_eq!(recovered.merged.to_json(), baseline.merged.to_json());
    assert_eq!(recovered.report.to_json(), baseline.report.to_json());
}

#[test]
fn resume_refuses_a_foreign_checkpoint() {
    let fed = Federation::new(starved_config(4), Amp::new()).unwrap();
    let state = fed.start(23);
    let checkpoint = fed.checkpoint(&state);

    let other = Federation::new(starved_config(2), Amp::new()).unwrap();
    assert!(other.resume(&checkpoint).is_err());
}

/// A two-shard market where the cross-shard split is the only way to
/// host a wide job: each shard publishes at most 3 slots, all starting
/// exactly at the cycle tick (`same_start_probability` 1.0 with no
/// start gap), so the alignment loop converges on the first round.
fn aligned_two_shard_config() -> FederationConfig {
    let base = EngineConfig {
        slot_gen: SlotGenConfig {
            slot_count: IntRange::new(2, 3),
            same_start_probability: 1.0,
            start_gap: IntRange::new(0, 0),
            ..SlotGenConfig::default()
        },
        arrivals: ArrivalConfig::External,
        ..EngineConfig::default()
    };
    FederationConfig {
        route: RoutePolicy::CheapestProbe,
        cross_shard: true,
        ..FederationConfig::new(base, 2)
    }
}

/// Four nodes over two shards that publish at most three slots each:
/// no single shard can host it, the `[2, 2]` split can.
fn wide_request() -> ResourceRequest {
    ResourceRequest::new(
        4,
        TimeDelta::new(20),
        Perf::from_f64(0.5),
        Price::from_credits(60),
    )
    .unwrap()
}

#[test]
fn cross_shard_coallocation_fires_when_no_shard_fits_alone() {
    let fed = Federation::new(aligned_two_shard_config(), Amp::new()).unwrap();
    let drive = || -> FederationRun {
        let mut state = fed.start(3);
        // Pop both shards' first `SlotPublished` so each market holds its
        // 2-3 slots, all starting at tick 0.
        fed.step(&mut state).unwrap().expect("shard 0 publishes");
        fed.step(&mut state).unwrap().expect("shard 1 publishes");
        let (fed_job, placement) = fed
            .submit(&mut state, wide_request(), TimePoint::new(0))
            .unwrap();
        assert_eq!(fed_job, 0);
        let Placement::Cross(window) = placement else {
            panic!("expected a cross-shard placement, got {placement:?}");
        };
        assert_eq!(window.fed_job, 0);
        assert_eq!(window.start, 0, "aligned starts converge at the tick");
        assert_eq!(window.parts.len(), 2, "the [2, 2] split spans both shards");
        for part in &window.parts {
            assert_eq!(part.window.start().ticks(), window.start);
            assert_eq!(part.window.slots().len(), 2);
        }
        let shards: Vec<u32> = window.parts.iter().map(|p| p.shard).collect();
        assert_eq!(shards, vec![0, 1], "one part per shard, in shard order");
        while fed.step(&mut state).unwrap().is_some() {}
        fed.finish(state)
    };

    let run = drive();
    assert_eq!(run.report.routing.cross_shard_committed, 1);
    assert_eq!(run.cross_shard.len(), 1);
    assert_eq!(run.report.jobs_offered, 1);
    assert_eq!(run.report.routing.fallback_submits, 0);
    assert_eq!(run.report.routing.align_rounds, 1, "converged first round");
    // Two-phase accounting: every reservation was committed or released.
    let routing = &run.report.routing;
    let committed_parts: u64 = run.cross_shard.iter().map(|w| w.parts.len() as u64).sum();
    assert_eq!(
        routing.reservations_reserved,
        committed_parts + routing.reservations_released,
        "reservations leaked: {routing:?}"
    );
    // Routing is atomic — nothing steps between reserve and commit, so
    // live runs can never lose a reservation to a strike.
    assert_eq!(run.report.reservations_broken, 0);
    // Both shard logs record the committed lease completing.
    for shard_run in &run.shards {
        assert!(
            shard_run.report.jobs_scheduled >= 1,
            "a shard missed its part of the cross-shard lease"
        );
    }
    // And the driven sequence is reproducible, co-allocation included.
    let again = drive();
    assert_eq!(run.merged.to_json(), again.merged.to_json());
    assert_eq!(run.report.to_json(), again.report.to_json());
}

/// Alignment slack is what makes co-allocation live in jittered markets:
/// independently seeded shards almost never publish slots at exactly
/// equal ticks, so the exact fixed point (tolerance 0) starves while a
/// tolerant federation commits splits. Either way completions stay
/// federation-level — sibling parts fold back into one job.
#[test]
fn align_tolerance_unlocks_commits_in_jittered_markets() {
    let run_at = |tolerance: i64| -> FederationRun {
        // The starved scenario with slightly richer shards ([5, 6] slots
        // per cycle instead of [2, 3]): enough future-start supply that
        // near-alignments exist, still too little for any single shard
        // to host a 4-6 node job outright.
        let mut config = FederationConfig {
            max_align_rounds: 16,
            align_tolerance: tolerance,
            ..starved_config(4)
        };
        config.base.slot_gen.slot_count = IntRange::new(5, 6);
        let fed = Federation::new(config, Amp::new()).unwrap();
        fed.run(7).unwrap()
    };

    let strict = run_at(0);
    let slack = run_at(60);
    assert!(
        slack.report.routing.cross_shard_committed > strict.report.routing.cross_shard_committed,
        "slack {} must beat strict {}",
        slack.report.routing.cross_shard_committed,
        strict.report.routing.cross_shard_committed
    );
    assert!(slack.report.routing.cross_shard_committed >= 1);
    for run in [&strict, &slack] {
        assert!(
            run.report.jobs_completed <= run.report.jobs_offered,
            "split parts must fold into one completion: {} > {}",
            run.report.jobs_completed,
            run.report.jobs_offered
        );
        let routing = &run.report.routing;
        let committed_parts: u64 = run.cross_shard.iter().map(|w| w.parts.len() as u64).sum();
        assert_eq!(
            routing.reservations_reserved,
            committed_parts + routing.reservations_released,
            "reservations leaked: {routing:?}"
        );
    }
    // Every committed window respects the slack bound, and its launch
    // tick is the latest part start.
    for window in &slack.cross_shard {
        let starts: Vec<i64> = window
            .parts
            .iter()
            .map(|p| p.window.start().ticks())
            .collect();
        let latest = starts.iter().copied().max().unwrap();
        let earliest = starts.iter().copied().min().unwrap();
        assert!(latest - earliest <= 60, "spread over tolerance: {starts:?}");
        assert_eq!(window.start, latest);
    }
    // Reproducible, slack included.
    let again = run_at(60);
    assert_eq!(slack.merged.to_json(), again.merged.to_json());
    assert_eq!(slack.report.to_json(), again.report.to_json());
}
