//! The federation observability A/B contract: a live recorder (federation
//! handle plus per-shard engine handles) must be invisible to the run —
//! byte-identical merged logs and reports — while the registry's mirrored
//! routing counters agree with the checkpointed `RouteCounters`.

use ecosched_engine::{ArrivalConfig, EngineConfig, EngineIds, EngineObs};
use ecosched_federation::{
    FedIds, Federation, FederationConfig, FederationObs, FederationRun, RoutePolicy,
};
use ecosched_obs::{Recorder, RegistryBuilder};
use ecosched_select::Amp;
use ecosched_sim::{IntRange, JobGenConfig, RevocationConfig, SlotGenConfig};

/// A 4-shard cheapest-probe federation with cross-shard co-allocation
/// live (shards starved so the two-phase path fires) and churn.
fn starved_config(shards: u32) -> FederationConfig {
    let base = EngineConfig {
        slot_gen: SlotGenConfig {
            slot_count: IntRange::new(2, 3),
            ..SlotGenConfig::default()
        },
        arrivals: ArrivalConfig::Poisson {
            mean_interarrival: 20.0,
            jobs: 16,
            job_gen: JobGenConfig {
                nodes: IntRange::new(4, 6),
                ..JobGenConfig::default()
            },
        },
        revocation: RevocationConfig::per_slot(0.05),
        ..EngineConfig::default()
    };
    FederationConfig {
        route: RoutePolicy::CheapestProbe,
        cross_shard: true,
        ..FederationConfig::new(base, shards)
    }
}

fn observed_federation(config: FederationConfig) -> Federation<Amp> {
    let shards = config.shards as usize;
    let mut b = RegistryBuilder::new();
    let fed_ids = FedIds::register(&mut b, shards);
    let shard_ids: Vec<EngineIds> = (0..shards)
        .map(|s| EngineIds::register(&mut b, Some(s as u32)))
        .collect();
    let rec = Recorder::new(b.build());
    let fed_obs = FederationObs::new(rec.clone(), fed_ids);
    let shard_obs = shard_ids
        .into_iter()
        .map(|ids| EngineObs::new(rec.clone(), ids))
        .collect();
    Federation::new(config, Amp::new())
        .expect("valid config")
        .with_obs(fed_obs, shard_obs)
}

fn assert_recorder_invisible(
    config: FederationConfig,
    seed: u64,
) -> (Federation<Amp>, FederationRun) {
    let plain = Federation::new(config.clone(), Amp::new()).expect("valid config");
    let observed = observed_federation(config);
    assert_eq!(
        plain.config_fingerprint(),
        observed.config_fingerprint(),
        "the fingerprint must not see the recorder"
    );
    let a = plain.run(seed).expect("plain run");
    let b = observed.run(seed).expect("observed run");
    assert_eq!(a.report.merged_log_hash, b.report.merged_log_hash);
    assert_eq!(a.report.to_json(), b.report.to_json());
    for (pa, pb) in a.shards.iter().zip(&b.shards) {
        assert_eq!(pa.log.to_json(), pb.log.to_json());
    }
    (observed, b)
}

#[test]
fn recorder_is_outcome_invisible_single_shard() {
    let (fed, run) =
        assert_recorder_invisible(FederationConfig::new(EngineConfig::default(), 1), 42);
    let reg = fed
        .obs()
        .recorder()
        .expect("recorder attached")
        .registry()
        .expect("recorder on");
    let merged = reg
        .find_counter("ecosched_federation_merged_events_total", &[])
        .expect("registered");
    assert_eq!(reg.counter_value(merged), run.report.merged_events);
    // The shard-0 engine handle recorded too.
    let events = reg
        .find_counter("ecosched_engine_events_total", &[("shard", "0")])
        .expect("registered");
    assert_eq!(reg.counter_value(events), run.shards[0].report.event_count);
}

#[test]
fn recorder_is_outcome_invisible_sharded_cross_shard() {
    let (fed, run) = assert_recorder_invisible(starved_config(4), 42);
    let reg = fed
        .obs()
        .recorder()
        .expect("recorder attached")
        .registry()
        .expect("recorder on");
    // Mirrored counters equal the checkpointed RouteCounters exactly.
    let routing = &run.report.routing;
    for (shard, &routed) in routing.routed.iter().enumerate() {
        let shard = shard.to_string();
        let id = reg
            .find_counter("ecosched_federation_routed_total", &[("shard", &shard)])
            .expect("registered");
        assert_eq!(reg.counter_value(id), routed);
    }
    for (name, expected) in [
        ("ecosched_federation_probes_total", routing.probes),
        (
            "ecosched_federation_cross_shard_committed_total",
            routing.cross_shard_committed,
        ),
        (
            "ecosched_federation_fallback_submits_total",
            routing.fallback_submits,
        ),
        (
            "ecosched_federation_align_rounds_total",
            routing.align_rounds,
        ),
        (
            "ecosched_federation_reservations_reserved_total",
            routing.reservations_reserved,
        ),
        (
            "ecosched_federation_reservations_released_total",
            routing.reservations_released,
        ),
        (
            "ecosched_federation_merged_events_total",
            run.report.merged_events,
        ),
        (
            "ecosched_federation_jobs_offered_total",
            run.report.jobs_offered,
        ),
    ] {
        let id = reg.find_counter(name, &[]).expect("registered");
        assert_eq!(reg.counter_value(id), expected, "{name}");
    }
    assert!(
        routing.probes > 0,
        "cheapest-probe routing must have probed"
    );
}
