//! Two-phase cross-shard reservation failure paths: a revocation strike
//! between reserve and commit must release every sibling reservation —
//! no leaked leases, no lost market capacity on unbroken shards.

use ecosched_core::{Perf, Price, ResourceRequest, TimeDelta, Window};
use ecosched_engine::{ArrivalConfig, EngineConfig, RunState};
use ecosched_federation::{Federation, FederationConfig, FederationError, RoutePolicy};
use ecosched_select::{repair_search, Amp, ScanStats};
use ecosched_sim::RevocationConfig;
use proptest::prelude::*;

fn two_shard_config(revocation: RevocationConfig) -> FederationConfig {
    let base = EngineConfig {
        revocation,
        // No generator stream: the tests drive shards directly.
        arrivals: ArrivalConfig::External,
        ..EngineConfig::default()
    };
    FederationConfig {
        route: RoutePolicy::CheapestProbe,
        cross_shard: true,
        ..FederationConfig::new(base, 2)
    }
}

fn probe_request() -> ResourceRequest {
    ResourceRequest::new(
        1,
        TimeDelta::new(20),
        Perf::from_f64(0.5),
        Price::from_credits(60),
    )
    .unwrap()
}

/// Earliest feasible 1-node window on the shard's current market.
fn probe(state: &RunState) -> Option<Window> {
    let mut scan = ScanStats::new();
    repair_search(
        &Amp::new(),
        &probe_request(),
        state.last_time(),
        state.vacant(),
        &mut scan,
    )
}

fn vacant_ticks(state: &RunState) -> i64 {
    state
        .vacant()
        .iter()
        .map(|s| s.span().length().ticks())
        .sum()
}

/// Steps shard `shard` until its market is non-empty.
fn step_until_market(
    fed: &Federation<Amp>,
    state: &mut ecosched_federation::FederationState,
    shard: usize,
) {
    for _ in 0..256 {
        if !state.shard(shard).vacant().is_empty() {
            return;
        }
        fed.shard_engine(shard)
            .step(state.shard_mut(shard))
            .unwrap()
            .expect("shard drained before publishing a market");
    }
    panic!("no market after 256 steps");
}

#[test]
fn strike_between_reserve_and_commit_releases_all_siblings() {
    // Total revocation: the first strike after reserve breaks the hold.
    let fed = Federation::new(
        two_shard_config(RevocationConfig::per_slot(1.0)),
        Amp::new(),
    )
    .unwrap();
    let mut state = fed.start(5);
    step_until_market(&fed, &mut state, 0);
    step_until_market(&fed, &mut state, 1);

    let w0 = probe(state.shard(0)).expect("shard 0 hosts a window");
    let w1 = probe(state.shard(1)).expect("shard 1 hosts a window");
    let sibling_ticks_before = vacant_ticks(state.shard(1));

    // Phase one on both shards.
    let reserved = fed
        .reserve_cross_shard(&mut state, &[(0, w0), (1, w1)])
        .unwrap();
    assert_eq!(state.shard(0).reservations_held(), 1);
    assert_eq!(state.shard(1).reservations_held(), 1);

    // A strike lands on shard 0 while the reservation is held.
    for _ in 0..256 {
        if state.shard(0).reservations_broken() > 0 {
            break;
        }
        fed.shard_engine(0)
            .step(state.shard_mut(0))
            .unwrap()
            .expect("shard 0 drained before striking");
    }
    assert!(
        state.shard(0).reservations_broken() > 0,
        "per-slot 1.0 revocation never struck the reservation"
    );

    // Phase two must refuse and release everything — including the
    // intact sibling on shard 1.
    let at = state.last_time();
    let result = fed.commit_cross_shard(
        &mut state,
        0,
        reserved,
        &[probe_request(), probe_request()],
        at,
    );
    assert!(
        matches!(result, Err(FederationError::TwoPhaseAborted { fed_job: 0 })),
        "expected a two-phase abort, got {result:?}"
    );
    assert_eq!(state.shard(0).reservations_held(), 0, "leaked on shard 0");
    assert_eq!(state.shard(1).reservations_held(), 0, "leaked on shard 1");
    assert!(state.cross_shard().is_empty(), "no lease may exist");

    // Shard 1 was never struck between reserve and release: its market
    // must be bit-for-bit restored.
    assert_eq!(vacant_ticks(state.shard(1)), sibling_ticks_before);
}

#[test]
fn infeasible_sibling_releases_the_reservations_already_taken() {
    let fed = Federation::new(two_shard_config(RevocationConfig::none()), Amp::new()).unwrap();
    let mut state = fed.start(9);
    step_until_market(&fed, &mut state, 0);
    step_until_market(&fed, &mut state, 1);

    let w0 = probe(state.shard(0)).expect("shard 0 hosts a window");
    // Reserving the same window twice must fail phase one (the first
    // hold carved the capacity) and release the first hold.
    let before = vacant_ticks(state.shard(0));
    let result = fed.reserve_cross_shard(&mut state, &[(0, w0.clone()), (0, w0)]);
    assert!(matches!(
        result,
        Err(FederationError::Reserve { shard: 0, .. })
    ));
    assert_eq!(state.shard(0).reservations_held(), 0);
    assert_eq!(
        vacant_ticks(state.shard(0)),
        before,
        "failed phase one must restore the market exactly"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lease-table and market invariants of the two-phase protocol under
    /// random interleavings: after release the market is restored
    /// exactly; after commit the reservations are gone, the leases exist,
    /// and exactly the windows' capacity left the market.
    #[test]
    fn reserve_then_release_or_commit_preserves_invariants(
        seed in 0u64..1000,
        warmup in 0usize..40,
        commit in any::<bool>(),
    ) {
        let fed = Federation::new(
            two_shard_config(RevocationConfig::none()),
            Amp::new(),
        ).unwrap();
        let mut state = fed.start(seed);
        step_until_market(&fed, &mut state, 0);
        step_until_market(&fed, &mut state, 1);
        for _ in 0..warmup {
            if fed.step(&mut state).unwrap().is_none() {
                break;
            }
        }
        let (Some(w0), Some(w1)) = (probe(state.shard(0)), probe(state.shard(1))) else {
            // Market consumed at this interleaving — nothing to test.
            return;
        };
        let ticks_before = [vacant_ticks(state.shard(0)), vacant_ticks(state.shard(1))];
        let leases_before = [
            state.shard(0).report_so_far().jobs_scheduled,
            state.shard(1).report_so_far().jobs_scheduled,
        ];

        let reserved = fed
            .reserve_cross_shard(&mut state, &[(0, w0.clone()), (1, w1.clone())])
            .unwrap();
        prop_assert_eq!(state.shard(0).reservations_held(), 1);
        prop_assert_eq!(state.shard(1).reservations_held(), 1);

        if commit {
            let at = state.last_time();
            let window = fed
                .commit_cross_shard(
                    &mut state,
                    0,
                    reserved,
                    &[probe_request(), probe_request()],
                    at,
                )
                .unwrap();
            prop_assert_eq!(window.parts.len(), 2);
            for (shard, w) in [(0usize, &w0), (1usize, &w1)] {
                prop_assert_eq!(state.shard(shard).reservations_held(), 0);
                prop_assert_eq!(
                    state.shard(shard).report_so_far().jobs_scheduled,
                    leases_before[shard] + 1,
                    "commit must mint exactly one lease on shard {}", shard
                );
                let used: i64 = w
                    .slots()
                    .iter()
                    .map(|ws| w.used_span(ws).length().ticks())
                    .sum();
                prop_assert_eq!(
                    vacant_ticks(state.shard(shard)),
                    ticks_before[shard] - used,
                    "committed window must consume exactly its capacity on shard {}", shard
                );
            }
        } else {
            fed.release_cross_shard(&mut state, &reserved);
            for shard in 0..2 {
                prop_assert_eq!(state.shard(shard).reservations_held(), 0);
                prop_assert_eq!(
                    vacant_ticks(state.shard(shard)),
                    ticks_before[shard],
                    "release must restore shard {} exactly", shard
                );
                prop_assert_eq!(
                    state.shard(shard).report_so_far().jobs_scheduled,
                    leases_before[shard],
                    "release must not mint leases on shard {}", shard
                );
            }
        }
    }
}
