//! Property tests for the merged-log total order: random per-shard event
//! streams merge to a strictly ordered, duplicate-free sequence under
//! `(time, seq, shard)` that preserves every shard's stream verbatim.

use ecosched_engine::{Event, EventLog};
use ecosched_federation::{merge_shard_logs, FederatedLogEntry};
use proptest::prelude::*;

/// A valid shard stream: entries strictly increasing under `(time, seq)`
/// (the order a single engine pops and logs events in).
fn shard_stream() -> impl Strategy<Value = Vec<(i64, u64)>> {
    prop::collection::vec((0i64..200, 0u64..500), 0..48).prop_map(|mut pairs| {
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    })
}

fn build_log(stream: &[(i64, u64)]) -> EventLog {
    let mut log = EventLog::new();
    for (i, &(time, seq)) in stream.iter().enumerate() {
        log.push(time, seq, Event::JobArrival { job: i as u32 });
    }
    log
}

proptest! {
    /// The merge of any shard streams is strictly ordered under
    /// `(time, seq, shard)` — totally ordered and duplicate-free — and
    /// loses nothing.
    #[test]
    fn merge_is_totally_ordered_and_complete(
        streams in prop::collection::vec(shard_stream(), 1..5)
    ) {
        let logs: Vec<EventLog> = streams.iter().map(|s| build_log(s)).collect();
        let refs: Vec<&EventLog> = logs.iter().collect();
        let merged = merge_shard_logs(&refs);

        let total: usize = streams.iter().map(Vec::len).sum();
        prop_assert_eq!(merged.len(), total, "entries were lost or invented");
        prop_assert!(merged.is_strictly_ordered(), "order violated or duplicate key");

        for window in merged.entries.windows(2) {
            prop_assert!(window[0].key() < window[1].key());
        }
    }

    /// Restricting the merge to one shard returns that shard's stream
    /// verbatim — merging never reorders a shard against itself.
    #[test]
    fn merge_preserves_each_shard_stream(
        streams in prop::collection::vec(shard_stream(), 1..5)
    ) {
        let logs: Vec<EventLog> = streams.iter().map(|s| build_log(s)).collect();
        let refs: Vec<&EventLog> = logs.iter().collect();
        let merged = merge_shard_logs(&refs);

        for (shard, stream) in streams.iter().enumerate() {
            let filtered: Vec<(i64, u64)> = merged
                .entries
                .iter()
                .filter(|e| e.shard == shard as u32)
                .map(|e| (e.time, e.seq))
                .collect();
            prop_assert_eq!(&filtered, stream, "shard {} stream mangled", shard);
        }
    }

    /// The merge is idempotent: merging the merged log (as a single
    /// stream, re-keyed) keeps the exact entry sequence.
    #[test]
    fn merge_hash_is_a_pure_function_of_the_streams(
        streams in prop::collection::vec(shard_stream(), 1..4)
    ) {
        let logs: Vec<EventLog> = streams.iter().map(|s| build_log(s)).collect();
        let refs: Vec<&EventLog> = logs.iter().collect();
        let first = merge_shard_logs(&refs);
        let second = merge_shard_logs(&refs);
        prop_assert_eq!(first.fnv1a_hash(), second.fnv1a_hash());
        prop_assert_eq!(first.to_json(), second.to_json());
    }
}

#[test]
fn entry_key_orders_time_then_seq_then_shard() {
    let entry = |shard, time, seq| FederatedLogEntry {
        shard,
        time,
        seq,
        event: Event::JobArrival { job: 0 },
    };
    assert!(
        entry(3, 1, 9).key() < entry(0, 2, 0).key(),
        "time dominates"
    );
    assert!(
        entry(3, 5, 1).key() < entry(0, 5, 2).key(),
        "seq breaks time ties"
    );
    assert!(
        entry(0, 5, 2).key() < entry(1, 5, 2).key(),
        "shard breaks the rest"
    );
}
