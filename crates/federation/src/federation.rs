//! The superscheduler: S shard engines behind one submission surface,
//! with pluggable routing, two-phase cross-shard co-allocation, and a
//! deterministic merged event log.
//!
//! # Determinism under sharding
//!
//! Each shard is the unmodified single engine — a pure function of
//! `(config, seed, routed-arrival sequence)`. The federation adds no
//! randomness of its own: the offered stream is generated once from the
//! federation seed with the base engine's own generator, and every
//! routing decision reads only shard state that is itself deterministic.
//!
//! The merge loop maintains one invariant: **route before step**. An
//! arrival at time `t` is routed before any shard processes an event at
//! time ≥ `t` (ties go to the router). Under that invariant every event
//! the loop pops is the global minimum of the remaining events under
//! `(time, seq, shard)`, every push lands at a key strictly above
//! everything already popped, and therefore the live merged log equals
//! the sorted union of the final shard logs — which [`finish`] asserts
//! by recomputing the union with [`merge_shard_logs`].
//!
//! [`finish`]: Federation::finish

use ecosched_core::{Money, ResourceRequest, TimePoint, Window};
use ecosched_engine::{
    fnv1a_64, ArrivalState, Engine, EngineCheckpoint, EngineError, EngineRun, EventLog,
    ReserveError, RunState,
};
use ecosched_select::{repair_search, ScanStats, SlotSelector};
use ecosched_sim::ConfigError;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::coalloc::{split_nodes, CrossShardPart, CrossShardWindow, ReservedPart};
use crate::config::{FederationConfig, RoutePolicy};
use crate::merge::{merge_shard_logs, FederatedLogEntry, FederationLog};
use crate::obs::FederationObs;
use crate::report::{FederationReport, RouteCounters};
use ecosched_engine::EngineObs;

/// Errors from a federated run.
#[derive(Debug)]
pub enum FederationError {
    /// A shard engine failed.
    Engine {
        /// The failing shard.
        shard: u32,
        /// The underlying engine error.
        source: EngineError,
    },
    /// A two-phase reservation call failed unexpectedly.
    Reserve {
        /// The failing shard.
        shard: u32,
        /// The underlying reservation error.
        source: ReserveError,
    },
    /// Phase two found a sibling reservation broken; every reservation of
    /// the placement was released.
    TwoPhaseAborted {
        /// The federation job whose placement was abandoned.
        fed_job: u64,
    },
    /// The two-phase protocol was driven with inconsistent arguments.
    Protocol {
        /// What was inconsistent.
        detail: &'static str,
    },
    /// A checkpoint was taken under a different `(config, selector)`
    /// fingerprint.
    CheckpointMismatch {
        /// The fingerprint of this federation.
        expected: u64,
        /// The fingerprint in the checkpoint.
        found: u64,
    },
}

impl std::fmt::Display for FederationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FederationError::Engine { shard, source } => {
                write!(f, "shard {shard}: {source}")
            }
            FederationError::Reserve { shard, source } => {
                write!(f, "shard {shard} reservation: {source}")
            }
            FederationError::TwoPhaseAborted { fed_job } => {
                write!(
                    f,
                    "cross-shard placement of federation job {fed_job} aborted: \
                     a sibling reservation broke before commit"
                )
            }
            FederationError::Protocol { detail } => {
                write!(f, "two-phase protocol misuse: {detail}")
            }
            FederationError::CheckpointMismatch { expected, found } => {
                write!(
                    f,
                    "checkpoint fingerprint {found:#018x} does not match this \
                     federation's {expected:#018x}"
                )
            }
        }
    }
}

impl std::error::Error for FederationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FederationError::Engine { source, .. } => Some(source),
            FederationError::Reserve { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Where a submission landed.
#[derive(Debug, Clone, PartialEq)]
pub enum Placement {
    /// The whole job went to one shard.
    Single {
        /// The hosting shard.
        shard: u32,
        /// The shard-local job id.
        job: u32,
        /// The (possibly clamped) arrival time the shard recorded.
        time: TimePoint,
    },
    /// The job was split across shards by two-phase co-allocation.
    Cross(CrossShardWindow),
}

/// The resumable state of a federated run: the shard run states plus the
/// superscheduler's own stream cursor, router state, merged log, and
/// committed cross-shard placements.
#[derive(Debug)]
pub struct FederationState {
    seed: u64,
    shards: Vec<RunState>,
    /// The federation-level offered stream (empty for S=1, where shard 0
    /// drives its own arrivals, and for external-only service runs).
    arrivals: Vec<(TimePoint, ResourceRequest)>,
    next_arrival: usize,
    next_fed_job: u64,
    rr_cursor: u64,
    merged: FederationLog,
    cross_shard: Vec<CrossShardWindow>,
    counters: RouteCounters,
}

impl FederationState {
    /// The federation seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// One shard's run state.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    #[must_use]
    pub fn shard(&self, shard: usize) -> &RunState {
        &self.shards[shard]
    }

    /// Mutable access to one shard's run state — the surface the
    /// two-phase tests and the service layer drive shard-level
    /// operations through.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    #[must_use]
    pub fn shard_mut(&mut self, shard: usize) -> &mut RunState {
        &mut self.shards[shard]
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The merged log so far.
    #[must_use]
    pub fn merged(&self) -> &FederationLog {
        &self.merged
    }

    /// Cross-shard placements committed so far.
    #[must_use]
    pub fn cross_shard(&self) -> &[CrossShardWindow] {
        &self.cross_shard
    }

    /// Router counters so far.
    #[must_use]
    pub fn counters(&self) -> &RouteCounters {
        &self.counters
    }

    /// Federation jobs accepted so far (stream arrivals routed plus
    /// external submissions).
    #[must_use]
    pub fn jobs_offered(&self) -> u64 {
        self.next_fed_job
    }

    /// Total backlog (pending plus leased) across shards.
    #[must_use]
    pub fn backlog(&self) -> usize {
        self.shards.iter().map(RunState::backlog).sum()
    }

    /// The latest virtual time any shard has reached.
    #[must_use]
    pub fn last_time(&self) -> TimePoint {
        self.shards
            .iter()
            .map(RunState::last_time)
            .max()
            .unwrap_or(TimePoint::ZERO)
    }

    /// The `(time, seq, shard)` key of the globally next shard event, if
    /// any shard still has one queued.
    #[must_use]
    pub fn next_event_key(&self) -> Option<(i64, u64, u32)> {
        self.shards
            .iter()
            .enumerate()
            .filter_map(|(s, st)| st.next_event_key().map(|(t, q)| (t, q, s as u32)))
            .min()
    }

    /// Virtual time of the next thing the merge loop would process
    /// (stream arrival or shard event), if anything remains.
    #[must_use]
    pub fn next_time(&self) -> Option<TimePoint> {
        let arrival = self.arrivals.get(self.next_arrival).map(|(t, _)| *t);
        let event = self.next_event_key().map(|(t, _, _)| TimePoint::new(t));
        match (arrival, event) {
            (Some(a), Some(e)) => Some(a.min(e)),
            (Some(a), None) => Some(a),
            (None, e) => e,
        }
    }
}

/// What the merge loop does next.
enum NextAction {
    /// Route the next pending stream arrival.
    Route,
    /// Step the shard holding the globally earliest event.
    Step(usize),
}

/// A fully checkpointed federation: per-shard engine checkpoints plus the
/// router state, in one serializable container.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FederationCheckpoint {
    /// The federation seed.
    pub seed: u64,
    /// Fingerprint of `(config, selector)`; resume refuses a mismatch.
    pub config_fp: u64,
    /// Per-shard engine checkpoints, in shard order.
    pub shards: Vec<EngineCheckpoint>,
    /// The federation-level offered stream.
    pub arrivals: Vec<ArrivalState>,
    /// Stream arrivals already routed.
    pub next_arrival: u64,
    /// Federation jobs accepted so far.
    pub next_fed_job: u64,
    /// Round-robin router cursor.
    pub rr_cursor: u64,
    /// The merged log so far.
    pub merged: FederationLog,
    /// Cross-shard placements committed so far.
    pub cross_shard: Vec<CrossShardWindow>,
    /// Router counters so far.
    pub counters: RouteCounters,
}

/// The result of a drained federated run.
#[derive(Debug, Clone, PartialEq)]
pub struct FederationRun {
    /// The aggregate report.
    pub report: FederationReport,
    /// The merged, shard-tagged event log.
    pub merged: FederationLog,
    /// Every committed cross-shard placement.
    pub cross_shard: Vec<CrossShardWindow>,
    /// The per-shard engine runs (each with its own log and report).
    pub shards: Vec<EngineRun>,
}

/// The superscheduler: S shard engines, a routing policy, and the merge
/// loop that interleaves routing with shard stepping deterministically.
#[derive(Debug, Clone)]
pub struct Federation<S> {
    config: FederationConfig,
    selector: S,
    /// An engine over the *base* configuration — the arrival-stream
    /// generator for S>1 (and, for S=1, configured identically to the
    /// single shard).
    base: Engine<S>,
    shards: Vec<Engine<S>>,
    /// Observability handle — runtime state like the engine's: never
    /// serialized, absent from the fingerprint and checkpoints.
    obs: FederationObs,
}

impl<S: SlotSelector + Copy> Federation<S> {
    /// Creates a federation over a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] naming the first invalid field.
    pub fn new(config: FederationConfig, selector: S) -> Result<Self, ConfigError> {
        config.validate()?;
        let base = Engine::new(config.base.clone(), selector)?;
        let shards = (0..config.shards)
            .map(|s| Engine::new(config.shard_config(s), selector))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Federation {
            config,
            selector,
            base,
            shards,
            obs: FederationObs::off(),
        })
    }

    /// Attaches observability: a federation-level handle for routing
    /// counters and shard gauges, plus one engine handle per shard
    /// (pass [`EngineObs::off`] entries to skip shards). Extra entries
    /// beyond the shard count are ignored.
    #[must_use]
    pub fn with_obs(mut self, fed: FederationObs, shard_obs: Vec<EngineObs>) -> Self {
        self.obs = fed;
        for (engine, obs) in self.shards.iter_mut().zip(shard_obs) {
            engine.set_obs(obs);
        }
        self
    }

    /// In-place form of [`Self::with_obs`], for callers that built the
    /// federation before the recorder (the service session attaches
    /// observability only after boot replay, so recovery is never
    /// recorded as live traffic).
    pub fn set_obs(&mut self, fed: FederationObs, shard_obs: Vec<EngineObs>) {
        self.obs = fed;
        for (engine, obs) in self.shards.iter_mut().zip(shard_obs) {
            engine.set_obs(obs);
        }
    }

    /// The federation-level observability handle.
    #[must_use]
    pub fn obs(&self) -> &FederationObs {
        &self.obs
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &FederationConfig {
        &self.config
    }

    /// The engine of one shard.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    #[must_use]
    pub fn shard_engine(&self, shard: usize) -> &Engine<S> {
        &self.shards[shard]
    }

    /// FNV-1a 64 fingerprint of the federation configuration and selector
    /// name, with `base.threads` normalized to 1 (worker threads never
    /// change outcomes, so checkpoints replay across machines).
    #[must_use]
    pub fn config_fingerprint(&self) -> u64 {
        let mut normalized = self.config.clone();
        normalized.base.threads = 1;
        let json = serde_json::to_string(&normalized).unwrap_or_default();
        fnv1a_64(format!("{}|{json}", self.selector.name()).as_bytes())
    }

    /// Builds the initial federation state: starts every shard on its
    /// derived seed and, for S>1, generates the offered stream from the
    /// base configuration on the federation seed.
    #[must_use]
    pub fn start(&self, seed: u64) -> FederationState {
        let shards: Vec<RunState> = self
            .shards
            .iter()
            .enumerate()
            .map(|(s, engine)| engine.start(self.config.shard_seed(seed, s as u32)))
            .collect();
        let arrivals = if self.config.shards == 1 {
            Vec::new()
        } else {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            self.base.generate_arrivals(&mut rng)
        };
        let counters = RouteCounters::new(self.shards.len());
        FederationState {
            seed,
            shards,
            arrivals,
            next_arrival: 0,
            next_fed_job: 0,
            rr_cursor: 0,
            merged: FederationLog::new(),
            cross_shard: Vec::new(),
            counters,
        }
    }

    /// Runs the federation to queue exhaustion.
    ///
    /// Deterministic: a pure function of `(config, seed)`; two identical
    /// calls produce byte-identical [`FederationRun`]s.
    ///
    /// # Errors
    ///
    /// Propagates the first shard failure.
    pub fn run(&self, seed: u64) -> Result<FederationRun, FederationError> {
        let mut state = self.start(seed);
        while self.step(&mut state)?.is_some() {}
        Ok(self.finish(state))
    }

    /// What the merge loop does next: route the pending stream arrival if
    /// it is due at or before the earliest shard event (route-before-step,
    /// ties to the router), otherwise step the shard holding the globally
    /// earliest `(time, seq, shard)` event.
    fn next_action(&self, state: &FederationState) -> Option<NextAction> {
        let arrival = state
            .arrivals
            .get(state.next_arrival)
            .map(|(t, _)| t.ticks());
        let head = state.next_event_key();
        match (arrival, head) {
            (Some(at), Some((ht, _, _))) if at <= ht => Some(NextAction::Route),
            (Some(_), None) => Some(NextAction::Route),
            (_, Some((_, _, shard))) => Some(NextAction::Step(shard as usize)),
            (None, None) => None,
        }
    }

    /// Advances the federation by exactly one merged-log entry: routes
    /// every stream arrival that is due, then steps the shard holding the
    /// globally earliest event. Returns `None` when the run has drained.
    ///
    /// # Errors
    ///
    /// Propagates the first shard failure.
    pub fn step(
        &self,
        state: &mut FederationState,
    ) -> Result<Option<FederatedLogEntry>, FederationError> {
        self.advance_one(state, None)
    }

    /// Processes merge-loop work with virtual time at most `target`;
    /// returns the number of merged entries produced. The service daemon
    /// uses this to pace shards against the wall clock.
    ///
    /// # Errors
    ///
    /// Propagates the first shard failure.
    pub fn advance_to(
        &self,
        state: &mut FederationState,
        target: TimePoint,
    ) -> Result<u64, FederationError> {
        let mut processed = 0;
        while self.advance_one(state, Some(target.ticks()))?.is_some() {
            processed += 1;
        }
        Ok(processed)
    }

    /// One iteration of the merge loop, bounded by an optional time
    /// limit. Routing consumes arrivals without producing entries, so the
    /// loop continues until a shard steps (one entry) or nothing due
    /// remains.
    fn advance_one(
        &self,
        state: &mut FederationState,
        limit: Option<i64>,
    ) -> Result<Option<FederatedLogEntry>, FederationError> {
        loop {
            let due = |time: i64| limit.is_none_or(|l| time <= l);
            match self.next_action(state) {
                None => return Ok(None),
                Some(NextAction::Route) => {
                    let (at, request) = state.arrivals[state.next_arrival];
                    if !due(at.ticks()) {
                        return Ok(None);
                    }
                    state.next_arrival += 1;
                    let fed_job = state.next_fed_job;
                    state.next_fed_job += 1;
                    self.place(state, fed_job, request, at)?;
                    self.obs.sync(state);
                }
                Some(NextAction::Step(shard)) => {
                    let Some((time, _, _)) = state.next_event_key() else {
                        return Ok(None);
                    };
                    if !due(time) {
                        return Ok(None);
                    }
                    let engine = &self.shards[shard];
                    let stepped = engine.step(&mut state.shards[shard]).map_err(|source| {
                        FederationError::Engine {
                            shard: shard as u32,
                            source,
                        }
                    })?;
                    let Some(entry) = stepped else {
                        // The head vanished between peek and pop — cannot
                        // happen single-threaded; treat as drained.
                        return Ok(None);
                    };
                    let fed = FederatedLogEntry {
                        shard: shard as u32,
                        time: entry.time,
                        seq: entry.seq,
                        event: entry.event,
                    };
                    state.merged.push(fed);
                    self.obs.sync(state);
                    return Ok(Some(fed));
                }
            }
        }
    }

    /// Submits an external job to the federation (the service-mode
    /// surface): assigns a federation job id, routes it under the
    /// configured policy, and returns where it landed.
    ///
    /// With more than one shard the arrival time is clamped to no earlier
    /// than the last merged entry's tick, so probes anchor at a tick the
    /// merged log has reached; the per-shard submit then nudges past the
    /// frontier only when the injected arrival's `(time, seq, shard)` key
    /// would otherwise sort before an already-merged entry. With one
    /// shard the engine's own last-time clamp is already exact.
    ///
    /// # Errors
    ///
    /// Propagates shard failures from routing.
    pub fn submit(
        &self,
        state: &mut FederationState,
        request: ResourceRequest,
        at: TimePoint,
    ) -> Result<(u64, Placement), FederationError> {
        let eff = if self.config.shards > 1 {
            match state.merged.entries.last() {
                Some(last) => at.max(TimePoint::new(last.time)),
                None => at,
            }
        } else {
            at
        };
        let fed_job = state.next_fed_job;
        state.next_fed_job += 1;
        let placement = self.place(state, fed_job, request, eff)?;
        self.obs.sync(state);
        Ok((fed_job, placement))
    }

    /// The earliest tick at or after `at` where injecting an arrival into
    /// `shard` keeps the merged log strictly ordered: at the frontier
    /// tick itself when the arrival's predicted `(seq, shard)` still
    /// sorts after the last merged entry, one past it otherwise.
    fn order_safe_time(&self, state: &FederationState, shard: usize, at: TimePoint) -> TimePoint {
        let Some(last) = state.merged.entries.last() else {
            return at;
        };
        let at = at.max(TimePoint::new(last.time));
        if at.ticks() > last.time {
            return at;
        }
        let seq = state.shards[shard].next_event_seq();
        if (seq, shard as u32) > (last.seq, last.shard) {
            at
        } else {
            TimePoint::new(last.time + 1)
        }
    }

    /// Replays a recorded routing decision: submits directly to `shard`
    /// with no policy evaluation. The service WAL records `(shard, time)`
    /// per accepted job precisely so recovery can re-inject without
    /// re-deciding.
    ///
    /// # Errors
    ///
    /// [`FederationError::Protocol`] if `shard` is out of range.
    pub fn submit_routed(
        &self,
        state: &mut FederationState,
        shard: u32,
        request: ResourceRequest,
        at: TimePoint,
    ) -> Result<(u32, TimePoint), FederationError> {
        let index = shard as usize;
        if index >= self.shards.len() {
            return Err(FederationError::Protocol {
                detail: "routed shard index out of range",
            });
        }
        state.next_fed_job += 1;
        state.counters.routed[index] += 1;
        let landed = self.shards[index].submit(&mut state.shards[index], request, at);
        self.obs.sync(state);
        Ok(landed)
    }

    /// Routes one job: picks a shard under the policy, or — when
    /// cheapest-probe finds no feasible shard — attempts cross-shard
    /// co-allocation before falling back to a least-backlog submit.
    fn place(
        &self,
        state: &mut FederationState,
        fed_job: u64,
        request: ResourceRequest,
        at: TimePoint,
    ) -> Result<Placement, FederationError> {
        let chosen = match self.config.route {
            RoutePolicy::RoundRobin => {
                let shard = (state.rr_cursor % self.shards.len() as u64) as usize;
                state.rr_cursor += 1;
                Some(shard)
            }
            RoutePolicy::LeastBacklog => self.least_backlog(state),
            RoutePolicy::CheapestProbe => {
                state.counters.probes += self.shards.len() as u64;
                self.cheapest_shard(&state.shards, &request, at)
            }
        };
        if let Some(shard) = chosen {
            let at = self.order_safe_time(state, shard, at);
            let (job, time) = self.shards[shard].submit(&mut state.shards[shard], request, at);
            state.counters.routed[shard] += 1;
            return Ok(Placement::Single {
                shard: shard as u32,
                job,
                time,
            });
        }
        // Cheapest-probe found no host. Coscheduled jobs may still fit in
        // pieces: try the two-phase cross-shard path.
        if self.config.cross_shard && self.shards.len() > 1 {
            if let Some(window) = self.try_cross_shard(state, fed_job, &request, at)? {
                return Ok(Placement::Cross(window));
            }
        }
        // Last resort: park it on the least-loaded shard and let that
        // shard's own cycles place it when capacity appears.
        state.counters.fallback_submits += 1;
        let shard = self.least_backlog(state).unwrap_or(0);
        let at = self.order_safe_time(state, shard, at);
        let (job, time) = self.shards[shard].submit(&mut state.shards[shard], request, at);
        state.counters.routed[shard] += 1;
        Ok(Placement::Single {
            shard: shard as u32,
            job,
            time,
        })
    }

    /// The cheapest-probe core: scans every shard's vacant market for
    /// the earliest feasible window and returns the shard offering the
    /// cheapest one (ties by shard index).
    fn cheapest_shard(
        &self,
        shards: &[RunState],
        request: &ResourceRequest,
        at: TimePoint,
    ) -> Option<usize> {
        let mut best: Option<(Money, usize)> = None;
        for (shard, shard_state) in shards.iter().enumerate() {
            let mut scan = ScanStats::new();
            if let Some(window) =
                repair_search(&self.selector, request, at, shard_state.vacant(), &mut scan)
            {
                let key = (window.total_cost(), shard);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
        best.map(|(_, shard)| shard)
    }

    /// Probes every shard's vacant market for the cheapest feasible
    /// window *without* routing, reserving, or mutating anything — the
    /// read-only core of [`RoutePolicy::CheapestProbe`], exposed so
    /// clients (and benchmarks) can ask "where would this job land?"
    /// before submitting. Returns the winning shard index, or `None`
    /// when no single shard can host the request.
    #[must_use]
    pub fn probe_cheapest(
        &self,
        state: &FederationState,
        request: &ResourceRequest,
        at: TimePoint,
    ) -> Option<u32> {
        self.cheapest_shard(&state.shards, request, at)
            .map(|s| s as u32)
    }

    /// The shard with the fewest uncompleted jobs, ties to the lowest
    /// index.
    fn least_backlog(&self, state: &FederationState) -> Option<usize> {
        (0..self.shards.len()).min_by_key(|&s| (state.shards[s].backlog(), s))
    }

    /// The cross-shard alignment fixed point: split the job across
    /// shards, probe each shard for its earliest sub-window at or after
    /// the anchor and reserve it (phase one), and commit only when the
    /// start spread is within [`FederationConfig::align_tolerance`]
    /// (phase two) — exact agreement at the default tolerance of zero.
    /// Misaligned rounds release everything and retry from the latest
    /// start; infeasible shards or round exhaustion release everything
    /// and give up.
    fn try_cross_shard(
        &self,
        state: &mut FederationState,
        fed_job: u64,
        request: &ResourceRequest,
        at: TimePoint,
    ) -> Result<Option<CrossShardWindow>, FederationError> {
        let splits = split_nodes(request.nodes(), self.config.shards);
        if splits.len() < 2 {
            return Ok(None);
        }
        let mut subs = Vec::with_capacity(splits.len());
        for nodes in &splits {
            match ResourceRequest::new(
                *nodes,
                request.wall_time(),
                request.min_perf(),
                request.price_cap(),
            ) {
                Ok(sub) => subs.push(sub),
                Err(_) => return Ok(None),
            }
        }
        let mut anchor = at;
        for _round in 0..self.config.max_align_rounds {
            state.counters.align_rounds += 1;
            let mut reserved: Vec<ReservedPart> = Vec::with_capacity(subs.len());
            let mut feasible = true;
            for (shard, sub) in subs.iter().enumerate() {
                state.counters.probes += 1;
                let mut scan = ScanStats::new();
                let window = repair_search(
                    &self.selector,
                    sub,
                    anchor,
                    state.shards[shard].vacant(),
                    &mut scan,
                );
                let Some(window) = window else {
                    feasible = false;
                    break;
                };
                match self.shards[shard].reserve(&mut state.shards[shard], &window) {
                    Ok(reservation) => {
                        state.counters.reservations_reserved += 1;
                        reserved.push(ReservedPart {
                            shard: shard as u32,
                            reservation,
                            window,
                        });
                    }
                    Err(source) => {
                        self.release_cross_shard(state, &reserved);
                        return Err(FederationError::Reserve {
                            shard: shard as u32,
                            source,
                        });
                    }
                }
            }
            if !feasible {
                self.release_cross_shard(state, &reserved);
                return Ok(None);
            }
            let starts: Vec<i64> = reserved.iter().map(|p| p.window.start().ticks()).collect();
            let latest = starts.iter().copied().max().unwrap_or(anchor.ticks());
            let earliest = starts.iter().copied().min().unwrap_or(anchor.ticks());
            if latest - earliest <= self.config.align_tolerance {
                let window = self.commit_cross_shard(state, fed_job, reserved, &subs, at)?;
                return Ok(Some(window));
            }
            // Misaligned: release the round's holds and retry anchored at
            // the latest start — the classic co-allocation fixed point.
            self.release_cross_shard(state, &reserved);
            anchor = TimePoint::new(latest);
        }
        Ok(None)
    }

    /// Phase one over an explicit shard/window list: reserve every
    /// window, releasing the ones already taken if any shard refuses.
    ///
    /// # Errors
    ///
    /// [`FederationError::Reserve`] from the refusing shard (all sibling
    /// reservations are released first).
    pub fn reserve_cross_shard(
        &self,
        state: &mut FederationState,
        parts: &[(u32, Window)],
    ) -> Result<Vec<ReservedPart>, FederationError> {
        let mut reserved = Vec::with_capacity(parts.len());
        for (shard, window) in parts {
            let index = *shard as usize;
            if index >= self.shards.len() {
                self.release_cross_shard(state, &reserved);
                return Err(FederationError::Protocol {
                    detail: "reserve shard index out of range",
                });
            }
            match self.shards[index].reserve(&mut state.shards[index], window) {
                Ok(reservation) => {
                    state.counters.reservations_reserved += 1;
                    reserved.push(ReservedPart {
                        shard: *shard,
                        reservation,
                        window: window.clone(),
                    });
                }
                Err(source) => {
                    self.release_cross_shard(state, &reserved);
                    return Err(FederationError::Reserve {
                        shard: *shard,
                        source,
                    });
                }
            }
        }
        Ok(reserved)
    }

    /// Phase two: commit every reservation of one cross-shard placement,
    /// or — if any sibling broke while held (a revocation strike between
    /// the phases) — release them all and commit nothing.
    ///
    /// # Errors
    ///
    /// [`FederationError::TwoPhaseAborted`] when a sibling broke (all
    /// reservations released, no leases created);
    /// [`FederationError::Protocol`] on mismatched arguments.
    pub fn commit_cross_shard(
        &self,
        state: &mut FederationState,
        fed_job: u64,
        reserved: Vec<ReservedPart>,
        requests: &[ResourceRequest],
        at: TimePoint,
    ) -> Result<CrossShardWindow, FederationError> {
        if reserved.is_empty() || reserved.len() != requests.len() {
            self.release_cross_shard(state, &reserved);
            return Err(FederationError::Protocol {
                detail: "commit needs one request per reserved part",
            });
        }
        let intact = reserved.iter().all(|part| {
            state.shards[part.shard as usize]
                .reservation(part.reservation)
                .is_some_and(|r| !r.is_broken())
        });
        if !intact {
            self.release_cross_shard(state, &reserved);
            return Err(FederationError::TwoPhaseAborted { fed_job });
        }
        // The synchronized launch tick: the latest part start. Under
        // exact alignment (tolerance 0) every part starts here; with
        // slack, earlier parts hold their nodes until the last one is up.
        let start = reserved
            .iter()
            .map(|part| part.window.start().ticks())
            .max()
            .unwrap_or_else(|| at.ticks());
        let mut parts = Vec::with_capacity(reserved.len());
        for (i, (part, request)) in reserved.iter().zip(requests).enumerate() {
            let shard = part.shard as usize;
            match self.shards[shard].commit_reservation(
                &mut state.shards[shard],
                part.reservation,
                *request,
                at,
            ) {
                Ok((job, lease)) => parts.push(CrossShardPart {
                    shard: part.shard,
                    job,
                    lease,
                    window: part.window.clone(),
                }),
                Err(source) => {
                    // Unreachable after the intact gate (nothing steps
                    // between gate and commit), but stay safe: release
                    // what is still held. Parts already committed remain
                    // ordinary single-shard leases.
                    self.release_cross_shard(state, &reserved[i + 1..]);
                    return Err(FederationError::Reserve {
                        shard: part.shard,
                        source,
                    });
                }
            }
        }
        let window = CrossShardWindow {
            fed_job,
            start,
            parts,
        };
        state.cross_shard.push(window.clone());
        state.counters.cross_shard_committed += 1;
        Ok(window)
    }

    /// Releases every still-held reservation in `parts` (broken ones are
    /// dropped without returning capacity — their windows are gone).
    pub fn release_cross_shard(&self, state: &mut FederationState, parts: &[ReservedPart]) {
        for part in parts {
            let shard = part.shard as usize;
            if shard >= self.shards.len() {
                continue;
            }
            if self.shards[shard]
                .release_reservation(&mut state.shards[shard], part.reservation)
                .is_ok()
            {
                state.counters.reservations_released += 1;
            }
        }
    }

    /// Closes the books: finishes every shard, folds the reports, and
    /// asserts the live merged log equals the sorted union of the final
    /// shard logs.
    #[must_use]
    pub fn finish(&self, state: FederationState) -> FederationRun {
        let FederationState {
            shards,
            merged,
            cross_shard,
            counters,
            next_fed_job,
            ..
        } = state;
        let reservations_broken: u64 = shards.iter().map(RunState::reservations_broken).sum();
        let shard_runs: Vec<EngineRun> = self
            .shards
            .iter()
            .zip(shards)
            .map(|(engine, shard_state)| engine.finish(shard_state))
            .collect();
        let logs: Vec<&EventLog> = shard_runs.iter().map(|run| &run.log).collect();
        debug_assert_eq!(
            merged,
            merge_shard_logs(&logs),
            "live merge diverged from the sorted union of shard logs"
        );
        let jobs_offered = if self.config.shards == 1 {
            shard_runs[0].report.jobs_arrived
        } else {
            next_fed_job
        };
        // A cross-shard job runs as one shard-level job per part, so the
        // raw sum over shard reports counts each committed split
        // `parts - 1` times too many. Fold the siblings back into one
        // federation-level completion.
        let extra_parts: u64 = cross_shard
            .iter()
            .map(|w| w.parts.len().saturating_sub(1) as u64)
            .sum();
        let raw_completed: u64 = shard_runs.iter().map(|r| r.report.jobs_completed).sum();
        let report = FederationReport {
            jobs_offered,
            jobs_completed: raw_completed.saturating_sub(extra_parts),
            backlog: shard_runs.iter().map(|r| r.report.backlog).sum(),
            routing: counters,
            reservations_broken,
            merged_events: merged.len() as u64,
            merged_log_hash: merged.fnv1a_hash(),
            shards: shard_runs.iter().map(|r| r.report.clone()).collect(),
        };
        FederationRun {
            report,
            merged,
            cross_shard,
            shards: shard_runs,
        }
    }

    /// Captures the full resumable state of an in-flight federated run:
    /// every shard's engine checkpoint plus the router state. Must not be
    /// called mid two-phase reservation (the routing action is atomic, so
    /// between [`Self::step`]s no reservations are ever held).
    #[must_use]
    pub fn checkpoint(&self, state: &FederationState) -> FederationCheckpoint {
        FederationCheckpoint {
            seed: state.seed,
            config_fp: self.config_fingerprint(),
            shards: self
                .shards
                .iter()
                .zip(&state.shards)
                .map(|(engine, shard_state)| engine.checkpoint(shard_state))
                .collect(),
            arrivals: state
                .arrivals
                .iter()
                .map(|(t, request)| ArrivalState {
                    time: t.ticks(),
                    request: *request,
                })
                .collect(),
            next_arrival: state.next_arrival as u64,
            next_fed_job: state.next_fed_job,
            rr_cursor: state.rr_cursor,
            merged: state.merged.clone(),
            cross_shard: state.cross_shard.clone(),
            counters: state.counters.clone(),
        }
    }

    /// Rebuilds a [`FederationState`] from a checkpoint taken by
    /// [`Self::checkpoint`] under the same configuration and selector.
    /// Stepping the resumed state reproduces exactly the merged entries
    /// the captured run would have produced.
    ///
    /// # Errors
    ///
    /// [`FederationError::CheckpointMismatch`] on a fingerprint mismatch,
    /// [`FederationError::Protocol`] on a shard-count mismatch, and shard
    /// resume failures verbatim.
    pub fn resume(
        &self,
        checkpoint: &FederationCheckpoint,
    ) -> Result<FederationState, FederationError> {
        let expected = self.config_fingerprint();
        if checkpoint.config_fp != expected {
            return Err(FederationError::CheckpointMismatch {
                expected,
                found: checkpoint.config_fp,
            });
        }
        if checkpoint.shards.len() != self.shards.len() {
            return Err(FederationError::Protocol {
                detail: "checkpoint shard count does not match the federation",
            });
        }
        if checkpoint.counters.routed.len() != self.shards.len() {
            return Err(FederationError::Protocol {
                detail: "checkpoint router counters do not match the shard count",
            });
        }
        let shards = self
            .shards
            .iter()
            .zip(&checkpoint.shards)
            .enumerate()
            .map(|(shard, (engine, cp))| {
                engine.resume(cp).map_err(|source| FederationError::Engine {
                    shard: shard as u32,
                    source,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FederationState {
            seed: checkpoint.seed,
            shards,
            arrivals: checkpoint
                .arrivals
                .iter()
                .map(|a| (TimePoint::new(a.time), a.request))
                .collect(),
            next_arrival: checkpoint.next_arrival as usize,
            next_fed_job: checkpoint.next_fed_job,
            rr_cursor: checkpoint.rr_cursor,
            merged: checkpoint.merged.clone(),
            cross_shard: checkpoint.cross_shard.clone(),
            counters: checkpoint.counters.clone(),
        })
    }
}
