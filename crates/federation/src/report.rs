//! Aggregate metrics of a federated run.

use ecosched_engine::EngineReport;
use serde::{Deserialize, Serialize};

/// Routing and co-allocation counters maintained while a federation runs.
///
/// Checkpointed verbatim (the router is part of the resumable state) and
/// folded into the [`FederationReport`] when the run finishes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RouteCounters {
    /// Jobs placed directly on each shard, by shard index (cross-shard
    /// placements are not counted here).
    pub routed: Vec<u64>,
    /// Shard-market window probes performed by cheapest-probe routing and
    /// the cross-shard alignment loop.
    pub probes: u64,
    /// Cross-shard placements committed (each one [`CrossShardWindow`]).
    ///
    /// [`CrossShardWindow`]: crate::CrossShardWindow
    pub cross_shard_committed: u64,
    /// Jobs that probed infeasible everywhere and fell back to a plain
    /// least-backlog submit (including jobs cross-shard could not place).
    pub fallback_submits: u64,
    /// Alignment rounds run by the cross-shard fixed point.
    pub align_rounds: u64,
    /// Phase-one reservations taken by the two-phase protocol.
    pub reservations_reserved: u64,
    /// Reservations released without commit (misaligned rounds, sibling
    /// failures, or infeasible shards mid-round).
    pub reservations_released: u64,
}

impl RouteCounters {
    /// Counters for a federation of `shards` shards.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        RouteCounters {
            routed: vec![0; shards],
            ..RouteCounters::default()
        }
    }
}

/// The aggregate report of one federated run: per-shard engine reports
/// plus the superscheduler's own counters and the merged-log fingerprint.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FederationReport {
    /// Per-shard engine reports, in shard order.
    pub shards: Vec<EngineReport>,
    /// Jobs offered to the federation (routed stream arrivals plus
    /// external submissions; for S=1 the base engine's own arrivals).
    pub jobs_offered: u64,
    /// Federation-level jobs completed: the sum over shard completions
    /// with each committed cross-shard split's sibling parts folded back
    /// into one job (a split runs as `parts` shard-level jobs).
    pub jobs_completed: u64,
    /// Backlog (pending plus still-leased jobs) across all shards when
    /// the run drained.
    pub backlog: u64,
    /// Router state at the end of the run.
    pub routing: RouteCounters,
    /// Two-phase reservations broken by revocation strikes while held.
    pub reservations_broken: u64,
    /// Entries in the merged log.
    pub merged_events: u64,
    /// FNV-1a 64 fingerprint of the serialized merged log (16 hex
    /// digits) — the federation determinism contract.
    pub merged_log_hash: String,
}

impl FederationReport {
    /// The canonical serialized form, for byte-identical comparison of
    /// two runs.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_default()
    }
}
