//! The federation's merged event log: shard-tagged entries totally
//! ordered by `(time, seq, shard)`.
//!
//! Each shard engine keeps its own [`EventLog`] exactly as before; the
//! federation additionally records every processed event tagged with its
//! shard index, in the order its merge loop popped them. Because the loop
//! always pops the globally smallest `(time, seq, shard)` head — and
//! routes arrivals before any shard steps past them — the live merged log
//! equals the sorted union of the final shard logs, which
//! [`merge_shard_logs`] computes independently as a cross-check.

use ecosched_engine::{fnv1a_64, Event, EventLog};
use serde::{Deserialize, Serialize};

/// One processed event in the federation: a shard's log entry plus the
/// shard it fired on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FederatedLogEntry {
    /// The shard the event fired on.
    pub shard: u32,
    /// Virtual time the event fired at, in ticks.
    pub time: i64,
    /// The shard-local queue sequence number.
    pub seq: u64,
    /// The event.
    pub event: Event,
}

impl FederatedLogEntry {
    /// The total-order key: time, then shard-local sequence number, then
    /// shard index. Within one shard `(time, seq)` is already a total
    /// order; the shard index breaks the remaining cross-shard ties.
    #[must_use]
    pub fn key(&self) -> (i64, u64, u32) {
        (self.time, self.seq, self.shard)
    }
}

/// The federation's append-only merged log, in merge-loop pop order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FederationLog {
    /// The merged entries.
    pub entries: Vec<FederatedLogEntry>,
}

impl FederationLog {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        FederationLog::default()
    }

    /// Appends one processed event.
    pub fn push(&mut self, entry: FederatedLogEntry) {
        self.entries.push(entry);
    }

    /// Number of merged entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when nothing has been merged yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The canonical serialized form — byte-identical across identically
    /// configured and seeded federated runs.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_default()
    }

    /// FNV-1a 64 fingerprint of the canonical serialization, 16 hex
    /// digits — the federation's determinism contract in one line.
    #[must_use]
    pub fn fnv1a_hash(&self) -> String {
        format!("{:016x}", fnv1a_64(self.to_json().as_bytes()))
    }

    /// Whether the entries are strictly increasing under
    /// [`FederatedLogEntry::key`] — totally ordered and duplicate-free.
    #[must_use]
    pub fn is_strictly_ordered(&self) -> bool {
        self.entries.windows(2).all(|w| w[0].key() < w[1].key())
    }
}

/// Merges final per-shard logs into one federation log by sorting the
/// union under `(time, seq, shard)`.
///
/// This is the *specification* of the merged log; the federation's merge
/// loop produces the same sequence live, one pop at a time, and the two
/// are asserted equal when a run finishes.
#[must_use]
pub fn merge_shard_logs(logs: &[&EventLog]) -> FederationLog {
    let mut entries: Vec<FederatedLogEntry> = logs
        .iter()
        .enumerate()
        .flat_map(|(shard, log)| {
            log.entries.iter().map(move |e| FederatedLogEntry {
                shard: shard as u32,
                time: e.time,
                seq: e.seq,
                event: e.event,
            })
        })
        .collect();
    entries.sort_by_key(FederatedLogEntry::key);
    FederationLog { entries }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log(entries: &[(i64, u64)]) -> EventLog {
        let mut l = EventLog::new();
        for &(time, seq) in entries {
            l.push(time, seq, Event::JobArrival { job: 0 });
        }
        l
    }

    #[test]
    fn merge_sorts_by_time_seq_shard() {
        let a = log(&[(0, 0), (5, 3), (9, 4)]);
        let b = log(&[(0, 0), (5, 1), (5, 2)]);
        let merged = merge_shard_logs(&[&a, &b]);
        let keys: Vec<(i64, u64, u32)> =
            merged.entries.iter().map(FederatedLogEntry::key).collect();
        assert_eq!(
            keys,
            vec![
                (0, 0, 0),
                (0, 0, 1),
                (5, 1, 1),
                (5, 2, 1),
                (5, 3, 0),
                (9, 4, 0)
            ]
        );
        assert!(merged.is_strictly_ordered());
    }

    #[test]
    fn single_shard_merge_preserves_the_log_verbatim() {
        let a = log(&[(0, 0), (3, 1), (3, 2)]);
        let merged = merge_shard_logs(&[&a]);
        assert_eq!(merged.len(), a.len());
        for (fed, plain) in merged.entries.iter().zip(&a.entries) {
            assert_eq!(fed.shard, 0);
            assert_eq!(
                (fed.time, fed.seq, fed.event),
                (plain.time, plain.seq, plain.event)
            );
        }
    }

    #[test]
    fn hash_is_stable_and_shard_sensitive() {
        let a = log(&[(0, 0)]);
        let b = log(&[(0, 0)]);
        let ab = merge_shard_logs(&[&a, &b]);
        let ab2 = merge_shard_logs(&[&a, &b]);
        assert_eq!(ab.fnv1a_hash(), ab2.fnv1a_hash());
        let ba = merge_shard_logs(&[&b]);
        assert_ne!(ab.fnv1a_hash(), ba.fnv1a_hash());
    }
}
