//! Federation-level observability: mirrors the superscheduler's routing
//! counters and per-shard frontier into an [`ecosched_obs`] registry.
//!
//! The federation already keeps its routing state in [`RouteCounters`]
//! because the router is part of the resumable checkpoint. Rather than
//! instrumenting every mutation site (and risking a missed one), the
//! recorder *mirrors*: after each routing decision or merged step,
//! [`FederationObs::sync`] raises each registry counter to the
//! checkpointed value with a monotone `fetch_max` and refreshes the
//! shard gauges. Mirroring is idempotent, so resume replays cannot
//! double-count, and it keeps the registry observe-only — the
//! checkpointed counters remain the single source of truth.

use ecosched_obs::{CounterId, GaugeId, Recorder, RegistryBuilder};
use std::sync::Arc;

use crate::federation::FederationState;
use crate::report::RouteCounters;

/// Dense metric ids for one federation, registered at startup.
#[derive(Debug, Clone)]
pub struct FedIds {
    /// `ecosched_federation_routed_total{shard=i}` — direct placements.
    pub routed: Vec<CounterId>,
    /// `ecosched_federation_probes_total`.
    pub probes: CounterId,
    /// `ecosched_federation_cross_shard_committed_total`.
    pub cross_shard_committed: CounterId,
    /// `ecosched_federation_fallback_submits_total`.
    pub fallback_submits: CounterId,
    /// `ecosched_federation_align_rounds_total`.
    pub align_rounds: CounterId,
    /// `ecosched_federation_reservations_reserved_total`.
    pub reservations_reserved: CounterId,
    /// `ecosched_federation_reservations_released_total`.
    pub reservations_released: CounterId,
    /// `ecosched_federation_merged_events_total`.
    pub merged_events: CounterId,
    /// `ecosched_federation_jobs_offered_total`.
    pub jobs_offered: CounterId,
    /// `ecosched_federation_shard_backlog{shard=i}`.
    pub shard_backlog: Vec<GaugeId>,
    /// `ecosched_federation_shard_last_time{shard=i}` — each shard's
    /// virtual-time frontier.
    pub shard_last_time: Vec<GaugeId>,
    /// `ecosched_federation_merged_lag_ticks` — spread between the
    /// fastest and slowest shard frontier (how far the merged log trails
    /// the leading shard).
    pub merged_lag: GaugeId,
}

impl FedIds {
    /// Registers the federation metric family for `shards` shards.
    #[must_use]
    pub fn register(b: &mut RegistryBuilder, shards: usize) -> Self {
        FedIds {
            routed: (0..shards)
                .map(|i| {
                    let shard = i.to_string();
                    b.counter_with(
                        "ecosched_federation_routed_total",
                        "Jobs placed directly on this shard",
                        &[("shard", &shard)],
                    )
                })
                .collect(),
            probes: b.counter(
                "ecosched_federation_probes_total",
                "Shard-market window probes by cheapest-probe routing and cross-shard alignment",
            ),
            cross_shard_committed: b.counter(
                "ecosched_federation_cross_shard_committed_total",
                "Cross-shard placements committed by the two-phase protocol",
            ),
            fallback_submits: b.counter(
                "ecosched_federation_fallback_submits_total",
                "Jobs that probed infeasible everywhere and fell back to least-backlog submit",
            ),
            align_rounds: b.counter(
                "ecosched_federation_align_rounds_total",
                "Alignment rounds run by the cross-shard fixed point",
            ),
            reservations_reserved: b.counter(
                "ecosched_federation_reservations_reserved_total",
                "Phase-one reservations taken by the two-phase protocol",
            ),
            reservations_released: b.counter(
                "ecosched_federation_reservations_released_total",
                "Reservations released without commit",
            ),
            merged_events: b.counter(
                "ecosched_federation_merged_events_total",
                "Entries appended to the merged (time, seq, shard) log",
            ),
            jobs_offered: b.counter(
                "ecosched_federation_jobs_offered_total",
                "Federation jobs accepted (routed stream arrivals plus external submissions)",
            ),
            shard_backlog: (0..shards)
                .map(|i| {
                    let shard = i.to_string();
                    b.gauge_with(
                        "ecosched_federation_shard_backlog",
                        "Pending plus leased jobs on this shard",
                        &[("shard", &shard)],
                    )
                })
                .collect(),
            shard_last_time: (0..shards)
                .map(|i| {
                    let shard = i.to_string();
                    b.gauge_with(
                        "ecosched_federation_shard_last_time",
                        "Virtual-time frontier of this shard",
                        &[("shard", &shard)],
                    )
                })
                .collect(),
            merged_lag: b.gauge(
                "ecosched_federation_merged_lag_ticks",
                "Virtual-time spread between the fastest and slowest shard frontier",
            ),
        }
    }
}

#[derive(Debug)]
struct FederationObsInner {
    rec: Recorder,
    ids: FedIds,
}

/// An optional federation recorder handle. Like the engine's, this is
/// runtime state: never serialized, absent from the configuration
/// fingerprint and checkpoints, and a no-op when off.
#[derive(Debug, Clone, Default)]
pub struct FederationObs {
    inner: Option<Arc<FederationObsInner>>,
}

impl FederationObs {
    /// A disabled handle; every call is a no-op.
    #[must_use]
    pub fn off() -> Self {
        FederationObs { inner: None }
    }

    /// A live handle over a recorder and pre-registered ids. Degrades to
    /// [`off`](Self::off) when the recorder itself is off.
    #[must_use]
    pub fn new(rec: Recorder, ids: FedIds) -> Self {
        if !rec.is_on() {
            return FederationObs::off();
        }
        FederationObs {
            inner: Some(Arc::new(FederationObsInner { rec, ids })),
        }
    }

    /// Whether recording is live.
    #[must_use]
    pub fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    /// The underlying recorder, when live.
    #[must_use]
    pub fn recorder(&self) -> Option<&Recorder> {
        self.inner.as_ref().map(|i| &i.rec)
    }

    /// Mirrors the checkpointed routing counters and shard frontier into
    /// the registry. Monotone (`fetch_max`) on counters, so calling it
    /// more often than strictly needed — or replaying after resume — is
    /// harmless.
    pub fn sync(&self, state: &FederationState) {
        let Some(inner) = self.inner.as_deref() else {
            return;
        };
        let rec = &inner.rec;
        let ids = &inner.ids;
        let counters: &RouteCounters = state.counters();
        for (id, &value) in ids.routed.iter().zip(&counters.routed) {
            rec.raise_to(*id, value);
        }
        rec.raise_to(ids.probes, counters.probes);
        rec.raise_to(ids.cross_shard_committed, counters.cross_shard_committed);
        rec.raise_to(ids.fallback_submits, counters.fallback_submits);
        rec.raise_to(ids.align_rounds, counters.align_rounds);
        rec.raise_to(ids.reservations_reserved, counters.reservations_reserved);
        rec.raise_to(ids.reservations_released, counters.reservations_released);
        rec.raise_to(ids.merged_events, state.merged().len() as u64);
        rec.raise_to(ids.jobs_offered, state.jobs_offered());
        let mut min_time = i64::MAX;
        let mut max_time = i64::MIN;
        for shard in 0..state.shard_count() {
            let shard_state = state.shard(shard);
            let t = shard_state.last_time().ticks();
            min_time = min_time.min(t);
            max_time = max_time.max(t);
            if let Some(&id) = ids.shard_backlog.get(shard) {
                rec.set(id, shard_state.backlog() as f64);
            }
            if let Some(&id) = ids.shard_last_time.get(shard) {
                rec.set(id, t as f64);
            }
        }
        if state.shard_count() > 0 {
            rec.set(ids.merged_lag, (max_time - min_time) as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecosched_obs::Registry;

    fn registry_with_ids(shards: usize) -> (Registry, FedIds) {
        let mut b = RegistryBuilder::new();
        let ids = FedIds::register(&mut b, shards);
        (b.build(), ids)
    }

    #[test]
    fn off_handle_is_noop() {
        let obs = FederationObs::off();
        assert!(!obs.is_on());
        assert!(obs.recorder().is_none());
    }

    #[test]
    fn registration_is_per_shard_labelled() {
        let (reg, ids) = registry_with_ids(3);
        assert_eq!(ids.routed.len(), 3);
        assert!(reg
            .find_counter("ecosched_federation_routed_total", &[("shard", "2")])
            .is_some());
        assert!(reg
            .find_gauge("ecosched_federation_shard_backlog", &[("shard", "0")])
            .is_some());
    }
}
