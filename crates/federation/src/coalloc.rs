//! Cross-shard co-allocation types: the split of a coscheduled job across
//! shards and the typed lease the two-phase protocol surfaces on success.

use ecosched_core::Window;
use serde::{Deserialize, Serialize};

/// One shard's share of a cross-shard placement after commit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossShardPart {
    /// The shard hosting this part.
    pub shard: u32,
    /// The shard-local job id minted at commit.
    pub job: u32,
    /// The shard-local lease id minted at commit.
    pub lease: u64,
    /// The committed window. All parts of one cross-shard placement start
    /// at the same tick — that is what the alignment loop establishes
    /// before phase two runs.
    pub window: Window,
}

/// A committed cross-shard placement: one federation job served by
/// synchronized-start windows on two or more shards.
///
/// This is the typed surface of the two-phase protocol — it exists only
/// if every shard's reserve and commit succeeded; any failure released
/// all sibling reservations instead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossShardWindow {
    /// The federation-level job id (arrival order at the superscheduler).
    pub fed_job: u64,
    /// The synchronized launch tick: the latest part start. At alignment
    /// tolerance zero every part starts exactly here; with slack,
    /// earlier parts hold their windows until this tick.
    pub start: i64,
    /// The per-shard parts, in shard order.
    pub parts: Vec<CrossShardPart>,
}

/// A phase-one hold: a window reserved on a shard, not yet committed or
/// released.
#[derive(Debug, Clone, PartialEq)]
pub struct ReservedPart {
    /// The shard holding the reservation.
    pub shard: u32,
    /// The shard-local reservation id.
    pub reservation: u64,
    /// The reserved window.
    pub window: Window,
}

/// Splits `nodes` across at most `shards` shards as evenly as possible,
/// larger shares first: `split_nodes(7, 3)` is `[3, 2, 2]`, and
/// `split_nodes(2, 4)` is `[2]`-free — `[1, 1]`, dropping empty shares.
#[must_use]
pub fn split_nodes(nodes: usize, shards: u32) -> Vec<usize> {
    let shards = (shards as usize).min(nodes).max(1);
    let base = nodes / shards;
    let extra = nodes % shards;
    (0..shards)
        .map(|s| if s < extra { base + 1 } else { base })
        .filter(|&n| n > 0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_are_even_and_complete() {
        assert_eq!(split_nodes(7, 3), vec![3, 2, 2]);
        assert_eq!(split_nodes(8, 4), vec![2, 2, 2, 2]);
        assert_eq!(split_nodes(2, 4), vec![1, 1]);
        assert_eq!(split_nodes(1, 4), vec![1]);
        assert_eq!(split_nodes(5, 1), vec![5]);
        for nodes in 1..40usize {
            for shards in 1..9u32 {
                let split = split_nodes(nodes, shards);
                assert_eq!(split.iter().sum::<usize>(), nodes);
                assert!(split.len() <= shards as usize);
                let lo = split.iter().min().copied().unwrap_or(0);
                let hi = split.iter().max().copied().unwrap_or(0);
                assert!(hi - lo <= 1, "uneven split {split:?}");
            }
        }
    }
}
