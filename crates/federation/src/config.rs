//! Federation configuration: shard count, routing policy, and the
//! derivation of per-shard engine configs and seeds from the base run.

use ecosched_engine::{ArrivalConfig, EngineConfig};
use ecosched_sim::ConfigError;
use serde::{Deserialize, Serialize};

/// How the superscheduler picks a shard for each arriving job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutePolicy {
    /// Cycle through shards in index order. Zero market knowledge, zero
    /// probe cost — the baseline the other policies are measured against.
    RoundRobin,
    /// Send the job to the shard with the fewest uncompleted jobs
    /// (pending plus leased), ties broken by shard index. The
    /// Ranjan/Harwood/Buyya-style load-coordinated placement.
    LeastBacklog,
    /// Probe every shard's vacant market for the earliest feasible window
    /// and route to the shard offering the cheapest one (ties by shard
    /// index). Jobs no single shard can host trigger cross-shard
    /// co-allocation when it is enabled.
    CheapestProbe,
}

impl RoutePolicy {
    /// Stable short name, used in manifests and experiment tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RoutePolicy::RoundRobin => "round-robin",
            RoutePolicy::LeastBacklog => "least-backlog",
            RoutePolicy::CheapestProbe => "cheapest-probe",
        }
    }

    /// Parses the name written by [`Self::name`].
    #[must_use]
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "round-robin" => Some(RoutePolicy::RoundRobin),
            "least-backlog" => Some(RoutePolicy::LeastBacklog),
            "cheapest-probe" => Some(RoutePolicy::CheapestProbe),
            _ => None,
        }
    }
}

/// Configuration of a federated run: the base single-engine scenario plus
/// the sharding and routing knobs layered on top of it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FederationConfig {
    /// The single-engine scenario being federated. With one shard the
    /// base config runs verbatim; with `S > 1` shards its arrival stream
    /// is generated once at the federation level and routed, and each
    /// shard runs the same market/cycle knobs in
    /// [`ArrivalConfig::External`] mode on a derived seed.
    pub base: EngineConfig,
    /// Number of shard engines (administrative domains). Must be ≥ 1.
    pub shards: u32,
    /// The routing policy.
    pub route: RoutePolicy,
    /// Whether jobs no single shard can host may be split across shards
    /// via two-phase reserve/commit co-allocation. Only consulted under
    /// [`RoutePolicy::CheapestProbe`] (the only policy that knows
    /// feasibility).
    pub cross_shard: bool,
    /// Bound on the cross-shard start-alignment fixed point: how many
    /// probe-reserve-release rounds to try before giving up and falling
    /// back to a single-shard submit. Must be ≥ 1.
    pub max_align_rounds: u32,
    /// Start-alignment slack in ticks: a cross-shard round commits when
    /// the spread between its earliest and latest part start is at most
    /// this. The co-allocated job launches at the *latest* start; parts
    /// reserved earlier hold their nodes for the difference — the
    /// classic co-allocation slack real superschedulers trade for a
    /// vastly higher commit rate, because administratively independent
    /// markets almost never publish slots at exactly equal ticks. `0`
    /// (the default) demands exact agreement. Must be ≥ 0.
    pub align_tolerance: i64,
}

impl FederationConfig {
    /// A federation of `shards` engines over the given base scenario,
    /// with least-backlog routing and cross-shard co-allocation off.
    #[must_use]
    pub fn new(base: EngineConfig, shards: u32) -> Self {
        FederationConfig {
            base,
            shards,
            route: RoutePolicy::LeastBacklog,
            cross_shard: false,
            max_align_rounds: 4,
            align_tolerance: 0,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.shards == 0 {
            return Err(ConfigError::NotPositive { field: "shards" });
        }
        if self.max_align_rounds == 0 {
            return Err(ConfigError::NotPositive {
                field: "max_align_rounds",
            });
        }
        if self.align_tolerance < 0 {
            return Err(ConfigError::Negative {
                field: "align_tolerance",
            });
        }
        self.base.validate()
    }

    /// The engine configuration shard `s` runs.
    ///
    /// A single-shard federation is the degenerate case: shard 0 runs the
    /// base configuration verbatim (self-driven arrivals and all), which
    /// is what makes S=1 byte-identical to the plain engine. With more
    /// shards, every shard runs the base market in
    /// [`ArrivalConfig::External`] mode — arrivals exist only at the
    /// federation level and enter shards through routing.
    #[must_use]
    pub fn shard_config(&self, _shard: u32) -> EngineConfig {
        if self.shards == 1 {
            self.base.clone()
        } else {
            EngineConfig {
                arrivals: ArrivalConfig::External,
                ..self.base.clone()
            }
        }
    }

    /// The seed shard `s` runs under, derived from the federation seed.
    ///
    /// S=1 passes the seed through untouched (byte-identity with the
    /// single engine). Otherwise each shard gets an independent stream
    /// via a splitmix64 finalizer over `(seed, shard)` — shards must not
    /// share slot-market randomness or the federation would correlate
    /// domains that are administratively independent.
    #[must_use]
    pub fn shard_seed(&self, seed: u64, shard: u32) -> u64 {
        if self.shards == 1 {
            seed
        } else {
            splitmix64(seed ^ (u64::from(shard) + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15))
        }
    }
}

/// The splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_names_round_trip() {
        for policy in [
            RoutePolicy::RoundRobin,
            RoutePolicy::LeastBacklog,
            RoutePolicy::CheapestProbe,
        ] {
            assert_eq!(RoutePolicy::parse(policy.name()), Some(policy));
        }
        assert_eq!(RoutePolicy::parse("nope"), None);
    }

    #[test]
    fn single_shard_passes_base_through() {
        let config = FederationConfig::new(EngineConfig::default(), 1);
        config.validate().unwrap();
        assert_eq!(config.shard_config(0), config.base);
        assert_eq!(config.shard_seed(42, 0), 42);
    }

    #[test]
    fn multi_shard_externalizes_arrivals_and_decorrelates_seeds() {
        let config = FederationConfig::new(EngineConfig::default(), 4);
        config.validate().unwrap();
        for s in 0..4 {
            assert_eq!(config.shard_config(s).arrivals, ArrivalConfig::External);
        }
        let seeds: Vec<u64> = (0..4).map(|s| config.shard_seed(42, s)).collect();
        for i in 0..4 {
            assert_ne!(seeds[i], 42, "shard {i} must not reuse the base seed");
            for j in (i + 1)..4 {
                assert_ne!(seeds[i], seeds[j], "shards {i} and {j} share a seed");
            }
        }
    }

    #[test]
    fn zero_shards_is_rejected() {
        let config = FederationConfig {
            shards: 0,
            ..FederationConfig::new(EngineConfig::default(), 1)
        };
        assert_eq!(
            config.validate(),
            Err(ConfigError::NotPositive { field: "shards" })
        );
    }
}
