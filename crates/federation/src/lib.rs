//! Sharded multi-VO federation: a superscheduler over shard engines.
//!
//! One engine instance is one administrative domain and one flat slot
//! market. This crate scales the model out: S independent shard engines
//! run behind a single submission surface, a routing policy
//! ([`RoutePolicy`]) places each arriving job on a shard, and jobs no
//! single shard can host may be split across shards by a two-phase
//! reserve/commit co-allocation protocol whose successes surface as
//! typed [`CrossShardWindow`] leases.
//!
//! The determinism contract survives sharding. Each shard remains a pure
//! function of `(config, seed, routed-arrival sequence)`; the federation
//! adds no randomness of its own; and the federation event log is the
//! merge of the shard logs under the total order `(time, seq, shard)` —
//! reproducible hash and all. A single-shard federation degenerates to
//! the plain engine byte for byte: shard 0 runs the base configuration
//! on the base seed, and the merged log is its event log tagged with
//! shard 0.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod coalloc;
pub mod config;
pub mod federation;
pub mod merge;
pub mod obs;
pub mod report;

pub use coalloc::{split_nodes, CrossShardPart, CrossShardWindow, ReservedPart};
pub use config::{FederationConfig, RoutePolicy};
pub use federation::{
    Federation, FederationCheckpoint, FederationError, FederationRun, FederationState, Placement,
};
pub use merge::{merge_shard_logs, FederatedLogEntry, FederationLog};
pub use obs::{FedIds, FederationObs};
pub use report::{FederationReport, RouteCounters};
