//! Property-based tests for the core data structures.

use ecosched_core::{
    Money, NodeId, Perf, Price, Slot, SlotId, SlotList, Span, TimeDelta, TimePoint, Window,
    WindowSlot,
};
use proptest::prelude::*;

/// Strategy: a valid non-empty span inside [0, 10_000).
fn span_strategy() -> impl Strategy<Value = Span> {
    (0i64..10_000, 1i64..500).prop_map(|(start, len)| {
        Span::new(TimePoint::new(start), TimePoint::new(start + len)).unwrap()
    })
}

/// Strategy: a list of slots, one per node so per-node disjointness holds by
/// construction.
fn slot_list_strategy(max: usize) -> impl Strategy<Value = SlotList> {
    prop::collection::vec((span_strategy(), 1i64..1200i64, 100u32..4000), 1..max).prop_map(
        |entries| {
            let slots: Vec<Slot> = entries
                .into_iter()
                .enumerate()
                .map(|(i, (span, price_milli, perf_milli))| {
                    Slot::new(
                        SlotId::new(i as u64),
                        NodeId::new(i as u32),
                        Perf::from_milli(i64::from(perf_milli)),
                        Price::from_micro(price_milli * 1000),
                        span,
                    )
                    .unwrap()
                })
                .collect();
            SlotList::from_slots(slots).unwrap()
        },
    )
}

proptest! {
    #[test]
    fn span_subtract_conserves_length(outer in span_strategy(), cut in span_strategy()) {
        let (left, right) = outer.subtract(cut);
        let removed = outer.intersect(cut).map_or(TimeDelta::ZERO, Span::length);
        let remaining = left.map_or(TimeDelta::ZERO, Span::length)
            + right.map_or(TimeDelta::ZERO, Span::length);
        prop_assert_eq!(remaining + removed, outer.length());
    }

    #[test]
    fn span_subtract_remnants_disjoint_from_cut(outer in span_strategy(), cut in span_strategy()) {
        let (left, right) = outer.subtract(cut);
        if let Some(hit) = outer.intersect(cut) {
            for remnant in [left, right].into_iter().flatten() {
                prop_assert!(!remnant.overlaps(hit));
                prop_assert!(outer.contains_span(remnant));
            }
        }
    }

    #[test]
    fn intersect_symmetric_and_contained(a in span_strategy(), b in span_strategy()) {
        prop_assert_eq!(a.intersect(b), b.intersect(a));
        if let Some(i) = a.intersect(b) {
            prop_assert!(a.contains_span(i));
            prop_assert!(b.contains_span(i));
            prop_assert!(i.length().is_positive());
        }
    }

    #[test]
    fn slot_list_ordered_after_construction(list in slot_list_strategy(24)) {
        prop_assert!(list.validate().is_ok());
        let starts: Vec<TimePoint> = list.iter().map(Slot::start).collect();
        let mut sorted = starts.clone();
        sorted.sort();
        prop_assert_eq!(starts, sorted);
    }

    #[test]
    fn slot_list_subtraction_preserves_invariants(
        list in slot_list_strategy(24),
        pick in any::<prop::sample::Index>(),
        frac_start in 0.0f64..1.0,
        frac_len in 0.01f64..1.0,
    ) {
        let mut list = list;
        let slots: Vec<Slot> = list.iter().copied().collect();
        let slot = *pick.get(&slots);
        let len = slot.length().ticks();
        let cut_start = slot.start().ticks() + (frac_start * (len - 1) as f64) as i64;
        let max_len = slot.end().ticks() - cut_start;
        let cut_len = ((frac_len * max_len as f64) as i64).max(1);
        let cut = Span::new(
            TimePoint::new(cut_start),
            TimePoint::new(cut_start + cut_len),
        ).unwrap();

        let before_total = list.total_vacant_time();
        list.subtract(slot.id(), cut).unwrap();

        prop_assert!(list.validate().is_ok());
        prop_assert_eq!(list.total_vacant_time() + cut.length(), before_total);
        // The original id is gone; remnants carry fresh ids.
        prop_assert!(list.get(slot.id()).is_none());
        // No remnant overlaps the cut on that node.
        for s in list.iter() {
            if s.node() == slot.node() {
                prop_assert!(!s.span().overlaps(cut));
            }
        }
    }

    #[test]
    fn window_cost_is_sum_of_member_costs(
        runtimes in prop::collection::vec(1i64..300, 1..8),
        prices in prop::collection::vec(1i64..20, 8),
    ) {
        let members: Vec<WindowSlot> = runtimes
            .iter()
            .enumerate()
            .map(|(i, &rt)| {
                let slot = Slot::new(
                    SlotId::new(i as u64),
                    NodeId::new(i as u32),
                    Perf::UNIT,
                    Price::from_credits(prices[i]),
                    Span::new(TimePoint::ZERO, TimePoint::new(1_000)).unwrap(),
                )
                .unwrap();
                WindowSlot::from_slot(&slot, TimeDelta::new(rt)).unwrap()
            })
            .collect();
        let window = Window::new(TimePoint::ZERO, members).unwrap();

        let expected_cost: Money = runtimes
            .iter()
            .zip(&prices)
            .map(|(&rt, &p)| Money::from_credits(p * rt))
            .sum();
        prop_assert_eq!(window.total_cost(), expected_cost);

        let max_rt = runtimes.iter().copied().max().unwrap();
        prop_assert_eq!(window.length(), TimeDelta::new(max_rt));
    }

    #[test]
    fn runtime_monotone_in_node_perf(
        wall in 1i64..500,
        req_milli in 500i64..3000,
        a_milli in 500i64..4000,
        b_milli in 500i64..4000,
    ) {
        let req = Perf::from_milli(req_milli);
        let (slow, fast) = if a_milli <= b_milli { (a_milli, b_milli) } else { (b_milli, a_milli) };
        let rt_slow = Perf::from_milli(slow).runtime_for(TimeDelta::new(wall), req);
        let rt_fast = Perf::from_milli(fast).runtime_for(TimeDelta::new(wall), req);
        prop_assert!(rt_fast <= rt_slow, "faster node must not run longer");
        prop_assert!(rt_fast.is_positive());
    }

    #[test]
    fn money_price_arithmetic_consistent(price_micro in 0i64..10_000_000, ticks in 0i64..10_000) {
        let price = Price::from_micro(price_micro);
        let total = price * TimeDelta::new(ticks);
        prop_assert_eq!(total.micro(), price_micro * ticks);
        prop_assert_eq!(total, Money::from_micro(price_micro) * ticks);
    }

    #[test]
    fn interleaved_subtractions_preserve_invariants(
        list in slot_list_strategy(24),
        ops in prop::collection::vec(
            (
                any::<prop::sample::Index>(),
                0.0f64..1.0,
                0.01f64..1.0,
                any::<bool>(),
            ),
            1..20,
        ),
    ) {
        // Any interleaving of span subtraction and window subtraction must
        // keep the list valid (ordering, id index, per-node disjointness)
        // and shrink the total vacancy by exactly the cut lengths — the
        // invariant the incremental search's remnant bookkeeping leans on.
        let mut list = list;
        let before_total = list.total_vacant_time();
        let mut removed_total = TimeDelta::ZERO;

        for (pick, frac_start, frac_len, use_window) in ops {
            if list.is_empty() {
                break;
            }
            let slots: Vec<Slot> = list.iter().copied().collect();
            let slot = *pick.get(&slots);
            let len = slot.length().ticks();

            if use_window {
                // Single-member window anchored at the slot start.
                let runtime = ((frac_len * len as f64) as i64).clamp(1, len);
                let member = WindowSlot::from_slot(&slot, TimeDelta::new(runtime)).unwrap();
                let window = Window::new(slot.start(), vec![member]).unwrap();
                let report = list.subtract_window_report(&window).unwrap();
                removed_total += TimeDelta::new(runtime);

                // The report must describe the mutation it performed.
                prop_assert_eq!(report.removed.as_slice(), &[slot.id()]);
                for gone in &report.removed {
                    prop_assert!(list.get(*gone).is_none());
                }
                for remnant in &report.remnants {
                    let found = list.get(remnant.id());
                    prop_assert_eq!(found, Some(remnant));
                    prop_assert!(slot.span().contains_span(remnant.span()));
                }
            } else {
                let cut_start = slot.start().ticks() + (frac_start * (len - 1) as f64) as i64;
                let max_len = slot.end().ticks() - cut_start;
                let cut_len = ((frac_len * max_len as f64) as i64).max(1);
                let cut = Span::new(
                    TimePoint::new(cut_start),
                    TimePoint::new(cut_start + cut_len),
                ).unwrap();
                list.subtract(slot.id(), cut).unwrap();
                removed_total += cut.length();
            }

            prop_assert!(list.validate().is_ok());
            prop_assert_eq!(list.total_vacant_time() + removed_total, before_total);
        }
    }
}
