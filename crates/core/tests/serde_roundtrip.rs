//! Serde round-trips for every serializable core type (C-SERDE): the
//! experiment harness persists configurations and results as JSON, so the
//! data model must survive the trip losslessly.

use ecosched_core::{
    Alternative, Batch, BatchAlternatives, Job, JobAlternatives, JobId, Money, NodeId, Perf, Price,
    Resource, ResourceRequest, Slot, SlotId, SlotList, Span, TimeDelta, TimePoint, Window,
    WindowSlot,
};

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

#[test]
fn scalar_newtypes_roundtrip() {
    let t = TimePoint::new(-7);
    assert_eq!(roundtrip(&t), t);
    let d = TimeDelta::new(42);
    assert_eq!(roundtrip(&d), d);
    let m = Money::from_f64(3.25);
    assert_eq!(roundtrip(&m), m);
    let p = Price::from_f64(1.75);
    assert_eq!(roundtrip(&p), p);
    let perf = Perf::from_f64(2.5);
    assert_eq!(roundtrip(&perf), perf);
    let node = NodeId::new(3);
    assert_eq!(roundtrip(&node), node);
    let slot_id = SlotId::new(99);
    assert_eq!(roundtrip(&slot_id), slot_id);
    let job_id = JobId::new(4);
    assert_eq!(roundtrip(&job_id), job_id);
}

#[test]
fn span_and_slot_roundtrip() {
    let span = Span::new(TimePoint::new(10), TimePoint::new(90)).unwrap();
    assert_eq!(roundtrip(&span), span);
    let slot = Slot::new(
        SlotId::new(1),
        NodeId::new(2),
        Perf::from_f64(1.5),
        Price::from_f64(2.25),
        span,
    )
    .unwrap();
    assert_eq!(roundtrip(&slot), slot);
    let resource = Resource::new(NodeId::new(2), Perf::from_f64(1.5), Price::from_credits(3));
    assert_eq!(roundtrip(&resource), resource);
}

#[test]
fn slot_list_roundtrip_preserves_order_and_mint_state() {
    let slots = (0..5)
        .map(|i| {
            Slot::new(
                SlotId::new(i),
                NodeId::new(i as u32),
                Perf::UNIT,
                Price::from_credits(2),
                Span::new(TimePoint::new(i as i64 * 10), TimePoint::new(500)).unwrap(),
            )
            .unwrap()
        })
        .collect();
    let mut list = SlotList::from_slots(slots).unwrap();
    let mut back = roundtrip(&list);
    assert_eq!(back, list);
    // The minted-id counter must survive too, or remnants could collide.
    assert_eq!(back.mint_id(), list.mint_id());
}

#[test]
fn request_job_batch_roundtrip() {
    let request = ResourceRequest::new(
        3,
        TimeDelta::new(80),
        Perf::from_f64(1.5),
        Price::from_f64(4.5),
    )
    .unwrap();
    assert_eq!(roundtrip(&request), request);
    let job = Job::new(JobId::new(0), request);
    assert_eq!(roundtrip(&job), job);
    let batch = Batch::from_jobs(vec![job]).unwrap();
    assert_eq!(roundtrip(&batch), batch);
}

#[test]
fn window_and_alternatives_roundtrip() {
    let slot = Slot::new(
        SlotId::new(0),
        NodeId::new(0),
        Perf::from_f64(2.0),
        Price::from_credits(3),
        Span::new(TimePoint::new(0), TimePoint::new(400)).unwrap(),
    )
    .unwrap();
    let window = Window::new(
        TimePoint::new(10),
        vec![WindowSlot::from_slot(&slot, TimeDelta::new(50)).unwrap()],
    )
    .unwrap();
    assert_eq!(roundtrip(&window), window);

    let alt = Alternative::new(JobId::new(1), window);
    assert_eq!(roundtrip(&alt), alt);

    let mut ja = JobAlternatives::new(JobId::new(1));
    ja.push(alt);
    assert_eq!(roundtrip(&ja), ja);

    let batch_alts = BatchAlternatives::for_jobs([JobId::new(1)]);
    assert_eq!(roundtrip(&batch_alts), batch_alts);
}

#[test]
fn json_is_stable_for_fixed_point_types() {
    // Money serializes by its micro representation — exact, no floats.
    let m = Money::from_micro(1_234_567);
    let json = serde_json::to_string(&m).unwrap();
    assert_eq!(json, "1234567");
}
