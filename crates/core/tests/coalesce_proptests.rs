//! Property-based tests for `SlotList::coalesce` — the cycle-commit
//! defragmentation pass.
//!
//! The invariant under test: coalescing changes only the *partitioning*
//! of vacant capacity, never the capacity itself. Per node, the priced
//! and performance-tagged coverage of the time axis is identical before
//! and after; only how that coverage is sliced into `Slot` records
//! differs.

use std::collections::BTreeMap;

use ecosched_core::{NodeId, Perf, Price, Slot, SlotId, SlotList, Span, TimePoint};
use proptest::prelude::*;

/// Strategy: a slot list with several slots per node, deliberately
/// fragmented — segments within a node frequently touch (`gap == 0`)
/// and draw price/performance from small palettes so coalescible runs
/// actually occur.
fn fragmented_list_strategy() -> impl Strategy<Value = SlotList> {
    prop::collection::vec(
        (
            0i64..200, // per-node base start
            prop::collection::vec(
                (1i64..60, 0i64..3, 0usize..2, 0usize..2), // len, gap, price, perf
                1..6,
            ),
        ),
        1..8,
    )
    .prop_map(|nodes| {
        let prices = [Price::from_credits(2), Price::from_credits(5)];
        let perfs = [Perf::from_milli(1000), Perf::from_milli(2000)];
        let mut slots = Vec::new();
        let mut id = 0u64;
        for (n, (base, segments)) in nodes.into_iter().enumerate() {
            let mut cursor = base;
            for (len, gap, price, perf) in segments {
                cursor += gap;
                let span = Span::new(TimePoint::new(cursor), TimePoint::new(cursor + len)).unwrap();
                slots.push(
                    Slot::new(
                        SlotId::new(id),
                        NodeId::new(n as u32),
                        perfs[perf],
                        prices[price],
                        span,
                    )
                    .unwrap(),
                );
                id += 1;
                cursor += len;
            }
        }
        SlotList::from_slots(slots).unwrap()
    })
}

/// The canonical per-node coverage: maximal `(start, end, price, perf)`
/// intervals, with touching same-price/same-perf neighbours merged.
/// Two lists with equal canonical coverage offer exactly the same
/// priced capacity.
fn canonical_coverage(list: &SlotList) -> BTreeMap<u32, Vec<(i64, i64, Price, Perf)>> {
    let mut per_node: BTreeMap<u32, Vec<(i64, i64, Price, Perf)>> = BTreeMap::new();
    for slot in list.iter() {
        per_node.entry(slot.node().index()).or_default().push((
            slot.start().ticks(),
            slot.end().ticks(),
            slot.price(),
            slot.perf(),
        ));
    }
    for intervals in per_node.values_mut() {
        intervals.sort_by_key(|&(start, end, _, _)| (start, end));
        let mut merged: Vec<(i64, i64, Price, Perf)> = Vec::with_capacity(intervals.len());
        for interval in intervals.drain(..) {
            match merged.last_mut() {
                Some(last)
                    if last.1 == interval.0 && last.2 == interval.2 && last.3 == interval.3 =>
                {
                    last.1 = interval.1;
                }
                _ => merged.push(interval),
            }
        }
        *intervals = merged;
    }
    per_node
}

/// True when the list holds at least one mergeable pair: same-node
/// neighbours that touch and agree on price and performance.
fn has_coalescible_pair(list: &SlotList) -> bool {
    let mut per_node: BTreeMap<u32, Vec<&Slot>> = BTreeMap::new();
    for slot in list.iter() {
        per_node.entry(slot.node().index()).or_default().push(slot);
    }
    per_node.values().any(|slots| {
        slots.windows(2).any(|pair| {
            pair[0].end() == pair[1].start()
                && pair[0].price() == pair[1].price()
                && pair[0].perf() == pair[1].perf()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Coalescing preserves the priced, performance-tagged vacant
    /// coverage exactly — it repartitions capacity, never creates or
    /// destroys it — and leaves a valid, ordered list behind.
    #[test]
    fn coalesce_preserves_priced_coverage(list in fragmented_list_strategy()) {
        let before = canonical_coverage(&list);
        let total_before = list.total_vacant_time();
        let len_before = list.len();

        let mut coalesced = list.clone();
        let absorbed = coalesced.coalesce();

        prop_assert!(coalesced.validate().is_ok());
        prop_assert_eq!(canonical_coverage(&coalesced), before);
        prop_assert_eq!(coalesced.total_vacant_time(), total_before);
        prop_assert_eq!(coalesced.len(), len_before - absorbed);
        // Survivors keep their identities: every id existed before.
        for slot in coalesced.iter() {
            prop_assert!(list.get(slot.id()).is_some());
        }
    }

    /// Coalescing is idempotent: a second pass finds nothing to merge.
    #[test]
    fn coalesce_is_idempotent(list in fragmented_list_strategy()) {
        let mut coalesced = list.clone();
        coalesced.coalesce();
        let again = coalesced.clone();
        prop_assert_eq!(coalesced.coalesce(), 0);
        prop_assert_eq!(coalesced, again);
    }

    /// Coalescing is the identity exactly when no same-node touching
    /// pair agrees on price and performance — it never merges across a
    /// gap or across a price/performance boundary.
    #[test]
    fn coalesce_is_identity_iff_nothing_is_mergeable(list in fragmented_list_strategy()) {
        let mergeable = has_coalescible_pair(&list);
        let mut coalesced = list.clone();
        let absorbed = coalesced.coalesce();
        prop_assert_eq!(absorbed > 0, mergeable);
        if !mergeable {
            prop_assert_eq!(coalesced, list);
        }
    }
}
