//! Differential oracle harness: the interval-timeline market must be
//! **observably identical** to the flat start-ordered list under every
//! mutation the engine performs.
//!
//! Two [`SlotList`]s — one per representation — are seeded with the same
//! slots and driven through the same randomized operation sequence
//! (publish, window subtraction, region removal, carving, tail-return
//! insertion, coalescing, expiry sweeps). After *every* step the harness
//! asserts the full observable state matches: iteration order, minted
//! ids, subtraction reports, returned errors, and both representations'
//! own structural invariants. The flat list is the oracle; any divergence
//! in the interval form fails here long before it could skew an engine
//! run's event log.
//!
//! CI runs this file at `PROPTEST_CASES=512` in the failure-injection
//! job; the local default below keeps `cargo test` fast.

use ecosched_core::{
    CoreError, MarketRepr, NodeId, Perf, Price, Slot, SlotId, SlotList, Span, TimeDelta, TimePoint,
    Window, WindowSlot,
};
use proptest::prelude::*;

/// One abstract mutation. Raw integers are interpreted against the
/// *current* list state (indices reduce modulo the live slot count), so
/// every generated sequence stays meaningful after arbitrary prior
/// mutations and shrinks cleanly.
#[derive(Debug, Clone)]
enum Op {
    /// Publish a fresh slot on `node`, `gap` ticks after that node's
    /// current last vacancy (always disjoint, so always accepted).
    Publish {
        node: u32,
        gap: i64,
        len: i64,
        perf: i64,
        price: i64,
    },
    /// Carve a window out of up to three distinct-node slots via
    /// `subtract_window_report` (the commit path).
    SubtractWindow { picks: [usize; 3], offset: i64 },
    /// Carve an interior span out of one slot via `subtract` (the repair
    /// path).
    Carve { pick: usize, lo: i64, hi: i64 },
    /// Ask for a cut that leaks past the slot's end — must fail
    /// identically on both sides.
    CarveOutside { pick: usize },
    /// Remove every slot intersecting a region around a picked slot
    /// (revocation strikes).
    RemoveRegion { pick: usize, pad: i64 },
    /// Return a completed lease's unused tail: remove a slot, reinsert a
    /// suffix of its span under a freshly minted id.
    TailReturn { pick: usize, keep: i64 },
    /// Merge touching same-price same-perf neighbours (cycle commit).
    Coalesce,
    /// Drop everything before a horizon on every node (clock advance).
    Expire { pick: usize },
}

/// The vendored proptest shim has no `prop_oneof`, so the op mix is a
/// tagged tuple: `tag` picks the variant (weights via range width), the
/// remaining fields parameterize it. Unused fields are simply ignored,
/// which keeps every tuple a valid op.
fn op_strategy() -> impl Strategy<Value = Op> {
    (
        0u32..19,
        0usize..64,
        0usize..64,
        0usize..64,
        0i64..300,
        0i64..300,
    )
        .prop_map(|(tag, p1, p2, p3, a, b)| match tag {
            // Overlapping publishes are deliberately absent: disjointness
            // is a *caller* contract (the flat oracle debug-asserts it;
            // the interval form additionally rejects it structurally,
            // covered by its own unit tests), so it is not part of the
            // shared observable behavior this harness pins.
            0..=4 => Op::Publish {
                node: (p1 % 6) as u32,
                gap: a % 60,
                len: 1 + b % 250,
                perf: 500 + (a * 7) % 2500,
                price: 1 + b % 11,
            },
            5..=7 => Op::SubtractWindow {
                picks: [p1, p2, p3],
                offset: a % 40,
            },
            8..=10 => Op::Carve {
                pick: p1,
                lo: a,
                hi: b,
            },
            11 => Op::CarveOutside { pick: p1 },
            12 | 13 => Op::RemoveRegion {
                pick: p1,
                pad: a % 30,
            },
            14 | 15 => Op::TailReturn {
                pick: p1,
                keep: 1 + b % 200,
            },
            16 | 17 => Op::Coalesce,
            _ => Op::Expire { pick: p1 },
        })
}

/// A seed market: a handful of nodes, several head-to-tail vacancies each
/// (ids minted 0..), mirroring what the generator publishes per cycle.
fn seed_slots_strategy() -> impl Strategy<Value = Vec<Slot>> {
    prop::collection::vec(
        (
            prop::collection::vec((0i64..50, 20i64..200), 0..4),
            500i64..3000,
            1i64..12,
        ),
        1..6,
    )
    .prop_map(|nodes| {
        let mut slots = Vec::new();
        let mut id = 0u64;
        for (node, (segments, perf, price)) in nodes.into_iter().enumerate() {
            let mut cursor = 0i64;
            for (gap, len) in segments {
                let start = cursor + gap;
                let end = start + len;
                cursor = end;
                slots.push(
                    Slot::new(
                        SlotId::new(id),
                        NodeId::new(node as u32),
                        Perf::from_milli(perf),
                        Price::from_credits(price),
                        Span::new(TimePoint::new(start), TimePoint::new(end)).unwrap(),
                    )
                    .unwrap(),
                );
                id += 1;
            }
        }
        slots
    })
}

/// Every observable the engine can see, asserted in one place.
#[track_caller]
fn assert_observably_equal(step: usize, flat: &SlotList, interval: &SlotList) {
    assert_eq!(flat.repr(), MarketRepr::Flat);
    assert_eq!(interval.repr(), MarketRepr::Interval);
    flat.validate().expect("flat invariants");
    interval.validate().expect("interval invariants");
    assert_eq!(flat.len(), interval.len(), "step {step}: lengths diverge");
    assert_eq!(
        flat.earliest_start(),
        interval.earliest_start(),
        "step {step}: earliest_start diverges"
    );
    assert_eq!(
        flat.total_vacant_time(),
        interval.total_vacant_time(),
        "step {step}: total vacant time diverges"
    );
    let f: Vec<&Slot> = flat.iter().collect();
    let i: Vec<&Slot> = interval.iter().collect();
    assert_eq!(f, i, "step {step}: iteration order diverges");
    // The facade's PartialEq is the engine-checkpoint comparison; it must
    // agree with the element-wise view.
    assert_eq!(flat, interval, "step {step}: observable equality diverges");
    // iter_from must agree from every boundary the list knows about.
    if let Some(first) = f.first() {
        let from = first.start() + TimeDelta::new(1);
        let ff: Vec<&Slot> = flat.iter_from(from).collect();
        let fi: Vec<&Slot> = interval.iter_from(from).collect();
        assert_eq!(ff, fi, "step {step}: iter_from diverges");
    }
}

/// Applies one interpreted op to both lists, asserting identical results
/// (values *and* errors). Returns false if the op interpreted to a no-op.
fn apply(op: &Op, flat: &mut SlotList, interval: &mut SlotList) -> bool {
    // Interpret indices against the oracle's current view; both lists are
    // equal at entry, so the view is shared.
    let view: Vec<Slot> = flat.iter().copied().collect();
    match *op {
        Op::Publish {
            node,
            gap,
            len,
            perf,
            price,
        } => {
            let node = NodeId::new(node);
            let start = view
                .iter()
                .filter(|s| s.node() == node)
                .map(|s| s.end().ticks())
                .max()
                .unwrap_or(0)
                + gap;
            let id_f = flat.mint_id();
            let id_i = interval.mint_id();
            assert_eq!(id_f, id_i, "minted ids diverge");
            let slot = Slot::new(
                id_f,
                node,
                Perf::from_milli(perf),
                Price::from_credits(price),
                Span::new(TimePoint::new(start), TimePoint::new(start + len)).unwrap(),
            )
            .unwrap();
            assert_eq!(flat.insert(slot), Ok(()));
            assert_eq!(interval.insert(slot), Ok(()));
            true
        }
        Op::SubtractWindow { picks, offset } => {
            if view.is_empty() {
                return false;
            }
            // Up to three members on distinct nodes.
            let mut members: Vec<Slot> = Vec::new();
            for pick in picks {
                let s = view[pick % view.len()];
                if !members.iter().any(|m| m.node() == s.node()) {
                    members.push(s);
                }
            }
            let start = members.iter().map(|s| s.start().ticks()).max().unwrap() + offset;
            let runtime = members
                .iter()
                .map(|s| s.end().ticks() - start)
                .min()
                .unwrap();
            if runtime <= 0 {
                return false;
            }
            // Keep only members whose span actually contains the cut.
            members.retain(|s| s.start().ticks() <= start);
            if members.is_empty() {
                return false;
            }
            let window = Window::new(
                TimePoint::new(start),
                members
                    .iter()
                    .map(|s| WindowSlot::from_slot(s, TimeDelta::new(runtime)).unwrap())
                    .collect(),
            )
            .unwrap();
            let rf = flat.subtract_window_report(&window);
            let ri = interval.subtract_window_report(&window);
            assert_eq!(rf, ri, "subtraction reports diverge");
            true
        }
        Op::Carve { pick, lo, hi } => {
            if view.is_empty() {
                return false;
            }
            let victim = view[pick % view.len()];
            let len = victim.span().length().ticks();
            let (a, b) = ((lo % len).min(hi % len), (lo % len).max(hi % len) + 1);
            let cut = Span::new(
                victim.start() + TimeDelta::new(a),
                victim.start() + TimeDelta::new(b),
            )
            .unwrap();
            let rf = flat.subtract(victim.id(), cut);
            let ri = interval.subtract(victim.id(), cut);
            assert_eq!(rf, ri, "carve results diverge");
            assert_eq!(rf, Ok(()), "interior cut must succeed");
            true
        }
        Op::CarveOutside { pick } => {
            if view.is_empty() {
                return false;
            }
            let victim = view[pick % view.len()];
            let cut = Span::new(victim.start(), victim.end() + TimeDelta::new(1)).unwrap();
            let rf = flat.subtract(victim.id(), cut);
            let ri = interval.subtract(victim.id(), cut);
            assert!(
                matches!(rf, Err(CoreError::CutOutsideSlot { .. })),
                "oversized cut must be refused, got {rf:?}"
            );
            assert_eq!(rf, ri, "out-of-span rejections diverge");
            // And a cut against a retired id must also agree.
            let ghost = SlotId::new(u64::MAX);
            let rf = flat.subtract(ghost, cut);
            let ri = interval.subtract(ghost, cut);
            assert!(matches!(rf, Err(CoreError::SlotNotFound { .. })));
            assert_eq!(rf, ri, "missing-id rejections diverge");
            true
        }
        Op::RemoveRegion { pick, pad } => {
            if view.is_empty() {
                return false;
            }
            let victim = view[pick % view.len()];
            let region = Span::new(
                TimePoint::new(victim.start().ticks() - pad),
                victim.end() + TimeDelta::new(pad),
            )
            .unwrap();
            let rf = flat.remove_region(victim.node(), region);
            let ri = interval.remove_region(victim.node(), region);
            assert_eq!(rf, ri, "removed id sets diverge");
            assert!(rf.contains(&victim.id()));
            true
        }
        Op::TailReturn { pick, keep } => {
            if view.is_empty() {
                return false;
            }
            let victim = view[pick % view.len()];
            let len = victim.span().length().ticks();
            let used = (keep % len).max(1);
            if used >= len {
                return false;
            }
            let rf = flat.remove_region(victim.node(), victim.span());
            let ri = interval.remove_region(victim.node(), victim.span());
            assert_eq!(rf, ri, "lease takeover removals diverge");
            let id_f = flat.mint_id();
            let id_i = interval.mint_id();
            assert_eq!(id_f, id_i, "tail ids diverge");
            let tail = Slot::new(
                id_f,
                victim.node(),
                victim.perf(),
                victim.price(),
                Span::new(victim.start() + TimeDelta::new(used), victim.end()).unwrap(),
            )
            .unwrap();
            assert_eq!(flat.insert(tail), Ok(()));
            assert_eq!(interval.insert(tail), Ok(()));
            true
        }
        Op::Coalesce => {
            let rf = flat.coalesce();
            let ri = interval.coalesce();
            assert_eq!(rf, ri, "coalesce absorption counts diverge");
            true
        }
        Op::Expire { pick } => {
            if view.is_empty() {
                return false;
            }
            let horizon = view[pick % view.len()].end();
            let floor = view.iter().map(|s| s.start().ticks()).min().unwrap() - 1;
            if floor >= horizon.ticks() {
                return false;
            }
            let region = Span::new(TimePoint::new(floor), horizon).unwrap();
            let mut nodes: Vec<NodeId> = view.iter().map(Slot::node).collect();
            nodes.dedup();
            for node in nodes {
                let rf = flat.remove_region(node, region);
                let ri = interval.remove_region(node, region);
                assert_eq!(rf, ri, "expiry sweeps diverge");
            }
            true
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The workhorse: a random op sequence, checked observable-by-
    /// observable after every step, then across representation
    /// conversion and serde.
    #[test]
    fn interval_market_is_observably_identical_to_flat(
        seed in seed_slots_strategy(),
        ops in prop::collection::vec(op_strategy(), 1..40),
    ) {
        let mut flat = SlotList::from_slots_with_repr(seed.clone(), MarketRepr::Flat).unwrap();
        let mut interval = SlotList::from_slots_with_repr(seed, MarketRepr::Interval).unwrap();
        assert_observably_equal(0, &flat, &interval);

        for (step, op) in ops.iter().enumerate() {
            apply(op, &mut flat, &mut interval);
            assert_observably_equal(step + 1, &flat, &interval);
        }

        // Crossing the representation boundary after an arbitrary history
        // must be lossless in both directions, `next_id` included.
        let crossed = flat.clone().with_repr(MarketRepr::Interval);
        prop_assert_eq!(&crossed, &interval);
        let back = interval.clone().with_repr(MarketRepr::Flat);
        prop_assert_eq!(&back, &flat);
        let mut crossed = crossed;
        let mut back = back;
        prop_assert_eq!(crossed.mint_id(), back.mint_id(), "next_id lost in conversion");

        // And both serde forms round-trip to the same observable state.
        let f2: SlotList = serde::Deserialize::from_value(&serde::Serialize::to_value(&flat))
            .expect("flat round-trip");
        let i2: SlotList = serde::Deserialize::from_value(&serde::Serialize::to_value(&interval))
            .expect("interval round-trip");
        prop_assert_eq!(&f2, &flat);
        prop_assert_eq!(&i2, &interval);
        prop_assert_eq!(&f2, &i2);
    }

    /// Publish-only sequences exercise the pure insertion path (the
    /// cycle-start market build) at higher volume.
    #[test]
    fn publication_order_is_identical(
        seed in seed_slots_strategy(),
        publishes in prop::collection::vec(
            (0u32..6, 0i64..60, 1i64..250, 500i64..3000, 1i64..12),
            1..60,
        ),
    ) {
        let mut flat = SlotList::from_slots_with_repr(seed.clone(), MarketRepr::Flat).unwrap();
        let mut interval = SlotList::from_slots_with_repr(seed, MarketRepr::Interval).unwrap();
        for (node, gap, len, perf, price) in publishes {
            apply(
                &Op::Publish { node, gap, len, perf, price },
                &mut flat,
                &mut interval,
            );
        }
        assert_observably_equal(usize::MAX, &flat, &interval);
    }
}
