//! Resource requests: what a job asks the metascheduler for.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::money::{Money, Price};
use crate::perf::Perf;
use crate::slot::Slot;
use crate::time::TimeDelta;

/// A job's resource request (Sec. 3 of the paper): `N` concurrent slots for
/// a wall time `t`, on nodes with performance at least `P`, at a price per
/// slot per time unit of at most `C`.
///
/// The AMP algorithm replaces the per-slot cap `C` by the job budget
/// `S = C·t·N`, available as [`ResourceRequest::budget`].
///
/// # Examples
///
/// ```
/// use ecosched_core::{Money, Perf, Price, ResourceRequest, TimeDelta};
///
/// let req = ResourceRequest::new(
///     2,
///     TimeDelta::new(80),
///     Perf::UNIT,
///     Price::from_credits(5),
/// )?;
/// assert_eq!(req.budget(), Money::from_credits(5 * 80 * 2));
/// # Ok::<(), ecosched_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ResourceRequest {
    nodes: usize,
    wall_time: TimeDelta,
    min_perf: Perf,
    price_cap: Price,
}

impl ResourceRequest {
    /// Creates a request for `nodes` concurrent slots of `wall_time` ticks
    /// (measured at performance `min_perf`), each slot costing at most
    /// `price_cap` per time unit.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidRequest`] if `nodes` is zero, if
    /// `wall_time` is not strictly positive, or if `price_cap` is negative.
    pub fn new(
        nodes: usize,
        wall_time: TimeDelta,
        min_perf: Perf,
        price_cap: Price,
    ) -> Result<Self, CoreError> {
        if nodes == 0 {
            return Err(CoreError::InvalidRequest {
                reason: "a job needs at least one node".into(),
            });
        }
        if !wall_time.is_positive() {
            return Err(CoreError::InvalidRequest {
                reason: format!("wall time must be positive, got {wall_time}"),
            });
        }
        if price_cap < Price::ZERO {
            return Err(CoreError::InvalidRequest {
                reason: "price cap must be non-negative".into(),
            });
        }
        Ok(ResourceRequest {
            nodes,
            wall_time,
            min_perf,
            price_cap,
        })
    }

    /// Required number of concurrent slots (the paper's `N`).
    #[must_use]
    pub const fn nodes(&self) -> usize {
        self.nodes
    }

    /// Requested wall time `t`, at node performance `min_perf`.
    #[must_use]
    pub const fn wall_time(&self) -> TimeDelta {
        self.wall_time
    }

    /// Minimum acceptable node performance rate `P`.
    #[must_use]
    pub const fn min_perf(&self) -> Perf {
        self.min_perf
    }

    /// Maximum price per slot per time unit `C`.
    #[must_use]
    pub const fn price_cap(&self) -> Price {
        self.price_cap
    }

    /// The AMP job budget `S = C·t·N`.
    #[must_use]
    pub fn budget(&self) -> Money {
        (self.price_cap * self.wall_time) * self.nodes as i64
    }

    /// The discounted budget `S = ρ·C·t·N` from Sec. 6 of the paper.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is not in `(0, 1]`.
    #[must_use]
    pub fn budget_scaled(&self, rho: f64) -> Money {
        assert!(rho > 0.0 && rho <= 1.0, "rho must be in (0, 1], got {rho}");
        self.budget().scale_f64(rho)
    }

    /// Runtime of one task of this job on a node with performance `perf`:
    /// `ceil(t / P(node))`, with `t` etalon-relative (corrected condition
    /// 2°b — see DESIGN.md note R1 and Sec. 6's `t/P`).
    #[must_use]
    pub fn runtime_on(&self, perf: Perf) -> TimeDelta {
        perf.runtime_for(self.wall_time, Perf::UNIT)
    }

    /// Returns `true` if `slot`'s node meets the minimum performance
    /// requirement (condition 2°a).
    #[must_use]
    pub fn perf_ok(&self, slot: &Slot) -> bool {
        slot.perf().satisfies(self.min_perf)
    }

    /// Returns `true` if `slot`'s price passes the per-slot cap
    /// (ALP condition 2°c).
    #[must_use]
    pub fn price_ok(&self, slot: &Slot) -> bool {
        slot.price() <= self.price_cap
    }
}

impl fmt::Display for ResourceRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "request(N={}, t={}, P≥{}, C≤{})",
            self.nodes, self.wall_time, self.min_perf, self.price_cap
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::NodeId;
    use crate::slot::SlotId;
    use crate::time::{Span, TimePoint};

    fn request(n: usize, t: i64, p: f64, c: i64) -> ResourceRequest {
        ResourceRequest::new(
            n,
            TimeDelta::new(t),
            Perf::from_f64(p),
            Price::from_credits(c),
        )
        .unwrap()
    }

    fn slot(perf: f64, price: i64) -> Slot {
        Slot::new(
            SlotId::new(0),
            NodeId::new(0),
            Perf::from_f64(perf),
            Price::from_credits(price),
            Span::new(TimePoint::ZERO, TimePoint::new(1000)).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn validation_rejects_degenerate_requests() {
        assert!(ResourceRequest::new(0, TimeDelta::new(1), Perf::UNIT, Price::ZERO).is_err());
        assert!(ResourceRequest::new(1, TimeDelta::ZERO, Perf::UNIT, Price::ZERO).is_err());
        assert!(ResourceRequest::new(1, TimeDelta::new(-5), Perf::UNIT, Price::ZERO).is_err());
        assert!(
            ResourceRequest::new(1, TimeDelta::new(1), Perf::UNIT, Price::from_credits(-1))
                .is_err()
        );
    }

    #[test]
    fn budget_is_ctn() {
        let req = request(3, 30, 1.0, 10);
        assert_eq!(req.budget(), Money::from_credits(10 * 30 * 3));
    }

    #[test]
    fn scaled_budget_applies_rho() {
        let req = request(2, 50, 1.0, 6);
        assert_eq!(req.budget_scaled(0.8), Money::from_credits(480));
        assert_eq!(req.budget_scaled(1.0), req.budget());
    }

    #[test]
    #[should_panic(expected = "rho must be in (0, 1]")]
    fn rho_out_of_range_panics() {
        let _ = request(1, 1, 1.0, 1).budget_scaled(1.5);
    }

    #[test]
    fn runtime_scales_with_node_perf() {
        let req = request(1, 100, 1.0, 10);
        assert_eq!(req.runtime_on(Perf::from_f64(1.0)), TimeDelta::new(100));
        assert_eq!(req.runtime_on(Perf::from_f64(2.0)), TimeDelta::new(50));
    }

    #[test]
    fn perf_and_price_conditions() {
        let req = request(1, 100, 1.5, 4);
        assert!(req.perf_ok(&slot(1.5, 10)));
        assert!(!req.perf_ok(&slot(1.2, 1)));
        assert!(req.price_ok(&slot(1.0, 4)));
        assert!(!req.price_ok(&slot(1.0, 5)));
    }

    #[test]
    fn display_lists_all_fields() {
        let text = format!("{}", request(2, 80, 1.0, 5));
        assert!(text.contains("N=2"));
        assert!(text.contains("80Δ"));
    }
}
