//! Jobs and job batches.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::request::ResourceRequest;

/// Identifier of a job within a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(u32);

impl JobId {
    /// Creates a job identifier.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        JobId(index)
    }

    /// Returns the underlying index.
    #[must_use]
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// An independent parallel job: an id plus its resource request.
///
/// # Examples
///
/// ```
/// use ecosched_core::{Job, JobId, Perf, Price, ResourceRequest, TimeDelta};
///
/// let req = ResourceRequest::new(2, TimeDelta::new(80), Perf::UNIT, Price::from_credits(5))?;
/// let job = Job::new(JobId::new(0), req);
/// assert_eq!(job.request().nodes(), 2);
/// # Ok::<(), ecosched_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Job {
    id: JobId,
    request: ResourceRequest,
}

impl Job {
    /// Creates a job.
    #[must_use]
    pub const fn new(id: JobId, request: ResourceRequest) -> Self {
        Job { id, request }
    }

    /// The job identifier.
    #[must_use]
    pub const fn id(&self) -> JobId {
        self.id
    }

    /// The job's resource request.
    #[must_use]
    pub const fn request(&self) -> &ResourceRequest {
        &self.request
    }
}

impl fmt::Display for Job {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.id, self.request)
    }
}

/// An ordered batch of jobs (the paper's `J = {j_1, …, j_n}`).
///
/// Order encodes priority: the alternatives search serves earlier jobs
/// first, exactly as the worked example assumes ("Job 1 has the highest
/// priority").
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Batch {
    jobs: Vec<Job>,
}

impl Batch {
    /// Creates an empty batch.
    #[must_use]
    pub fn new() -> Self {
        Batch { jobs: Vec::new() }
    }

    /// Creates a batch from jobs in priority order.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DuplicateSlotId`]-style duplication errors are
    /// not applicable here; the only failure is an id collision, reported
    /// as [`CoreError::InvalidRequest`].
    pub fn from_jobs(jobs: Vec<Job>) -> Result<Self, CoreError> {
        for (i, a) in jobs.iter().enumerate() {
            if jobs[..i].iter().any(|b| b.id() == a.id()) {
                return Err(CoreError::InvalidRequest {
                    reason: format!("duplicate job id {}", a.id()),
                });
            }
        }
        Ok(Batch { jobs })
    }

    /// Appends a job at the lowest priority position.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidRequest`] on a job-id collision.
    pub fn push(&mut self, job: Job) -> Result<(), CoreError> {
        if self.jobs.iter().any(|b| b.id() == job.id()) {
            return Err(CoreError::InvalidRequest {
                reason: format!("duplicate job id {}", job.id()),
            });
        }
        self.jobs.push(job);
        Ok(())
    }

    /// Number of jobs in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Returns `true` if the batch holds no jobs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Iterates jobs in priority order.
    pub fn iter(&self) -> std::slice::Iter<'_, Job> {
        self.jobs.iter()
    }

    /// The jobs in priority order.
    #[must_use]
    pub fn as_slice(&self) -> &[Job] {
        &self.jobs
    }

    /// Looks up a job by id.
    #[must_use]
    pub fn get(&self, id: JobId) -> Option<&Job> {
        self.jobs.iter().find(|j| j.id() == id)
    }
}

impl<'a> IntoIterator for &'a Batch {
    type Item = &'a Job;
    type IntoIter = std::slice::Iter<'a, Job>;
    fn into_iter(self) -> Self::IntoIter {
        self.jobs.iter()
    }
}

impl IntoIterator for Batch {
    type Item = Job;
    type IntoIter = std::vec::IntoIter<Job>;
    fn into_iter(self) -> Self::IntoIter {
        self.jobs.into_iter()
    }
}

impl fmt::Display for Batch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "batch ({} jobs):", self.len())?;
        for job in &self.jobs {
            writeln!(f, "  {job}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::money::Price;
    use crate::perf::Perf;
    use crate::time::TimeDelta;

    fn job(id: u32) -> Job {
        Job::new(
            JobId::new(id),
            ResourceRequest::new(1, TimeDelta::new(10), Perf::UNIT, Price::from_credits(1))
                .unwrap(),
        )
    }

    #[test]
    fn batch_preserves_priority_order() {
        let batch = Batch::from_jobs(vec![job(2), job(0), job(1)]).unwrap();
        let ids: Vec<u32> = batch.iter().map(|j| j.id().index()).collect();
        assert_eq!(ids, vec![2, 0, 1]);
    }

    #[test]
    fn duplicate_job_ids_rejected() {
        assert!(Batch::from_jobs(vec![job(1), job(1)]).is_err());
        let mut batch = Batch::from_jobs(vec![job(1)]).unwrap();
        assert!(batch.push(job(1)).is_err());
        assert!(batch.push(job(2)).is_ok());
        assert_eq!(batch.len(), 2);
    }

    #[test]
    fn get_by_id() {
        let batch = Batch::from_jobs(vec![job(5), job(7)]).unwrap();
        assert_eq!(batch.get(JobId::new(7)).unwrap().id(), JobId::new(7));
        assert!(batch.get(JobId::new(9)).is_none());
    }

    #[test]
    fn empty_batch_behaves() {
        let batch = Batch::new();
        assert!(batch.is_empty());
        assert_eq!(batch.len(), 0);
        assert_eq!(batch.iter().count(), 0);
    }

    #[test]
    fn iteration_both_ways() {
        let batch = Batch::from_jobs(vec![job(1), job(2)]).unwrap();
        assert_eq!((&batch).into_iter().count(), 2);
        assert_eq!(batch.clone().into_iter().count(), 2);
    }

    #[test]
    fn display_lists_jobs() {
        let batch = Batch::from_jobs(vec![job(1)]).unwrap();
        let text = format!("{batch}");
        assert!(text.contains("1 jobs"));
        assert!(text.contains("job1"));
    }
}
