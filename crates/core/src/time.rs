//! Discrete simulation time: points, deltas, and half-open spans.
//!
//! The paper treats time as integer ticks (slot starts/ends such as
//! `[150, 230]`). We model a point on the global timeline as [`TimePoint`]
//! and a signed distance between points as [`TimeDelta`]. A contiguous
//! reservation interval is a half-open [`Span`] `[start, end)`.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point on the discrete global timeline, in ticks since the epoch.
///
/// # Examples
///
/// ```
/// use ecosched_core::{TimeDelta, TimePoint};
///
/// let t = TimePoint::new(150) + TimeDelta::new(80);
/// assert_eq!(t, TimePoint::new(230));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TimePoint(i64);

impl TimePoint {
    /// The origin of the timeline.
    pub const ZERO: TimePoint = TimePoint(0);
    /// The latest representable point; useful as an "infinity" sentinel.
    pub const MAX: TimePoint = TimePoint(i64::MAX);

    /// Creates a time point at `ticks` ticks since the epoch.
    #[must_use]
    pub const fn new(ticks: i64) -> Self {
        TimePoint(ticks)
    }

    /// Returns the raw tick count.
    #[must_use]
    pub const fn ticks(self) -> i64 {
        self.0
    }

    /// Returns the signed distance from `earlier` to `self`.
    ///
    /// ```
    /// use ecosched_core::{TimeDelta, TimePoint};
    ///
    /// let d = TimePoint::new(230).since(TimePoint::new(150));
    /// assert_eq!(d, TimeDelta::new(80));
    /// ```
    #[must_use]
    pub const fn since(self, earlier: TimePoint) -> TimeDelta {
        TimeDelta(self.0 - earlier.0)
    }

    /// Returns the later of two points.
    #[must_use]
    pub fn max(self, other: TimePoint) -> TimePoint {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two points.
    #[must_use]
    pub fn min(self, other: TimePoint) -> TimePoint {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for TimePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A signed duration in ticks.
///
/// # Examples
///
/// ```
/// use ecosched_core::TimeDelta;
///
/// let half = TimeDelta::new(80) / 2;
/// assert_eq!(half, TimeDelta::new(40));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TimeDelta(i64);

impl TimeDelta {
    /// The zero duration.
    pub const ZERO: TimeDelta = TimeDelta(0);
    /// The largest representable duration.
    pub const MAX: TimeDelta = TimeDelta(i64::MAX);

    /// Creates a duration of `ticks` ticks.
    #[must_use]
    pub const fn new(ticks: i64) -> Self {
        TimeDelta(ticks)
    }

    /// Returns the raw tick count.
    #[must_use]
    pub const fn ticks(self) -> i64 {
        self.0
    }

    /// Returns `true` if the duration is exactly zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns `true` if the duration is strictly positive.
    #[must_use]
    pub const fn is_positive(self) -> bool {
        self.0 > 0
    }

    /// Returns the larger of two durations.
    #[must_use]
    pub fn max(self, other: TimeDelta) -> TimeDelta {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two durations.
    #[must_use]
    pub fn min(self, other: TimeDelta) -> TimeDelta {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}Δ", self.0)
    }
}

impl Add<TimeDelta> for TimePoint {
    type Output = TimePoint;
    fn add(self, rhs: TimeDelta) -> TimePoint {
        TimePoint(self.0 + rhs.0)
    }
}

impl AddAssign<TimeDelta> for TimePoint {
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub<TimeDelta> for TimePoint {
    type Output = TimePoint;
    fn sub(self, rhs: TimeDelta) -> TimePoint {
        TimePoint(self.0 - rhs.0)
    }
}

impl SubAssign<TimeDelta> for TimePoint {
    fn sub_assign(&mut self, rhs: TimeDelta) {
        self.0 -= rhs.0;
    }
}

impl Sub for TimePoint {
    type Output = TimeDelta;
    fn sub(self, rhs: TimePoint) -> TimeDelta {
        TimeDelta(self.0 - rhs.0)
    }
}

impl Add for TimeDelta {
    type Output = TimeDelta;
    fn add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 + rhs.0)
    }
}

impl AddAssign for TimeDelta {
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub for TimeDelta {
    type Output = TimeDelta;
    fn sub(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 - rhs.0)
    }
}

impl SubAssign for TimeDelta {
    fn sub_assign(&mut self, rhs: TimeDelta) {
        self.0 -= rhs.0;
    }
}

impl Neg for TimeDelta {
    type Output = TimeDelta;
    fn neg(self) -> TimeDelta {
        TimeDelta(-self.0)
    }
}

impl Mul<i64> for TimeDelta {
    type Output = TimeDelta;
    fn mul(self, rhs: i64) -> TimeDelta {
        TimeDelta(self.0 * rhs)
    }
}

impl Div<i64> for TimeDelta {
    type Output = TimeDelta;
    fn div(self, rhs: i64) -> TimeDelta {
        TimeDelta(self.0 / rhs)
    }
}

impl std::iter::Sum for TimeDelta {
    fn sum<I: Iterator<Item = TimeDelta>>(iter: I) -> TimeDelta {
        iter.fold(TimeDelta::ZERO, Add::add)
    }
}

/// A half-open time interval `[start, end)`.
///
/// Invariant: `start <= end`. An empty span (`start == end`) is permitted
/// only as a transient value; [`crate::Slot`] construction rejects it.
///
/// # Examples
///
/// ```
/// use ecosched_core::{Span, TimeDelta, TimePoint};
///
/// let s = Span::new(TimePoint::new(150), TimePoint::new(230)).unwrap();
/// assert_eq!(s.length(), TimeDelta::new(80));
/// assert!(s.contains(TimePoint::new(150)));
/// assert!(!s.contains(TimePoint::new(230)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Span {
    start: TimePoint,
    end: TimePoint,
}

impl Span {
    /// Creates a span from `start` to `end`.
    ///
    /// Returns `None` if `end < start`.
    #[must_use]
    pub fn new(start: TimePoint, end: TimePoint) -> Option<Span> {
        if end < start {
            None
        } else {
            Some(Span { start, end })
        }
    }

    /// Creates the span `[start, start + length)`.
    ///
    /// Returns `None` if `length` is negative.
    #[must_use]
    pub fn from_start_length(start: TimePoint, length: TimeDelta) -> Option<Span> {
        if length < TimeDelta::ZERO {
            None
        } else {
            Some(Span {
                start,
                end: start + length,
            })
        }
    }

    /// The inclusive start of the span.
    #[must_use]
    pub const fn start(self) -> TimePoint {
        self.start
    }

    /// The exclusive end of the span.
    #[must_use]
    pub const fn end(self) -> TimePoint {
        self.end
    }

    /// The span length `end - start`.
    #[must_use]
    pub const fn length(self) -> TimeDelta {
        TimeDelta(self.end.0 - self.start.0)
    }

    /// Returns `true` if the span covers no ticks.
    #[must_use]
    pub const fn is_empty(self) -> bool {
        self.start.0 == self.end.0
    }

    /// Returns `true` if `point` lies inside `[start, end)`.
    #[must_use]
    pub fn contains(self, point: TimePoint) -> bool {
        self.start <= point && point < self.end
    }

    /// Returns `true` if `other` is entirely inside this span.
    #[must_use]
    pub fn contains_span(self, other: Span) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Returns the overlap of two spans, or `None` when they are disjoint
    /// (touching spans share no ticks and are considered disjoint).
    ///
    /// ```
    /// use ecosched_core::{Span, TimePoint};
    ///
    /// let a = Span::new(TimePoint::new(0), TimePoint::new(10)).unwrap();
    /// let b = Span::new(TimePoint::new(5), TimePoint::new(15)).unwrap();
    /// let i = a.intersect(b).unwrap();
    /// assert_eq!((i.start(), i.end()), (TimePoint::new(5), TimePoint::new(10)));
    /// ```
    #[must_use]
    pub fn intersect(self, other: Span) -> Option<Span> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start < end {
            Some(Span { start, end })
        } else {
            None
        }
    }

    /// Returns `true` if the spans share at least one tick.
    #[must_use]
    pub fn overlaps(self, other: Span) -> bool {
        self.intersect(other).is_some()
    }

    /// Subtracts `cut` from this span, returning the (possibly empty) left
    /// and right remnants that survive.
    ///
    /// This is the slot-subtraction primitive of Fig. 1 (b) of the paper:
    /// removing the used interval `K'` from slot `K` leaves `K1 = [K.start,
    /// K'.start)` and `K2 = [K'.end, K.end)`; zero-length remnants are
    /// dropped.
    ///
    /// ```
    /// use ecosched_core::{Span, TimePoint};
    ///
    /// let k = Span::new(TimePoint::new(0), TimePoint::new(100)).unwrap();
    /// let cut = Span::new(TimePoint::new(20), TimePoint::new(50)).unwrap();
    /// let (k1, k2) = k.subtract(cut);
    /// assert_eq!(k1.unwrap().end(), TimePoint::new(20));
    /// assert_eq!(k2.unwrap().start(), TimePoint::new(50));
    /// ```
    #[must_use]
    pub fn subtract(self, cut: Span) -> (Option<Span>, Option<Span>) {
        match self.intersect(cut) {
            None => (Some(self), None),
            Some(hit) => {
                let left = Span {
                    start: self.start,
                    end: hit.start,
                };
                let right = Span {
                    start: hit.end,
                    end: self.end,
                };
                (
                    (!left.is_empty()).then_some(left),
                    (!right.is_empty()).then_some(right),
                )
            }
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start.0, self.end.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp(a: i64, b: i64) -> Span {
        Span::new(TimePoint::new(a), TimePoint::new(b)).unwrap()
    }

    #[test]
    fn point_arithmetic_round_trips() {
        let t = TimePoint::new(100);
        let d = TimeDelta::new(42);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.since(TimePoint::ZERO), TimeDelta::new(100));
    }

    #[test]
    fn point_min_max() {
        let a = TimePoint::new(1);
        let b = TimePoint::new(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(a), a);
    }

    #[test]
    fn delta_sum_and_scale() {
        let total: TimeDelta = [1, 2, 3].iter().map(|&x| TimeDelta::new(x)).sum();
        assert_eq!(total, TimeDelta::new(6));
        assert_eq!(TimeDelta::new(6) * 2, TimeDelta::new(12));
        assert_eq!(TimeDelta::new(7) / 2, TimeDelta::new(3));
        assert_eq!(-TimeDelta::new(5), TimeDelta::new(-5));
    }

    #[test]
    fn span_rejects_reversed_bounds() {
        assert!(Span::new(TimePoint::new(5), TimePoint::new(4)).is_none());
        assert!(Span::from_start_length(TimePoint::ZERO, TimeDelta::new(-1)).is_none());
    }

    #[test]
    fn span_membership_is_half_open() {
        let s = sp(10, 20);
        assert!(s.contains(TimePoint::new(10)));
        assert!(s.contains(TimePoint::new(19)));
        assert!(!s.contains(TimePoint::new(20)));
        assert!(!s.contains(TimePoint::new(9)));
    }

    #[test]
    fn touching_spans_do_not_overlap() {
        assert!(!sp(0, 10).overlaps(sp(10, 20)));
        assert!(sp(0, 11).overlaps(sp(10, 20)));
    }

    #[test]
    fn intersect_is_commutative() {
        let a = sp(0, 50);
        let b = sp(30, 80);
        assert_eq!(a.intersect(b), b.intersect(a));
        assert_eq!(a.intersect(b).unwrap(), sp(30, 50));
    }

    #[test]
    fn subtract_disjoint_returns_self() {
        let (l, r) = sp(0, 10).subtract(sp(20, 30));
        assert_eq!(l, Some(sp(0, 10)));
        assert_eq!(r, None);
    }

    #[test]
    fn subtract_interior_cut_splits_in_two() {
        let (l, r) = sp(0, 100).subtract(sp(40, 60));
        assert_eq!(l, Some(sp(0, 40)));
        assert_eq!(r, Some(sp(60, 100)));
    }

    #[test]
    fn subtract_prefix_cut_leaves_right_only() {
        let (l, r) = sp(0, 100).subtract(sp(0, 30));
        assert_eq!(l, None);
        assert_eq!(r, Some(sp(30, 100)));
    }

    #[test]
    fn subtract_suffix_cut_leaves_left_only() {
        let (l, r) = sp(0, 100).subtract(sp(70, 100));
        assert_eq!(l, Some(sp(0, 70)));
        assert_eq!(r, None);
    }

    #[test]
    fn subtract_total_cut_removes_everything() {
        let (l, r) = sp(10, 20).subtract(sp(0, 100));
        assert_eq!(l, None);
        assert_eq!(r, None);
    }

    #[test]
    fn subtract_overhanging_cut_clamps() {
        let (l, r) = sp(10, 100).subtract(sp(0, 40));
        assert_eq!(l, None);
        assert_eq!(r, Some(sp(40, 100)));
    }

    #[test]
    fn contains_span_reflexive_and_strict() {
        let outer = sp(0, 100);
        assert!(outer.contains_span(outer));
        assert!(outer.contains_span(sp(10, 90)));
        assert!(!sp(10, 90).contains_span(outer));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", TimePoint::new(5)), "t5");
        assert_eq!(format!("{}", TimeDelta::new(5)), "5Δ");
        assert_eq!(format!("{}", sp(1, 2)), "[1, 2)");
    }
}
