//! Per-node interval timelines: the tree-structured market representation.
//!
//! A flat start-ordered vector ([`crate::SlotList`]'s historical form)
//! pays `O(m)` memmove on every subtraction splice and every tail-return
//! insert. This module stores the same market as one [`IntervalSet`] per
//! node — sorted disjoint `[start, end)` runs carrying `(price, perf)`
//! annotations in a `BTreeMap` keyed by start — plus a global
//! `(start, id)`-ordered view, so splits, merges, carving, and point
//! inserts are all `O(log n)` tree splices.
//!
//! The representation is **observably identical** to the flat list: the
//! same slots, the same ids (minting order included), the same
//! `(start, id)` iteration order, and the same
//! [`SubtractionReport`](crate::SubtractionReport)s. `ecosched-core`'s
//! differential proptest harness (`tests/interval_equivalence.rs`) pins
//! that equivalence op by op, which is what lets the engine's pinned
//! event-log hashes reproduce bit-for-bit under either representation.

use std::collections::{BTreeMap, HashMap};

use crate::error::CoreError;
use crate::money::Price;
use crate::perf::Perf;
use crate::resource::NodeId;
use crate::slot::{Slot, SlotId};
use crate::time::{Span, TimeDelta, TimePoint};

/// One free run `[start, end)` on a node's timeline, annotated with the
/// slot identity and economic attributes the market tracks per interval.
///
/// The start is the key of the owning [`IntervalSet`]'s tree, so a run
/// stores only the remaining fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    /// Exclusive end of the free interval.
    pub end: TimePoint,
    /// Identity of the slot occupying this run.
    pub id: SlotId,
    /// Node performance over the run.
    pub perf: Perf,
    /// Price per time unit over the run.
    pub price: Price,
}

impl Run {
    fn of_slot(slot: &Slot) -> (TimePoint, Run) {
        (
            slot.start(),
            Run {
                end: slot.end(),
                id: slot.id(),
                perf: slot.perf(),
                price: slot.price(),
            },
        )
    }

    fn to_slot(self, node: NodeId, start: TimePoint) -> Slot {
        Slot::new(
            self.id,
            node,
            self.perf,
            self.price,
            Span::new(start, self.end).expect("stored runs are non-empty"),
        )
        .expect("stored runs construct valid slots")
    }
}

/// A single node's timeline of disjoint free runs, ordered by start.
///
/// All operations are `O(log n)` in the number of runs on the node
/// (plus output size), because the tree is keyed by run start and
/// same-node disjointness makes the start a unique key.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntervalSet {
    runs: BTreeMap<TimePoint, Run>,
}

impl IntervalSet {
    /// Creates an empty timeline.
    #[must_use]
    pub fn new() -> Self {
        IntervalSet::default()
    }

    /// Number of free runs on the timeline.
    #[must_use]
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Returns `true` if the timeline has no runs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Iterates `(start, run)` pairs in start order.
    pub fn iter(&self) -> impl Iterator<Item = (TimePoint, &Run)> {
        self.runs.iter().map(|(&start, run)| (start, run))
    }

    /// Inserts a run, enforcing disjointness against its tree neighbours.
    ///
    /// # Errors
    ///
    /// Returns the conflicting run's id if the new run overlaps an
    /// existing one (including an exact start collision).
    pub fn insert(&mut self, start: TimePoint, run: Run) -> Result<(), SlotId> {
        debug_assert!(start < run.end, "runs must be non-empty");
        if let Some((_, prev)) = self.runs.range(..=start).next_back() {
            if prev.end > start {
                return Err(prev.id);
            }
        }
        if let Some((&next_start, next)) = self.runs.range(start..).next() {
            if next_start < run.end {
                return Err(next.id);
            }
        }
        self.runs.insert(start, run);
        Ok(())
    }

    /// Removes and returns the run starting exactly at `start`.
    pub fn remove(&mut self, start: TimePoint) -> Option<Run> {
        self.runs.remove(&start)
    }

    /// The run whose interval fully contains `region`, if any: at most
    /// one exists, the last run starting at or before `region.start()`.
    #[must_use]
    pub fn covering(&self, region: Span) -> Option<(TimePoint, &Run)> {
        let (&start, run) = self.runs.range(..=region.start()).next_back()?;
        (run.end >= region.end() && start <= region.start()).then_some((start, run))
    }

    /// Every run that could overlap `region`, in start order: the
    /// predecessor of `region.start()` (which may reach into the region)
    /// followed by every run starting inside it. Callers intersect each
    /// candidate; a predecessor ending at or before `region.start()` is
    /// simply not affected.
    #[must_use]
    pub fn candidates(&self, region: Span) -> Vec<(TimePoint, Run)> {
        let mut out = Vec::new();
        if let Some((&start, run)) = self.runs.range(..region.start()).next_back() {
            out.push((start, *run));
        }
        out.extend(
            self.runs
                .range(region.start()..region.end())
                .map(|(&start, run)| (start, *run)),
        );
        out
    }

    /// Splits the run at `start` around `cut`, removing the cut interval
    /// and re-inserting the surviving left/right pieces under the ids
    /// produced by `mint` (left first, then right — the remnant minting
    /// order the flat list uses). Returns the minted remnants in that
    /// order.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CutOutsideSlot`] if `cut` is not fully
    /// contained in the run (the timeline is left unchanged).
    ///
    /// # Panics
    ///
    /// Panics if no run starts at `start` — resolve the run first (for
    /// example through [`IntervalSet::covering`]).
    pub fn subtract(
        &mut self,
        start: TimePoint,
        cut: Span,
        mut mint: impl FnMut() -> SlotId,
    ) -> Result<Vec<(TimePoint, Run)>, CoreError> {
        let run = *self.runs.get(&start).expect("no run starts at `start`");
        let span = Span::new(start, run.end).expect("stored runs are non-empty");
        if !span.contains_span(cut) {
            return Err(CoreError::CutOutsideSlot {
                id: run.id,
                slot_span: span,
                cut,
            });
        }
        self.runs.remove(&start);
        let (left, right) = span.subtract(cut);
        let mut minted = Vec::new();
        for piece in [left, right].into_iter().flatten() {
            let remnant = Run {
                end: piece.end(),
                id: mint(),
                perf: run.perf,
                price: run.price,
            };
            self.runs.insert(piece.start(), remnant);
            minted.push((piece.start(), remnant));
        }
        Ok(minted)
    }

    /// Merges every maximal chain of touching (`prev.end == next.start`)
    /// runs with equal price and performance into the chain head's run —
    /// the head keeps its id and absorbs the tail. Returns the absorbed
    /// `(start, id)` pairs and the surviving heads' extensions
    /// `(start, id, new_end)`, for callers maintaining parallel views.
    pub fn merge_touching(&mut self) -> MergeOutcome {
        let mut outcome = MergeOutcome::default();
        let mut rebuilt: BTreeMap<TimePoint, Run> = BTreeMap::new();
        let mut head: Option<(TimePoint, Run)> = None;
        for (&start, &run) in &self.runs {
            match &mut head {
                Some((head_start, head_run))
                    if head_run.end == start
                        && head_run.price == run.price
                        && head_run.perf == run.perf =>
                {
                    outcome.absorbed.push((start, run.id));
                    head_run.end = run.end;
                    match outcome.extended.last_mut() {
                        Some(last) if last.1 == head_run.id => last.2 = run.end,
                        _ => outcome.extended.push((*head_start, head_run.id, run.end)),
                    }
                }
                _ => {
                    if let Some((s, r)) = head.take() {
                        rebuilt.insert(s, r);
                    }
                    head = Some((start, run));
                }
            }
        }
        if let Some((s, r)) = head {
            rebuilt.insert(s, r);
        }
        if !outcome.absorbed.is_empty() {
            self.runs = rebuilt;
        }
        outcome
    }

    /// Checks adjacency disjointness and per-run well-formedness.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::OverlappingSlots`] (with the two offending
    /// ids) on the first adjacency violation.
    pub fn validate(&self, node: NodeId) -> Result<(), CoreError> {
        let mut prev: Option<(TimePoint, &Run)> = None;
        for (&start, run) in &self.runs {
            debug_assert!(start < run.end, "runs must be non-empty");
            if let Some((_, prev_run)) = prev {
                if prev_run.end > start {
                    return Err(CoreError::OverlappingSlots {
                        node,
                        first: prev_run.id,
                        second: run.id,
                    });
                }
            }
            prev = Some((start, run));
        }
        Ok(())
    }
}

/// What one [`IntervalSet::merge_touching`] pass changed.
#[derive(Debug, Clone, Default)]
pub struct MergeOutcome {
    /// Runs absorbed into a predecessor, as `(start, id)`, in start order.
    pub absorbed: Vec<(TimePoint, SlotId)>,
    /// Chain heads that grew, as `(start, id, new_end)`.
    pub extended: Vec<(TimePoint, SlotId, TimePoint)>,
}

/// The interval-backed market: per-node [`IntervalSet`] timelines plus a
/// global `(start, id)`-ordered slot view and an id index.
///
/// Invariants (checked by [`IntervalMarket::validate`]):
/// * `order` holds every live slot keyed by `(start, id)`;
/// * `index` maps each live id to its start;
/// * each node's timeline holds exactly that node's runs, disjoint, with
///   annotations matching the slot in `order`;
/// * `next_id` is strictly greater than every live id.
#[derive(Debug, Clone, Default)]
pub(crate) struct IntervalMarket {
    timelines: HashMap<NodeId, IntervalSet>,
    order: BTreeMap<(TimePoint, SlotId), Slot>,
    index: HashMap<SlotId, TimePoint>,
    next_id: u64,
}

impl IntervalMarket {
    pub(crate) fn new() -> Self {
        IntervalMarket::default()
    }

    /// Bulk-loads slots already in strictly increasing `(start, id)`
    /// order, with the same one-pass validation (and the same error
    /// payloads) as the flat list's sorted bulk load.
    pub(crate) fn from_sorted_slots(slots: Vec<Slot>) -> Result<Self, CoreError> {
        let mut market = IntervalMarket::new();
        // Running max vacant end per node: starts are non-decreasing, so a
        // new slot overlaps an earlier same-node slot iff it starts before
        // the furthest end seen on that node.
        let mut node_ends: HashMap<NodeId, (TimePoint, SlotId)> = HashMap::new();
        let mut prev: Option<(TimePoint, SlotId)> = None;
        for (i, slot) in slots.into_iter().enumerate() {
            if let Some(p) = prev {
                if p >= (slot.start(), slot.id()) {
                    return Err(CoreError::UnsortedSlots { index: i });
                }
            }
            prev = Some((slot.start(), slot.id()));
            if market.index.insert(slot.id(), slot.start()).is_some() {
                return Err(CoreError::DuplicateSlotId { id: slot.id() });
            }
            match node_ends.get_mut(&slot.node()) {
                Some((end, first)) => {
                    if slot.start() < *end {
                        return Err(CoreError::OverlappingSlots {
                            node: slot.node(),
                            first: *first,
                            second: slot.id(),
                        });
                    }
                    if slot.end() > *end {
                        *end = slot.end();
                        *first = slot.id();
                    }
                }
                None => {
                    node_ends.insert(slot.node(), (slot.end(), slot.id()));
                }
            }
            let (start, run) = Run::of_slot(&slot);
            market
                .timelines
                .entry(slot.node())
                .or_default()
                .runs
                .insert(start, run);
            market.order.insert((slot.start(), slot.id()), slot);
            market.next_id = market.next_id.max(slot.id().raw() + 1);
        }
        Ok(market)
    }

    /// Rebuilds from an in-order slot dump plus a trusted `next_id` —
    /// the representation-conversion path, no revalidation.
    pub(crate) fn from_parts(slots: impl IntoIterator<Item = Slot>, next_id: u64) -> Self {
        let mut market = IntervalMarket {
            next_id,
            ..IntervalMarket::default()
        };
        for slot in slots {
            let (start, run) = Run::of_slot(&slot);
            market
                .timelines
                .entry(slot.node())
                .or_default()
                .runs
                .insert(start, run);
            market.index.insert(slot.id(), slot.start());
            market.order.insert((slot.start(), slot.id()), slot);
        }
        market
    }

    pub(crate) fn next_id(&self) -> u64 {
        self.next_id
    }

    pub(crate) fn mint_id(&mut self) -> SlotId {
        let id = SlotId::new(self.next_id);
        self.next_id += 1;
        id
    }

    pub(crate) fn len(&self) -> usize {
        self.order.len()
    }

    pub(crate) fn iter(
        &self,
    ) -> std::collections::btree_map::Values<'_, (TimePoint, SlotId), Slot> {
        self.order.values()
    }

    pub(crate) fn range_from(
        &self,
        from: TimePoint,
    ) -> std::collections::btree_map::Range<'_, (TimePoint, SlotId), Slot> {
        self.order.range((from, SlotId::new(0))..)
    }

    pub(crate) fn insert(&mut self, slot: Slot) -> Result<(), CoreError> {
        if self.index.contains_key(&slot.id()) {
            return Err(CoreError::DuplicateSlotId { id: slot.id() });
        }
        let (start, run) = Run::of_slot(&slot);
        if let Err(first) = self
            .timelines
            .entry(slot.node())
            .or_default()
            .insert(start, run)
        {
            return Err(CoreError::OverlappingSlots {
                node: slot.node(),
                first,
                second: slot.id(),
            });
        }
        self.next_id = self.next_id.max(slot.id().raw() + 1);
        self.index.insert(slot.id(), slot.start());
        self.order.insert((slot.start(), slot.id()), slot);
        Ok(())
    }

    pub(crate) fn get(&self, id: SlotId) -> Option<&Slot> {
        let start = *self.index.get(&id)?;
        let slot = self.order.get(&(start, id));
        debug_assert!(slot.is_some(), "id index out of sync with the order map");
        slot
    }

    pub(crate) fn contains(&self, id: SlotId) -> bool {
        self.index.contains_key(&id)
    }

    pub(crate) fn earliest_start(&self) -> Option<TimePoint> {
        self.order.keys().next().map(|&(start, _)| start)
    }

    pub(crate) fn total_vacant_time(&self) -> TimeDelta {
        self.order.values().map(Slot::length).sum()
    }

    pub(crate) fn covering_slot(&self, node: NodeId, region: Span) -> Option<&Slot> {
        let timeline = self.timelines.get(&node)?;
        let (start, run) = timeline.covering(region)?;
        self.order.get(&(start, run.id))
    }

    /// Withdraws `region` from every run on `node` it overlaps, minting
    /// remnants exactly as the flat list does (candidates in start order,
    /// left remnant before right). Returns the ids of the affected runs.
    pub(crate) fn remove_region(&mut self, node: NodeId, region: Span) -> Vec<SlotId> {
        let candidates = match self.timelines.get(&node) {
            Some(timeline) => timeline.candidates(region),
            None => return Vec::new(),
        };
        let mut affected = Vec::new();
        for (start, run) in candidates {
            let span = Span::new(start, run.end).expect("stored runs are non-empty");
            if let Some(cut) = span.intersect(region) {
                self.subtract_collect(run.id, cut, &mut Vec::new())
                    .expect("the intersection lies inside the run");
                affected.push(run.id);
            }
        }
        affected
    }

    /// Removes the interval `cut` from the slot `id`, minting left/right
    /// remnants in order and appending them to `remnants`.
    pub(crate) fn subtract_collect(
        &mut self,
        id: SlotId,
        cut: Span,
        remnants: &mut Vec<Slot>,
    ) -> Result<(), CoreError> {
        let start = *self.index.get(&id).ok_or(CoreError::SlotNotFound { id })?;
        let slot = *self
            .order
            .get(&(start, id))
            .expect("id index out of sync with the order map");
        if !slot.span().contains_span(cut) {
            return Err(CoreError::CutOutsideSlot {
                id,
                slot_span: slot.span(),
                cut,
            });
        }
        let timeline = self
            .timelines
            .get_mut(&slot.node())
            .expect("every live slot has a timeline");
        let next_id = &mut self.next_id;
        let minted = timeline
            .subtract(start, cut, || {
                let rid = SlotId::new(*next_id);
                *next_id += 1;
                rid
            })
            .expect("containment was checked against the same span");
        if timeline.is_empty() {
            self.timelines.remove(&slot.node());
        }
        self.order.remove(&(start, id));
        self.index.remove(&id);
        for (rstart, run) in minted {
            let new_slot = run.to_slot(slot.node(), rstart);
            self.index.insert(run.id, rstart);
            self.order.insert((rstart, run.id), new_slot);
            remnants.push(new_slot);
        }
        Ok(())
    }

    /// One defragmentation pass over every node timeline: merges touching
    /// equal-attribute runs (head keeps its id), returns the number of
    /// runs absorbed. Identical merge decisions to the flat list's
    /// `coalesce`, at `O(n log n)` instead of a full rebuild.
    pub(crate) fn coalesce(&mut self) -> usize {
        if self.order.len() < 2 {
            return 0;
        }
        let mut absorbed_total = 0;
        for timeline in self.timelines.values_mut() {
            let outcome = timeline.merge_touching();
            for (start, id) in &outcome.absorbed {
                self.order.remove(&(*start, *id));
                self.index.remove(id);
            }
            for (start, id, end) in &outcome.extended {
                let slot = self
                    .order
                    .get_mut(&(*start, *id))
                    .expect("extended heads stay live");
                *slot = slot
                    .with_span(
                        *id,
                        Span::new(*start, *end).expect("merged spans are non-empty"),
                    )
                    .expect("merged spans are non-empty");
            }
            absorbed_total += outcome.absorbed.len();
        }
        absorbed_total
    }

    pub(crate) fn validate(&self) -> Result<(), CoreError> {
        if self.index.len() != self.order.len() {
            return Err(CoreError::DuplicateSlotId {
                id: SlotId::new(self.next_id),
            });
        }
        let mut run_total = 0;
        for (&node, timeline) in &self.timelines {
            timeline.validate(node)?;
            run_total += timeline.len();
            for (start, run) in timeline.iter() {
                let slot = self
                    .order
                    .get(&(start, run.id))
                    .ok_or(CoreError::SlotNotFound { id: run.id })?;
                if slot.node() != node
                    || slot.end() != run.end
                    || slot.perf() != run.perf
                    || slot.price() != run.price
                {
                    return Err(CoreError::SlotNotFound { id: run.id });
                }
            }
        }
        if run_total != self.order.len() {
            return Err(CoreError::DuplicateSlotId {
                id: SlotId::new(self.next_id),
            });
        }
        for (&(start, id), slot) in &self.order {
            if (slot.start(), slot.id()) != (start, id) {
                return Err(CoreError::SlotNotFound { id: slot.id() });
            }
            if self.index.get(&id) != Some(&start) {
                return Err(CoreError::SlotNotFound { id });
            }
            if id.raw() >= self.next_id {
                return Err(CoreError::DuplicateSlotId { id });
            }
        }
        Ok(())
    }

    pub(crate) fn into_slots(
        self,
    ) -> std::collections::btree_map::IntoValues<(TimePoint, SlotId), Slot> {
        self.order.into_values()
    }

    /// Per-node timeline dump in ascending node order, each node's slots
    /// in start order — the serialized "interval form".
    pub(crate) fn node_slots(&self) -> Vec<(NodeId, Vec<Slot>)> {
        let mut nodes: Vec<(NodeId, Vec<Slot>)> = self
            .timelines
            .iter()
            .map(|(&node, timeline)| {
                (
                    node,
                    timeline
                        .iter()
                        .map(|(start, run)| run.to_slot(node, start))
                        .collect(),
                )
            })
            .collect();
        nodes.sort_by_key(|(node, _)| *node);
        nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(a: i64, b: i64) -> Span {
        Span::new(TimePoint::new(a), TimePoint::new(b)).unwrap()
    }

    fn run(id: u64, a: i64, b: i64) -> (TimePoint, Run) {
        (
            TimePoint::new(a),
            Run {
                end: TimePoint::new(b),
                id: SlotId::new(id),
                perf: Perf::UNIT,
                price: Price::from_credits(2),
            },
        )
    }

    fn set(runs: &[(u64, i64, i64)]) -> IntervalSet {
        let mut s = IntervalSet::new();
        for &(id, a, b) in runs {
            let (start, r) = run(id, a, b);
            s.insert(start, r).unwrap();
        }
        s
    }

    #[test]
    fn insert_rejects_overlap_with_neighbours() {
        let mut s = set(&[(0, 0, 30), (1, 50, 80)]);
        // Reaches into the predecessor.
        let (start, r) = run(2, 20, 40);
        assert_eq!(s.insert(start, r), Err(SlotId::new(0)));
        // Reaches into the successor.
        let (start, r) = run(3, 40, 60);
        assert_eq!(s.insert(start, r), Err(SlotId::new(1)));
        // Exact start collision.
        let (start, r) = run(4, 50, 55);
        assert_eq!(s.insert(start, r), Err(SlotId::new(1)));
        // Touching on both sides is fine.
        let (start, r) = run(5, 30, 50);
        assert!(s.insert(start, r).is_ok());
        assert_eq!(s.len(), 3);
        s.validate(NodeId::new(0)).unwrap();
    }

    #[test]
    fn covering_finds_the_unique_container() {
        let s = set(&[(0, 0, 30), (1, 50, 80)]);
        assert_eq!(s.covering(span(55, 70)).unwrap().1.id, SlotId::new(1));
        assert!(s.covering(span(25, 55)).is_none());
        assert!(s.covering(span(30, 40)).is_none());
    }

    #[test]
    fn candidates_include_the_reaching_predecessor() {
        let s = set(&[(0, 0, 30), (1, 40, 70), (2, 80, 120)]);
        let c = s.candidates(span(20, 90));
        let ids: Vec<u64> = c.iter().map(|(_, r)| r.id.raw()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        // A predecessor ending before the region is still listed (the
        // caller's intersect filters it) but nothing before it is.
        let c = s.candidates(span(35, 90));
        let ids: Vec<u64> = c.iter().map(|(_, r)| r.id.raw()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn subtract_interior_mints_left_then_right() {
        let mut s = set(&[(0, 0, 100)]);
        let mut next = 10u64;
        let minted = s
            .subtract(TimePoint::new(0), span(30, 60), || {
                let id = SlotId::new(next);
                next += 1;
                id
            })
            .unwrap();
        assert_eq!(minted.len(), 2);
        assert_eq!(minted[0].1.id, SlotId::new(10));
        assert_eq!(minted[0].0, TimePoint::new(0));
        assert_eq!(minted[0].1.end, TimePoint::new(30));
        assert_eq!(minted[1].1.id, SlotId::new(11));
        assert_eq!(minted[1].0, TimePoint::new(60));
        s.validate(NodeId::new(0)).unwrap();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn subtract_outside_cut_is_an_error_and_a_noop() {
        let mut s = set(&[(0, 10, 20)]);
        let err = s
            .subtract(TimePoint::new(10), span(15, 30), || SlotId::new(99))
            .unwrap_err();
        assert!(matches!(err, CoreError::CutOutsideSlot { .. }));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn merge_touching_keeps_the_head_id() {
        let mut s = set(&[(0, 0, 30), (1, 30, 60), (2, 60, 100), (3, 110, 130)]);
        let outcome = s.merge_touching();
        assert_eq!(
            outcome.absorbed,
            vec![
                (TimePoint::new(30), SlotId::new(1)),
                (TimePoint::new(60), SlotId::new(2)),
            ]
        );
        assert_eq!(
            outcome.extended,
            vec![(TimePoint::ZERO, SlotId::new(0), TimePoint::new(100))]
        );
        assert_eq!(s.len(), 2);
        assert_eq!(s.covering(span(0, 100)).unwrap().1.id, SlotId::new(0));
        // Idempotent.
        assert!(s.merge_touching().absorbed.is_empty());
    }

    #[test]
    fn merge_touching_respects_attribute_changes() {
        let mut s = IntervalSet::new();
        let (start, r) = run(0, 0, 30);
        s.insert(start, r).unwrap();
        s.insert(
            TimePoint::new(30),
            Run {
                end: TimePoint::new(60),
                id: SlotId::new(1),
                perf: Perf::UNIT,
                price: Price::from_credits(9),
            },
        )
        .unwrap();
        assert!(s.merge_touching().absorbed.is_empty());
        assert_eq!(s.len(), 2);
    }
}
