//! Vacant time slots published by local resource managers.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::money::Price;
use crate::perf::Perf;
use crate::resource::{NodeId, Resource};
use crate::time::{Span, TimeDelta, TimePoint};

/// Identifier of a slot within a [`crate::SlotList`].
///
/// Slot subtraction mints fresh ids for the remnants (`K1`, `K2` in
/// Fig. 1 (b) of the paper), so an id uniquely names one contiguous vacancy
/// for the lifetime of a scheduling iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SlotId(u64);

impl SlotId {
    /// Creates a slot identifier from a raw value.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        SlotId(raw)
    }

    /// Returns the raw value.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A vacant time span on one computational node (the paper's `Slot` class:
/// resource, usage cost per time unit, start, end, length).
///
/// # Examples
///
/// ```
/// use ecosched_core::{NodeId, Perf, Price, Slot, SlotId, Span, TimePoint};
///
/// let slot = Slot::new(
///     SlotId::new(0),
///     NodeId::new(1),
///     Perf::from_f64(2.0),
///     Price::from_credits(4),
///     Span::new(TimePoint::new(100), TimePoint::new(400)).unwrap(),
/// )?;
/// assert_eq!(slot.length().ticks(), 300);
/// # Ok::<(), ecosched_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Slot {
    id: SlotId,
    node: NodeId,
    perf: Perf,
    price: Price,
    span: Span,
}

impl Slot {
    /// Creates a slot.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptySlot`] if `span` has zero length — the
    /// paper drops zero-length remnants rather than keeping them in the
    /// list, and we enforce that invariant at the type boundary.
    pub fn new(
        id: SlotId,
        node: NodeId,
        perf: Perf,
        price: Price,
        span: Span,
    ) -> Result<Self, CoreError> {
        if span.is_empty() {
            return Err(CoreError::EmptySlot { id, span });
        }
        Ok(Slot {
            id,
            node,
            perf,
            price,
            span,
        })
    }

    /// Creates a slot on the given [`Resource`], copying its rate and price.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptySlot`] if `span` has zero length.
    pub fn on_resource(id: SlotId, resource: &Resource, span: Span) -> Result<Self, CoreError> {
        Slot::new(id, resource.id(), resource.perf(), resource.price(), span)
    }

    /// The slot identifier.
    #[must_use]
    pub const fn id(&self) -> SlotId {
        self.id
    }

    /// The node the slot is vacant on.
    #[must_use]
    pub const fn node(&self) -> NodeId {
        self.node
    }

    /// The performance rate of the slot's node.
    #[must_use]
    pub const fn perf(&self) -> Perf {
        self.perf
    }

    /// The usage price per time unit of the slot's node.
    #[must_use]
    pub const fn price(&self) -> Price {
        self.price
    }

    /// The vacant span.
    #[must_use]
    pub const fn span(&self) -> Span {
        self.span
    }

    /// Start of the vacant span.
    #[must_use]
    pub const fn start(&self) -> TimePoint {
        self.span.start()
    }

    /// End of the vacant span.
    #[must_use]
    pub const fn end(&self) -> TimePoint {
        self.span.end()
    }

    /// Length of the vacant span (the paper's `L(s)`).
    #[must_use]
    pub const fn length(&self) -> TimeDelta {
        self.span.length()
    }

    /// Returns a copy of this slot with the same attributes on a new span
    /// under a new id, as produced by slot subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptySlot`] if `span` has zero length.
    pub fn with_span(&self, id: SlotId, span: Span) -> Result<Slot, CoreError> {
        Slot::new(id, self.node, self.perf, self.price, span)
    }
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@{} {} {} {}",
            self.id, self.node, self.span, self.perf, self.price
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(a: i64, b: i64) -> Span {
        Span::new(TimePoint::new(a), TimePoint::new(b)).unwrap()
    }

    fn slot(a: i64, b: i64) -> Slot {
        Slot::new(
            SlotId::new(1),
            NodeId::new(0),
            Perf::UNIT,
            Price::from_credits(2),
            span(a, b),
        )
        .unwrap()
    }

    #[test]
    fn rejects_empty_span() {
        let err = Slot::new(
            SlotId::new(9),
            NodeId::new(0),
            Perf::UNIT,
            Price::ZERO,
            span(5, 5),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::EmptySlot { .. }));
    }

    #[test]
    fn accessors() {
        let s = slot(10, 40);
        assert_eq!(s.start(), TimePoint::new(10));
        assert_eq!(s.end(), TimePoint::new(40));
        assert_eq!(s.length(), TimeDelta::new(30));
        assert_eq!(s.node(), NodeId::new(0));
    }

    #[test]
    fn on_resource_copies_attributes() {
        let r = Resource::new(NodeId::new(5), Perf::from_f64(3.0), Price::from_credits(6));
        let s = Slot::on_resource(SlotId::new(2), &r, span(0, 10)).unwrap();
        assert_eq!(s.node(), NodeId::new(5));
        assert_eq!(s.perf(), Perf::from_f64(3.0));
        assert_eq!(s.price(), Price::from_credits(6));
    }

    #[test]
    fn with_span_keeps_attributes_changes_extent() {
        let s = slot(10, 40);
        let t = s.with_span(SlotId::new(99), span(20, 30)).unwrap();
        assert_eq!(t.id(), SlotId::new(99));
        assert_eq!(t.node(), s.node());
        assert_eq!(t.price(), s.price());
        assert_eq!(t.span(), span(20, 30));
        assert!(s.with_span(SlotId::new(100), span(7, 7)).is_err());
    }

    #[test]
    fn display_mentions_id_node_span() {
        let s = slot(10, 40);
        let text = format!("{s}");
        assert!(text.contains("s1"));
        assert!(text.contains("cpu0"));
        assert!(text.contains("[10, 40)"));
    }
}
