//! Error types for the core domain model.

use std::error::Error;
use std::fmt;

use crate::resource::NodeId;
use crate::slot::SlotId;
use crate::time::Span;

/// Errors raised while constructing or manipulating the core domain model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A slot was constructed with a zero-length span.
    EmptySlot {
        /// The offending slot id.
        id: SlotId,
        /// The zero-length span.
        span: Span,
    },
    /// A slot id was not present in the slot list.
    SlotNotFound {
        /// The missing slot id.
        id: SlotId,
    },
    /// Two slots in one list share an id.
    DuplicateSlotId {
        /// The duplicated id.
        id: SlotId,
    },
    /// Two slots on the same node overlap in time, which cannot happen in a
    /// well-formed local schedule.
    OverlappingSlots {
        /// The node carrying both slots.
        node: NodeId,
        /// First overlapping slot.
        first: SlotId,
        /// Second overlapping slot.
        second: SlotId,
    },
    /// A subtraction cut reaches outside the vacant span of its slot.
    CutOutsideSlot {
        /// The slot being cut.
        id: SlotId,
        /// The slot's vacant span.
        slot_span: Span,
        /// The requested cut.
        cut: Span,
    },
    /// A resource request failed validation.
    InvalidRequest {
        /// Human-readable reason.
        reason: String,
    },
    /// A window was constructed with no slots.
    EmptyWindow,
    /// A window was constructed with two tasks on the same node.
    DuplicateNode {
        /// The duplicated node.
        node: NodeId,
    },
    /// A window slot was constructed with a non-positive runtime.
    NonPositiveRuntime {
        /// The node whose runtime was non-positive.
        node: NodeId,
    },
    /// A batch operation was attempted on an empty batch.
    EmptyBatch,
    /// A bulk-load constructor received slots out of `(start, id)` order.
    UnsortedSlots {
        /// Index of the first slot that breaks the order.
        index: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::EmptySlot { id, span } => {
                write!(f, "slot {id} has empty span {span}")
            }
            CoreError::SlotNotFound { id } => write!(f, "slot {id} not found in slot list"),
            CoreError::DuplicateSlotId { id } => write!(f, "duplicate slot id {id}"),
            CoreError::OverlappingSlots {
                node,
                first,
                second,
            } => write!(f, "slots {first} and {second} overlap on node {node}"),
            CoreError::CutOutsideSlot { id, slot_span, cut } => {
                write!(f, "cut {cut} reaches outside slot {id} span {slot_span}")
            }
            CoreError::InvalidRequest { reason } => {
                write!(f, "invalid resource request: {reason}")
            }
            CoreError::EmptyWindow => write!(f, "window must contain at least one slot"),
            CoreError::DuplicateNode { node } => {
                write!(f, "window assigns two tasks to node {node}")
            }
            CoreError::NonPositiveRuntime { node } => {
                write!(f, "window slot on node {node} has non-positive runtime")
            }
            CoreError::EmptyBatch => write!(f, "batch contains no jobs"),
            CoreError::UnsortedSlots { index } => {
                write!(f, "slot at index {index} breaks (start, id) order")
            }
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::TimePoint;

    #[test]
    fn display_is_never_empty() {
        let span = Span::new(TimePoint::new(1), TimePoint::new(1)).unwrap();
        let errors: Vec<CoreError> = vec![
            CoreError::EmptySlot {
                id: SlotId::new(1),
                span,
            },
            CoreError::SlotNotFound { id: SlotId::new(2) },
            CoreError::DuplicateSlotId { id: SlotId::new(3) },
            CoreError::OverlappingSlots {
                node: NodeId::new(0),
                first: SlotId::new(1),
                second: SlotId::new(2),
            },
            CoreError::CutOutsideSlot {
                id: SlotId::new(4),
                slot_span: span,
                cut: span,
            },
            CoreError::InvalidRequest {
                reason: "nodes must be positive".into(),
            },
            CoreError::EmptyWindow,
            CoreError::DuplicateNode {
                node: NodeId::new(1),
            },
            CoreError::NonPositiveRuntime {
                node: NodeId::new(2),
            },
            CoreError::EmptyBatch,
            CoreError::UnsortedSlots { index: 3 },
        ];
        for err in errors {
            assert!(!format!("{err}").is_empty());
            assert!(!format!("{err:?}").is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
