//! Leases and revocations: the execution-time view of a committed window.
//!
//! The paper's model is *non-dedicated*: owner jobs have priority, so a
//! vacant slot published to the metascheduler can disappear between the
//! alternatives search and the launch.  A [`Lease`] records the window a
//! job actually holds, together with how it was obtained ([`LeaseOrigin`]);
//! a [`Revocation`] records one region of vacant time withdrawn by the
//! environment and why ([`RevocationReason`]).
//!
//! Revocations are expressed as `(node, span)` *regions* rather than slot
//! ids.  Committed windows reference remnant slots minted during
//! subtraction, while faults originate from the published slot list, so a
//! region is the only identity both sides share.

use crate::job::JobId;
use crate::resource::NodeId;
use crate::slot::SlotId;
use crate::time::Span;
use crate::window::Window;
use serde::{Deserialize, Serialize};

/// Why the environment withdrew a region of vacant time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RevocationReason {
    /// An independent per-slot drop: the owner reclaimed one slot.
    SlotDrop,
    /// A whole administrative domain went down, killing every slot on its
    /// nodes.  The domain is identified by its raw index; the simulator
    /// layer owns the richer domain type.
    DomainOutage {
        /// Raw index of the failed domain.
        domain: u32,
    },
    /// The owner withdrew the offer for economic reasons (correlated
    /// price-driven burst hitting the most expensive slots).
    PriceWithdrawal,
}

/// One region of vacant time withdrawn by the environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Revocation {
    /// Id of the published slot the fault was drawn against.
    pub slot: SlotId,
    /// Node whose vacant time is withdrawn.
    pub node: NodeId,
    /// The withdrawn region (the full span of the published slot).
    pub span: Span,
    /// Why the region was withdrawn.
    pub reason: RevocationReason,
}

impl Revocation {
    /// Does this revocation intersect the given `(node, span)` region?
    ///
    /// Half-open spans that merely touch do not intersect.
    #[must_use]
    pub fn hits(&self, node: NodeId, span: Span) -> bool {
        self.node == node && self.span.overlaps(span)
    }
}

/// How a job came to hold its current window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LeaseOrigin {
    /// The window chosen by combination optimization survived intact.
    Planned,
    /// The planned window broke and the job switched to one of its
    /// pre-computed disjoint alternatives.
    FailedOver {
        /// Index of the adopted alternative in the job's alternatives list.
        alternative: usize,
    },
    /// The planned window (and every surviving alternative) was unusable;
    /// a bounded repair search found a fresh window on the post-revocation
    /// slot list.
    Repaired,
}

/// A committed window held by a job, with its provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lease {
    /// The job holding the window.
    pub job: JobId,
    /// The committed window.
    pub window: Window,
    /// How the window was obtained.
    pub origin: LeaseOrigin,
}

impl Lease {
    /// A freshly planned lease (origin [`LeaseOrigin::Planned`]).
    #[must_use]
    pub fn planned(job: JobId, window: Window) -> Self {
        Lease {
            job,
            window,
            origin: LeaseOrigin::Planned,
        }
    }

    /// Is this lease broken by the given revocation?
    ///
    /// A lease breaks when any member's *used* region — the span the task
    /// actually occupies, not the full source slot — intersects the
    /// revoked region on the same node.
    #[must_use]
    pub fn broken_by(&self, revocation: &Revocation) -> bool {
        self.window
            .slots()
            .iter()
            .any(|ws| revocation.hits(ws.node(), self.window.used_span(ws)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::money::Price;
    use crate::perf::Perf;
    use crate::slot::Slot;
    use crate::time::TimePoint;
    use crate::window::WindowSlot;

    fn span(a: i64, b: i64) -> Span {
        Span::new(TimePoint::new(a), TimePoint::new(b)).unwrap()
    }

    fn window_on(node: u32, a: i64, b: i64) -> Window {
        let slot = Slot::new(
            SlotId::new(0),
            NodeId::new(node),
            Perf::UNIT,
            Price::from_credits(2),
            span(a, b),
        )
        .unwrap();
        let ws = WindowSlot::from_slot(&slot, crate::time::TimeDelta::new(b - a)).unwrap();
        Window::new(TimePoint::new(a), vec![ws]).unwrap()
    }

    fn revocation(node: u32, a: i64, b: i64) -> Revocation {
        Revocation {
            slot: SlotId::new(9),
            node: NodeId::new(node),
            span: span(a, b),
            reason: RevocationReason::SlotDrop,
        }
    }

    #[test]
    fn hits_requires_same_node_and_overlap() {
        let r = revocation(1, 10, 20);
        assert!(r.hits(NodeId::new(1), span(15, 25)));
        assert!(!r.hits(NodeId::new(2), span(15, 25)));
        // Half-open spans that merely touch do not overlap.
        assert!(!r.hits(NodeId::new(1), span(20, 30)));
    }

    #[test]
    fn broken_by_checks_used_region() {
        let lease = Lease::planned(JobId::new(0), window_on(3, 100, 150));
        assert!(lease.broken_by(&revocation(3, 140, 160)));
        assert!(!lease.broken_by(&revocation(3, 150, 160)));
        assert!(!lease.broken_by(&revocation(4, 100, 150)));
        assert_eq!(lease.origin, LeaseOrigin::Planned);
    }

    #[test]
    fn serde_round_trip() {
        let lease = Lease {
            job: JobId::new(2),
            window: window_on(1, 0, 50),
            origin: LeaseOrigin::FailedOver { alternative: 1 },
        };
        let value = serde::Serialize::to_value(&lease);
        let back: Lease = serde::Deserialize::from_value(&value).unwrap();
        assert_eq!(back, lease);

        let rev = revocation(0, 5, 9);
        let value = serde::Serialize::to_value(&rev);
        let back: Revocation = serde::Deserialize::from_value(&value).unwrap();
        assert_eq!(back, rev);
    }
}
