//! Computational nodes (the paper's heterogeneous resources).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::money::Price;
use crate::perf::Perf;

/// Identifier of a computational node within the environment.
///
/// # Examples
///
/// ```
/// use ecosched_core::NodeId;
///
/// let id = NodeId::new(3);
/// assert_eq!(id.index(), 3);
/// assert_eq!(format!("{id}"), "cpu3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node identifier from its index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Returns the underlying index.
    #[must_use]
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// A computational node: a resource with a performance rate and an owner's
/// usage price per time unit.
///
/// # Examples
///
/// ```
/// use ecosched_core::{NodeId, Perf, Price, Resource};
///
/// let node = Resource::new(NodeId::new(0), Perf::from_f64(2.0), Price::from_credits(4));
/// assert!(node.perf().satisfies(Perf::from_f64(1.5)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Resource {
    id: NodeId,
    perf: Perf,
    price: Price,
}

impl Resource {
    /// Creates a node description.
    #[must_use]
    pub const fn new(id: NodeId, perf: Perf, price: Price) -> Self {
        Resource { id, perf, price }
    }

    /// The node identifier.
    #[must_use]
    pub const fn id(&self) -> NodeId {
        self.id
    }

    /// The node's relative performance rate.
    #[must_use]
    pub const fn perf(&self) -> Perf {
        self.perf
    }

    /// The owner's price per time unit for this node.
    #[must_use]
    pub const fn price(&self) -> Price {
        self.price
    }

    /// The price/quality measure `C/P` from Sec. 6 of the paper, as a
    /// floating-point ratio for reporting.
    #[must_use]
    pub fn price_quality_ratio(&self) -> f64 {
        self.price.to_f64() / self.perf.to_f64()
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({}, {})", self.id, self.perf, self.price)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_return_construction_values() {
        let r = Resource::new(NodeId::new(7), Perf::from_f64(1.5), Price::from_credits(3));
        assert_eq!(r.id(), NodeId::new(7));
        assert_eq!(r.perf(), Perf::from_f64(1.5));
        assert_eq!(r.price(), Price::from_credits(3));
    }

    #[test]
    fn price_quality_ratio_divides() {
        let r = Resource::new(NodeId::new(0), Perf::from_f64(2.0), Price::from_credits(5));
        assert!((r.price_quality_ratio() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn node_ids_order_by_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
    }

    #[test]
    fn display_is_informative() {
        let r = Resource::new(NodeId::new(2), Perf::from_f64(1.0), Price::from_credits(2));
        assert_eq!(format!("{r}"), "cpu2(1.000x, 2cr/t)");
    }
}
