//! Fixed-point money and prices.
//!
//! The paper's prices are real-valued (`0.75p … 1.25p` with
//! `p = 1.7^performance`), but the dynamic-programming optimizer needs
//! exact, totally ordered arithmetic. [`Money`] is a fixed-point amount in
//! micro-credits (10⁻⁶ credit); [`Price`] is a cost per time tick with the
//! same resolution.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::time::TimeDelta;

/// Number of [`Money`] units per whole credit.
pub const MONEY_SCALE: i64 = 1_000_000;

/// An exact amount of currency, stored as micro-credits.
///
/// # Examples
///
/// ```
/// use ecosched_core::Money;
///
/// let a = Money::from_credits(3) + Money::from_f64(0.5);
/// assert_eq!(a.to_f64(), 3.5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Money(i64);

impl Money {
    /// Zero credits.
    pub const ZERO: Money = Money(0);
    /// The largest representable amount; useful as an "unbounded" sentinel.
    pub const MAX: Money = Money(i64::MAX);

    /// Creates an amount from raw micro-credits.
    #[must_use]
    pub const fn from_micro(micro: i64) -> Self {
        Money(micro)
    }

    /// Creates an amount from a whole number of credits.
    #[must_use]
    pub const fn from_credits(credits: i64) -> Self {
        Money(credits * MONEY_SCALE)
    }

    /// Creates an amount from a floating-point credit value, rounding to the
    /// nearest micro-credit.
    #[must_use]
    pub fn from_f64(credits: f64) -> Self {
        Money((credits * MONEY_SCALE as f64).round() as i64)
    }

    /// Returns the raw micro-credit count.
    #[must_use]
    pub const fn micro(self) -> i64 {
        self.0
    }

    /// Returns the amount as floating-point credits (for reporting only).
    #[must_use]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / MONEY_SCALE as f64
    }

    /// Returns `true` for exactly zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns the larger of two amounts.
    #[must_use]
    pub fn max(self, other: Money) -> Money {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two amounts.
    #[must_use]
    pub fn min(self, other: Money) -> Money {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Saturating subtraction clamped at zero.
    #[must_use]
    pub fn saturating_sub(self, other: Money) -> Money {
        Money((self.0 - other.0).max(0))
    }

    /// Multiplies by a non-negative scalar, rounding to nearest.
    #[must_use]
    pub fn scale_f64(self, factor: f64) -> Money {
        Money((self.0 as f64 * factor).round() as i64)
    }
}

impl fmt::Display for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let whole = self.0 / MONEY_SCALE;
        let frac = (self.0 % MONEY_SCALE).abs();
        if frac == 0 {
            write!(f, "{whole}cr")
        } else {
            // Trim trailing zeros from the 6-digit fraction for readability.
            let mut frac_str = format!("{frac:06}");
            while frac_str.ends_with('0') {
                frac_str.pop();
            }
            if self.0 < 0 && whole == 0 {
                write!(f, "-0.{frac_str}cr")
            } else {
                write!(f, "{whole}.{frac_str}cr")
            }
        }
    }
}

impl Add for Money {
    type Output = Money;
    fn add(self, rhs: Money) -> Money {
        Money(self.0 + rhs.0)
    }
}

impl AddAssign for Money {
    fn add_assign(&mut self, rhs: Money) {
        self.0 += rhs.0;
    }
}

impl Sub for Money {
    type Output = Money;
    fn sub(self, rhs: Money) -> Money {
        Money(self.0 - rhs.0)
    }
}

impl SubAssign for Money {
    fn sub_assign(&mut self, rhs: Money) {
        self.0 -= rhs.0;
    }
}

impl Neg for Money {
    type Output = Money;
    fn neg(self) -> Money {
        Money(-self.0)
    }
}

impl Mul<i64> for Money {
    type Output = Money;
    fn mul(self, rhs: i64) -> Money {
        Money(self.0 * rhs)
    }
}

impl Div<i64> for Money {
    type Output = Money;
    fn div(self, rhs: i64) -> Money {
        Money(self.0 / rhs)
    }
}

impl std::iter::Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Money {
        iter.fold(Money::ZERO, Add::add)
    }
}

/// A usage cost per time tick (the paper's `C`, "cost of slot usage per time
/// unit"), with micro-credit resolution.
///
/// # Examples
///
/// ```
/// use ecosched_core::{Money, Price, TimeDelta};
///
/// let p = Price::from_f64(2.5);
/// assert_eq!(p * TimeDelta::new(4), Money::from_credits(10));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Price(i64);

impl Price {
    /// A price of zero credits per tick.
    pub const ZERO: Price = Price(0);
    /// The largest representable price; an effectively unlimited price cap.
    pub const MAX: Price = Price(i64::MAX);

    /// Creates a price from raw micro-credits per tick.
    #[must_use]
    pub const fn from_micro(micro: i64) -> Self {
        Price(micro)
    }

    /// Creates a price from whole credits per tick.
    #[must_use]
    pub const fn from_credits(credits: i64) -> Self {
        Price(credits * MONEY_SCALE)
    }

    /// Creates a price from floating-point credits per tick, rounding to the
    /// nearest micro-credit.
    #[must_use]
    pub fn from_f64(credits_per_tick: f64) -> Self {
        Price((credits_per_tick * MONEY_SCALE as f64).round() as i64)
    }

    /// Returns the raw micro-credits-per-tick count.
    #[must_use]
    pub const fn micro(self) -> i64 {
        self.0
    }

    /// Returns the price as floating-point credits per tick.
    #[must_use]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / MONEY_SCALE as f64
    }

    /// Scales the price by a non-negative factor, rounding to nearest.
    #[must_use]
    pub fn scale_f64(self, factor: f64) -> Price {
        Price((self.0 as f64 * factor).round() as i64)
    }

    /// Returns the larger of two prices.
    #[must_use]
    pub fn max(self, other: Price) -> Price {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two prices.
    #[must_use]
    pub fn min(self, other: Price) -> Price {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Price {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/t", Money(self.0))
    }
}

impl Mul<TimeDelta> for Price {
    type Output = Money;
    /// Total cost of occupying a resource at this price for `rhs` ticks.
    fn mul(self, rhs: TimeDelta) -> Money {
        Money(self.0 * rhs.ticks())
    }
}

impl Mul<i64> for Price {
    type Output = Price;
    fn mul(self, rhs: i64) -> Price {
        Price(self.0 * rhs)
    }
}

impl Add for Price {
    type Output = Price;
    fn add(self, rhs: Price) -> Price {
        Price(self.0 + rhs.0)
    }
}

impl AddAssign for Price {
    fn add_assign(&mut self, rhs: Price) {
        self.0 += rhs.0;
    }
}

impl Sub for Price {
    type Output = Price;
    fn sub(self, rhs: Price) -> Price {
        Price(self.0 - rhs.0)
    }
}

impl std::iter::Sum for Price {
    fn sum<I: Iterator<Item = Price>>(iter: I) -> Price {
        iter.fold(Price::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn money_roundtrip_f64() {
        let m = Money::from_f64(3.172593);
        assert_eq!(m.micro(), 3_172_593);
        assert!((m.to_f64() - 3.172593).abs() < 1e-9);
    }

    #[test]
    fn money_arithmetic() {
        let a = Money::from_credits(3);
        let b = Money::from_credits(5);
        assert_eq!(a + b, Money::from_credits(8));
        assert_eq!(b - a, Money::from_credits(2));
        assert_eq!(a * 4, Money::from_credits(12));
        assert_eq!(b / 2, Money::from_micro(2_500_000));
        assert_eq!(-a, Money::from_credits(-3));
    }

    #[test]
    fn money_saturating_sub_clamps() {
        let a = Money::from_credits(1);
        let b = Money::from_credits(2);
        assert_eq!(a.saturating_sub(b), Money::ZERO);
        assert_eq!(b.saturating_sub(a), Money::from_credits(1));
    }

    #[test]
    fn money_sum() {
        let s: Money = (1..=4).map(Money::from_credits).sum();
        assert_eq!(s, Money::from_credits(10));
    }

    #[test]
    fn money_ordering_is_total() {
        let mut v = vec![
            Money::from_f64(1.5),
            Money::ZERO,
            Money::from_credits(-1),
            Money::from_credits(2),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Money::from_credits(-1),
                Money::ZERO,
                Money::from_f64(1.5),
                Money::from_credits(2)
            ]
        );
    }

    #[test]
    fn price_times_duration_is_money() {
        let p = Price::from_f64(1.25);
        assert_eq!(p * TimeDelta::new(80), Money::from_credits(100));
    }

    #[test]
    fn price_scaling() {
        let p = Price::from_credits(10);
        assert_eq!(p.scale_f64(0.8), Price::from_credits(8));
        assert_eq!(p * 3, Price::from_credits(30));
    }

    #[test]
    fn display_trims_zeros() {
        assert_eq!(format!("{}", Money::from_credits(7)), "7cr");
        assert_eq!(format!("{}", Money::from_f64(7.25)), "7.25cr");
        assert_eq!(format!("{}", Money::from_f64(-0.5)), "-0.5cr");
        assert_eq!(format!("{}", Price::from_credits(2)), "2cr/t");
    }

    #[test]
    fn money_scale_f64_rounds() {
        assert_eq!(
            Money::from_credits(10).scale_f64(0.333333),
            Money::from_micro(3_333_330)
        );
    }
}
