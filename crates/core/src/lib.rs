//! Core domain model for economic slot selection and co-allocation.
//!
//! This crate implements the data model of Toporkov et al., *"Slot Selection
//! and Co-allocation for Economic Scheduling in Distributed Computing"*
//! (PaCT 2011): time [`Span`]s, fixed-point [`Money`]/[`Price`], node
//! performance [`Perf`], vacant [`Slot`]s kept in a start-ordered
//! [`SlotList`] supporting the paper's Fig. 1 (b) *slot subtraction*,
//! co-allocation [`Window`]s with a rough right edge, job
//! [`ResourceRequest`]s, [`Batch`]es, and the [`Alternative`] sets consumed
//! by the combination optimizer.
//!
//! The slot-selection algorithms themselves (ALP / AMP) live in
//! `ecosched-select`; the dynamic-programming combination optimizer in
//! `ecosched-optimize`.
//!
//! # Example
//!
//! Build a slot list, carve a window out of it, and subtract it:
//!
//! ```
//! use ecosched_core::{
//!     NodeId, Perf, Price, Slot, SlotId, SlotList, Span, TimeDelta, TimePoint, Window,
//!     WindowSlot,
//! };
//!
//! let slot = Slot::new(
//!     SlotId::new(0),
//!     NodeId::new(0),
//!     Perf::UNIT,
//!     Price::from_credits(2),
//!     Span::new(TimePoint::new(0), TimePoint::new(100)).unwrap(),
//! )?;
//! let mut list = SlotList::from_slots(vec![slot])?;
//!
//! let member = WindowSlot::from_slot(&slot, TimeDelta::new(30))?;
//! let window = Window::new(TimePoint::new(0), vec![member])?;
//! list.subtract_window(&window)?;
//!
//! assert_eq!(list.len(), 1); // the [30, 100) remnant
//! assert_eq!(list.earliest_start(), Some(TimePoint::new(30)));
//! # Ok::<(), ecosched_core::CoreError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod alternative;
mod error;
mod interval;
mod job;
mod lease;
mod money;
mod perf;
mod request;
mod resource;
mod slot;
mod slot_list;
mod time;
mod window;

pub use alternative::{Alternative, BatchAlternatives, JobAlternatives};
pub use error::CoreError;
pub use interval::{IntervalSet, MergeOutcome, Run};
pub use job::{Batch, Job, JobId};
pub use lease::{Lease, LeaseOrigin, Revocation, RevocationReason};
pub use money::{Money, Price, MONEY_SCALE};
pub use perf::{Perf, PERF_SCALE};
pub use request::ResourceRequest;
pub use resource::{NodeId, Resource};
pub use slot::{Slot, SlotId};
pub use slot_list::{MarketRepr, SlotIntoIter, SlotIter, SlotList, SubtractionReport};
pub use time::{Span, TimeDelta, TimePoint};
pub use window::{Window, WindowSlot};
