//! Alternatives: candidate executions found for a job.
//!
//! The alternatives search (Sec. 2 of the paper) collects, for every job in
//! the batch, a set of disjoint candidate windows. The combination optimizer
//! later picks exactly one [`Alternative`] per job.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::job::JobId;
use crate::money::Money;
use crate::time::TimeDelta;
use crate::window::Window;

/// A candidate execution of one job: a concrete window plus its derived
/// cost/time measures (the paper's `c_i(s̄_i)` and `t_i(s̄_i)`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Alternative {
    job: JobId,
    window: Window,
}

impl Alternative {
    /// Wraps a window found for `job`.
    #[must_use]
    pub fn new(job: JobId, window: Window) -> Self {
        Alternative { job, window }
    }

    /// The job this alternative belongs to.
    #[must_use]
    pub const fn job(&self) -> JobId {
        self.job
    }

    /// The underlying window.
    #[must_use]
    pub const fn window(&self) -> &Window {
        &self.window
    }

    /// Consumes the alternative, returning the window.
    #[must_use]
    pub fn into_window(self) -> Window {
        self.window
    }

    /// Execution cost `c_i(s̄_i)`: the window's total cost.
    #[must_use]
    pub fn cost(&self) -> Money {
        self.window.total_cost()
    }

    /// Execution time `t_i(s̄_i)`: elapsed time from job start to the end of
    /// its slowest task.
    #[must_use]
    pub fn time(&self) -> TimeDelta {
        self.window.length()
    }
}

impl fmt::Display for Alternative {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ← {}", self.job, self.window)
    }
}

/// All alternatives found for one job.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobAlternatives {
    job: JobId,
    found: Vec<Alternative>,
}

impl JobAlternatives {
    /// Creates an (initially empty) alternatives set for `job`.
    #[must_use]
    pub fn new(job: JobId) -> Self {
        JobAlternatives {
            job,
            found: Vec::new(),
        }
    }

    /// The job these alternatives belong to.
    #[must_use]
    pub const fn job(&self) -> JobId {
        self.job
    }

    /// Records another alternative.
    ///
    /// # Panics
    ///
    /// Panics if the alternative belongs to a different job.
    pub fn push(&mut self, alternative: Alternative) {
        assert_eq!(
            alternative.job(),
            self.job,
            "alternative for {} pushed into set for {}",
            alternative.job(),
            self.job
        );
        self.found.push(alternative);
    }

    /// The alternatives in discovery order (earliest pass first).
    #[must_use]
    pub fn alternatives(&self) -> &[Alternative] {
        &self.found
    }

    /// Number of alternatives found.
    #[must_use]
    pub fn len(&self) -> usize {
        self.found.len()
    }

    /// Returns `true` if no alternative was found for the job.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.found.is_empty()
    }

    /// Iterates the alternatives.
    pub fn iter(&self) -> std::slice::Iter<'_, Alternative> {
        self.found.iter()
    }
}

impl<'a> IntoIterator for &'a JobAlternatives {
    type Item = &'a Alternative;
    type IntoIter = std::slice::Iter<'a, Alternative>;
    fn into_iter(self) -> Self::IntoIter {
        self.found.iter()
    }
}

/// The alternatives found for an entire batch, in batch (priority) order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchAlternatives {
    per_job: Vec<JobAlternatives>,
}

impl BatchAlternatives {
    /// Creates sets for the given jobs, in priority order.
    #[must_use]
    pub fn for_jobs(jobs: impl IntoIterator<Item = JobId>) -> Self {
        BatchAlternatives {
            per_job: jobs.into_iter().map(JobAlternatives::new).collect(),
        }
    }

    /// The per-job sets in batch order.
    #[must_use]
    pub fn per_job(&self) -> &[JobAlternatives] {
        &self.per_job
    }

    /// Mutable access for the search driver.
    #[must_use]
    pub fn per_job_mut(&mut self) -> &mut [JobAlternatives] {
        &mut self.per_job
    }

    /// The set for a particular job.
    #[must_use]
    pub fn get(&self, job: JobId) -> Option<&JobAlternatives> {
        self.per_job.iter().find(|ja| ja.job() == job)
    }

    /// Total alternatives found across all jobs.
    #[must_use]
    pub fn total_found(&self) -> usize {
        self.per_job.iter().map(JobAlternatives::len).sum()
    }

    /// Mean alternatives per job (the statistic the paper reports: e.g.
    /// 7.39 for ALP vs 34.28 for AMP). Returns 0.0 for an empty batch.
    #[must_use]
    pub fn avg_per_job(&self) -> f64 {
        if self.per_job.is_empty() {
            0.0
        } else {
            self.total_found() as f64 / self.per_job.len() as f64
        }
    }

    /// Returns `true` if *every* job has at least one alternative — the
    /// precondition for an experiment to be counted in the paper's study.
    #[must_use]
    pub fn all_jobs_covered(&self) -> bool {
        self.per_job.iter().all(|ja| !ja.is_empty())
    }

    /// Jobs with no alternatives (to be postponed to the next iteration).
    pub fn uncovered_jobs(&self) -> impl Iterator<Item = JobId> + '_ {
        self.per_job
            .iter()
            .filter(|ja| ja.is_empty())
            .map(JobAlternatives::job)
    }
}

impl fmt::Display for BatchAlternatives {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "alternatives: {} total, {:.2} per job",
            self.total_found(),
            self.avg_per_job()
        )?;
        for ja in &self.per_job {
            writeln!(f, "  {}: {} found", ja.job(), ja.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::money::Price;
    use crate::perf::Perf;
    use crate::resource::NodeId;
    use crate::slot::{Slot, SlotId};
    use crate::time::{Span, TimePoint};
    use crate::window::WindowSlot;

    fn alt(job: u32, price: i64, runtime: i64) -> Alternative {
        let slot = Slot::new(
            SlotId::new(0),
            NodeId::new(0),
            Perf::UNIT,
            Price::from_credits(price),
            Span::new(TimePoint::ZERO, TimePoint::new(1000)).unwrap(),
        )
        .unwrap();
        let ws = WindowSlot::from_slot(&slot, TimeDelta::new(runtime)).unwrap();
        Alternative::new(
            JobId::new(job),
            Window::new(TimePoint::ZERO, vec![ws]).unwrap(),
        )
    }

    #[test]
    fn measures_come_from_window() {
        let a = alt(0, 3, 40);
        assert_eq!(a.cost(), Money::from_credits(120));
        assert_eq!(a.time(), TimeDelta::new(40));
    }

    #[test]
    #[should_panic(expected = "pushed into set")]
    fn pushing_wrong_job_panics() {
        let mut set = JobAlternatives::new(JobId::new(0));
        set.push(alt(1, 1, 1));
    }

    #[test]
    fn batch_statistics() {
        let mut batch = BatchAlternatives::for_jobs([JobId::new(0), JobId::new(1)]);
        batch.per_job_mut()[0].push(alt(0, 1, 10));
        batch.per_job_mut()[0].push(alt(0, 2, 10));
        batch.per_job_mut()[1].push(alt(1, 1, 10));
        assert_eq!(batch.total_found(), 3);
        assert!((batch.avg_per_job() - 1.5).abs() < 1e-12);
        assert!(batch.all_jobs_covered());
        assert_eq!(batch.uncovered_jobs().count(), 0);
    }

    #[test]
    fn uncovered_jobs_reported() {
        let batch = BatchAlternatives::for_jobs([JobId::new(0), JobId::new(1)]);
        assert!(!batch.all_jobs_covered());
        let uncovered: Vec<JobId> = batch.uncovered_jobs().collect();
        assert_eq!(uncovered, vec![JobId::new(0), JobId::new(1)]);
    }

    #[test]
    fn empty_batch_avg_is_zero() {
        let batch = BatchAlternatives::for_jobs([]);
        assert_eq!(batch.avg_per_job(), 0.0);
        assert!(batch.all_jobs_covered());
    }

    #[test]
    fn get_finds_job_set() {
        let batch = BatchAlternatives::for_jobs([JobId::new(3)]);
        assert!(batch.get(JobId::new(3)).is_some());
        assert!(batch.get(JobId::new(4)).is_none());
    }

    #[test]
    fn display_reports_totals() {
        let batch = BatchAlternatives::for_jobs([JobId::new(0)]);
        assert!(format!("{batch}").contains("0 total"));
    }
}
