//! Co-allocation windows: `N` concurrent slot reservations for one job.
//!
//! A window is the paper's `Window` class — a set of slots that start
//! simultaneously. On heterogeneous nodes the per-node runtimes differ, so
//! the window has a "rough right edge"; its overall length is the runtime of
//! the task on the *slowest* member node (Fig. 1 (a)).

use std::collections::HashSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::money::{Money, Price};
use crate::perf::Perf;
use crate::resource::NodeId;
use crate::slot::{Slot, SlotId};
use crate::time::{Span, TimeDelta, TimePoint};

/// One member of a window: a task placement on a node, carved out of a
/// source slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WindowSlot {
    source: SlotId,
    node: NodeId,
    perf: Perf,
    price: Price,
    runtime: TimeDelta,
}

impl WindowSlot {
    /// Creates a window member from a vacant slot and the task runtime on
    /// that slot's node.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NonPositiveRuntime`] if `runtime` is not
    /// strictly positive.
    pub fn from_slot(slot: &Slot, runtime: TimeDelta) -> Result<Self, CoreError> {
        if !runtime.is_positive() {
            return Err(CoreError::NonPositiveRuntime { node: slot.node() });
        }
        Ok(WindowSlot {
            source: slot.id(),
            node: slot.node(),
            perf: slot.perf(),
            price: slot.price(),
            runtime,
        })
    }

    /// The id of the vacant slot this member was carved from.
    #[must_use]
    pub const fn source(&self) -> SlotId {
        self.source
    }

    /// The node executing this task.
    #[must_use]
    pub const fn node(&self) -> NodeId {
        self.node
    }

    /// The node's performance rate.
    #[must_use]
    pub const fn perf(&self) -> Perf {
        self.perf
    }

    /// The node's price per time unit.
    #[must_use]
    pub const fn price(&self) -> Price {
        self.price
    }

    /// The task runtime on this node.
    #[must_use]
    pub const fn runtime(&self) -> TimeDelta {
        self.runtime
    }

    /// The cost of this member: `price × runtime`.
    #[must_use]
    pub fn cost(&self) -> Money {
        self.price * self.runtime
    }
}

/// A set of concurrent slot reservations for one parallel job.
///
/// Invariants enforced at construction:
///
/// * at least one member slot;
/// * all members on distinct nodes;
/// * all runtimes strictly positive.
///
/// # Examples
///
/// ```
/// use ecosched_core::{
///     NodeId, Perf, Price, Slot, SlotId, Span, TimeDelta, TimePoint, Window, WindowSlot,
/// };
///
/// let slot = Slot::new(
///     SlotId::new(0),
///     NodeId::new(0),
///     Perf::UNIT,
///     Price::from_credits(5),
///     Span::new(TimePoint::new(150), TimePoint::new(400)).unwrap(),
/// )?;
/// let member = WindowSlot::from_slot(&slot, TimeDelta::new(80))?;
/// let w = Window::new(TimePoint::new(150), vec![member])?;
/// assert_eq!(w.length(), TimeDelta::new(80));
/// assert_eq!(w.cost_per_time(), Price::from_credits(5));
/// # Ok::<(), ecosched_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Window {
    start: TimePoint,
    slots: Vec<WindowSlot>,
}

impl Window {
    /// Creates a window starting at `start` with the given members.
    ///
    /// # Errors
    ///
    /// * [`CoreError::EmptyWindow`] if `slots` is empty;
    /// * [`CoreError::DuplicateNode`] if two members share a node;
    /// * [`CoreError::NonPositiveRuntime`] if any runtime is not positive
    ///   (already impossible for members built via
    ///   [`WindowSlot::from_slot`]).
    pub fn new(start: TimePoint, slots: Vec<WindowSlot>) -> Result<Self, CoreError> {
        if slots.is_empty() {
            return Err(CoreError::EmptyWindow);
        }
        let mut seen = HashSet::with_capacity(slots.len());
        for ws in &slots {
            if !ws.runtime.is_positive() {
                return Err(CoreError::NonPositiveRuntime { node: ws.node });
            }
            if !seen.insert(ws.node) {
                return Err(CoreError::DuplicateNode { node: ws.node });
            }
        }
        Ok(Window { start, slots })
    }

    /// The synchronized start time of every task in the window.
    #[must_use]
    pub const fn start(&self) -> TimePoint {
        self.start
    }

    /// The end of the window: start plus the slowest member's runtime.
    #[must_use]
    pub fn end(&self) -> TimePoint {
        self.start + self.length()
    }

    /// The window length — the runtime on the slowest member node (the
    /// paper's `t_i(s̄_i)`, the elapsed job time).
    #[must_use]
    pub fn length(&self) -> TimeDelta {
        self.slots
            .iter()
            .map(|ws| ws.runtime)
            .max()
            .unwrap_or(TimeDelta::ZERO)
    }

    /// Number of member slots (the job's degree of parallelism `N`).
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// The member slots.
    #[must_use]
    pub fn slots(&self) -> &[WindowSlot] {
        &self.slots
    }

    /// Total price per time unit — the sum of member prices (the cost
    /// measure quoted in the paper's Fig. 2 example).
    #[must_use]
    pub fn cost_per_time(&self) -> Price {
        self.slots.iter().map(|ws| ws.price).sum()
    }

    /// Total cost of the window: `Σ price_k × runtime_k` (the paper's
    /// `c_i(s̄_i)`; Sec. 6 writes the homogeneous special case `C·t·N/P`).
    #[must_use]
    pub fn total_cost(&self) -> Money {
        self.slots.iter().map(WindowSlot::cost).sum()
    }

    /// The span `[start, start + runtime)` actually occupied on member `ws`.
    #[must_use]
    pub fn used_span(&self, ws: &WindowSlot) -> Span {
        Span::from_start_length(self.start, ws.runtime)
            .expect("window member runtimes are positive by construction")
    }

    /// Iterates the `(source slot id, used span)` pairs that slot
    /// subtraction must remove from the vacant list (Fig. 1 (b)).
    pub fn cuts(&self) -> impl Iterator<Item = (SlotId, Span)> + '_ {
        self.slots.iter().map(|ws| (ws.source, self.used_span(ws)))
    }

    /// Returns `true` if any member was carved from slot `id`.
    #[must_use]
    pub fn uses_slot(&self, id: SlotId) -> bool {
        self.slots.iter().any(|ws| ws.source == id)
    }

    /// Returns `true` if any member runs on node `node`.
    #[must_use]
    pub fn uses_node(&self, node: NodeId) -> bool {
        self.slots.iter().any(|ws| ws.node == node)
    }

    /// Returns `true` if the occupied regions of the two windows share any
    /// `(node, tick)` pair.
    #[must_use]
    pub fn overlaps(&self, other: &Window) -> bool {
        for a in &self.slots {
            for b in &other.slots {
                if a.node == b.node && self.used_span(a).overlaps(other.used_span(b)) {
                    return true;
                }
            }
        }
        false
    }
}

impl fmt::Display for Window {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "window@{} len={} n={} cost={} ({}):",
            self.start,
            self.length(),
            self.slot_count(),
            self.total_cost(),
            self.cost_per_time(),
        )?;
        for ws in &self.slots {
            write!(f, " {}[{}]", ws.node, ws.runtime)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(id: u64, node: u32, perf: f64, price: i64, a: i64, b: i64) -> Slot {
        Slot::new(
            SlotId::new(id),
            NodeId::new(node),
            Perf::from_f64(perf),
            Price::from_credits(price),
            Span::new(TimePoint::new(a), TimePoint::new(b)).unwrap(),
        )
        .unwrap()
    }

    fn member(id: u64, node: u32, price: i64, runtime: i64) -> WindowSlot {
        WindowSlot::from_slot(
            &slot(id, node, 1.0, price, 0, 1000),
            TimeDelta::new(runtime),
        )
        .unwrap()
    }

    #[test]
    fn empty_window_rejected() {
        assert_eq!(
            Window::new(TimePoint::ZERO, vec![]).unwrap_err(),
            CoreError::EmptyWindow
        );
    }

    #[test]
    fn duplicate_node_rejected() {
        let err = Window::new(
            TimePoint::ZERO,
            vec![member(0, 1, 2, 10), member(1, 1, 2, 10)],
        )
        .unwrap_err();
        assert_eq!(
            err,
            CoreError::DuplicateNode {
                node: NodeId::new(1)
            }
        );
    }

    #[test]
    fn non_positive_runtime_rejected_at_member_construction() {
        let err = WindowSlot::from_slot(&slot(0, 0, 1.0, 2, 0, 100), TimeDelta::ZERO).unwrap_err();
        assert_eq!(
            err,
            CoreError::NonPositiveRuntime {
                node: NodeId::new(0)
            }
        );
    }

    #[test]
    fn length_is_slowest_member() {
        let w = Window::new(
            TimePoint::new(100),
            vec![
                member(0, 0, 2, 40),
                member(1, 1, 3, 80),
                member(2, 2, 1, 60),
            ],
        )
        .unwrap();
        assert_eq!(w.length(), TimeDelta::new(80));
        assert_eq!(w.end(), TimePoint::new(180));
    }

    #[test]
    fn costs_sum_members() {
        let w = Window::new(
            TimePoint::ZERO,
            vec![member(0, 0, 2, 40), member(1, 1, 3, 80)],
        )
        .unwrap();
        assert_eq!(w.cost_per_time(), Price::from_credits(5));
        assert_eq!(
            w.total_cost(),
            Money::from_credits(2 * 40) + Money::from_credits(3 * 80)
        );
    }

    #[test]
    fn cuts_cover_used_spans() {
        let w = Window::new(
            TimePoint::new(50),
            vec![member(7, 0, 2, 40), member(8, 1, 3, 20)],
        )
        .unwrap();
        let cuts: Vec<_> = w.cuts().collect();
        assert_eq!(cuts.len(), 2);
        assert_eq!(cuts[0].0, SlotId::new(7));
        assert_eq!(cuts[0].1.start(), TimePoint::new(50));
        assert_eq!(cuts[0].1.end(), TimePoint::new(90));
        assert_eq!(cuts[1].1.end(), TimePoint::new(70));
    }

    #[test]
    fn uses_slot_and_node() {
        let w = Window::new(TimePoint::ZERO, vec![member(7, 3, 2, 40)]).unwrap();
        assert!(w.uses_slot(SlotId::new(7)));
        assert!(!w.uses_slot(SlotId::new(8)));
        assert!(w.uses_node(NodeId::new(3)));
        assert!(!w.uses_node(NodeId::new(4)));
    }

    #[test]
    fn overlap_requires_shared_node_and_time() {
        let a = Window::new(TimePoint::ZERO, vec![member(0, 0, 1, 50)]).unwrap();
        // Same node, later in time: no overlap.
        let b = Window::new(TimePoint::new(50), vec![member(1, 0, 1, 50)]).unwrap();
        // Same time, different node: no overlap.
        let c = Window::new(TimePoint::ZERO, vec![member(2, 1, 1, 50)]).unwrap();
        // Same node, overlapping time: overlap.
        let d = Window::new(TimePoint::new(25), vec![member(3, 0, 1, 50)]).unwrap();
        assert!(!a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(a.overlaps(&d));
        assert!(d.overlaps(&a));
    }

    #[test]
    fn display_mentions_length_and_cost() {
        let w = Window::new(TimePoint::ZERO, vec![member(0, 0, 2, 40)]).unwrap();
        let text = format!("{w}");
        assert!(text.contains("len=40Δ"));
        assert!(text.contains("cpu0"));
    }
}
