//! The ordered vacant-slot list and the slot-subtraction operation.
//!
//! Local resource managers publish vacant slots; the metascheduler keeps
//! them in a list ordered by non-decreasing start time (Fig. 1 (a) of the
//! paper). When a window is committed for a job, the used intervals are
//! *subtracted* from the list (Fig. 1 (b)): each source slot `K` is removed
//! and replaced by the remnants `K1 = [K.start, K'.start)` and
//! `K2 = [K'.end, K.end)`, dropping zero-length pieces.
//!
//! [`SlotList`] is a facade over two interchangeable representations:
//!
//! * **Flat** ([`MarketRepr::Flat`]): a start-ordered `Vec<Slot>` with an
//!   id index and per-node start maps — `O(log m)` lookups but `O(m)`
//!   memmove per splice. Retained as the differential oracle.
//! * **Interval** ([`MarketRepr::Interval`]): per-node
//!   [`IntervalSet`](crate::IntervalSet) timelines plus a global
//!   `(start, id)`-ordered tree — every subtraction, carve, tail-return
//!   insert, and coalesce merge is an `O(log m)` tree splice.
//!
//! The two representations are **observably identical** — same slots,
//! same id minting order, same iteration order, same
//! [`SubtractionReport`]s — so every consumer (selection, simulation,
//! engine, persistence, federation) behaves bit-for-bit the same under
//! either. `tests/interval_equivalence.rs` pins that equivalence.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::interval::IntervalMarket;
use crate::resource::NodeId;
use crate::slot::{Slot, SlotId};
use crate::time::{Span, TimeDelta, TimePoint};
use crate::window::Window;

/// Which storage backs a [`SlotList`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MarketRepr {
    /// Start-ordered vector with an id index (the historical layout, kept
    /// as the differential oracle).
    Flat,
    /// Per-node interval timelines with a global ordered view.
    Interval,
}

/// A list of vacant slots ordered by `(start time, slot id)`.
///
/// # Examples
///
/// ```
/// use ecosched_core::{NodeId, Perf, Price, Slot, SlotId, SlotList, Span, TimePoint};
///
/// let mut list = SlotList::new();
/// let span = Span::new(TimePoint::new(0), TimePoint::new(100)).unwrap();
/// let id = list.mint_id();
/// list.insert(Slot::new(id, NodeId::new(0), Perf::UNIT, Price::from_credits(2), span)?)?;
/// assert_eq!(list.len(), 1);
/// # Ok::<(), ecosched_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SlotList {
    repr: Repr,
}

#[derive(Debug, Clone)]
enum Repr {
    Flat(FlatStore),
    Interval(IntervalMarket),
}

impl Default for SlotList {
    fn default() -> Self {
        SlotList {
            repr: Repr::Flat(FlatStore::default()),
        }
    }
}

/// What one [`SlotList::subtract_window_report`] call did to the list:
/// which slots were consumed and which remnants replaced them.
///
/// The incremental alternatives search uses this to update per-job scan
/// state without re-reading the whole list.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SubtractionReport {
    /// Ids removed from the list (the window's source slots).
    pub removed: Vec<SlotId>,
    /// Freshly minted remnant slots inserted in their place.
    pub remnants: Vec<Slot>,
}

impl SlotList {
    /// Creates an empty slot list in the flat representation.
    #[must_use]
    pub fn new() -> Self {
        SlotList::default()
    }

    /// Creates an empty slot list in the given representation.
    #[must_use]
    pub fn new_with_repr(repr: MarketRepr) -> Self {
        SlotList {
            repr: match repr {
                MarketRepr::Flat => Repr::Flat(FlatStore::default()),
                MarketRepr::Interval => Repr::Interval(IntervalMarket::new()),
            },
        }
    }

    /// The representation currently backing this list.
    #[must_use]
    pub fn repr(&self) -> MarketRepr {
        match &self.repr {
            Repr::Flat(_) => MarketRepr::Flat,
            Repr::Interval(_) => MarketRepr::Interval,
        }
    }

    /// Converts the list to `repr`, preserving the observable state
    /// exactly: the same slots and the same `next_id` (fresh mints after
    /// a conversion produce the same ids they would have before it).
    /// A no-op if the list is already in `repr`.
    #[must_use]
    pub fn with_repr(self, repr: MarketRepr) -> SlotList {
        if self.repr() == repr {
            return self;
        }
        let next_id = self.next_id();
        match (self.repr, repr) {
            (Repr::Flat(flat), MarketRepr::Interval) => SlotList {
                repr: Repr::Interval(IntervalMarket::from_parts(flat.slots, next_id)),
            },
            (Repr::Interval(market), MarketRepr::Flat) => SlotList {
                repr: Repr::Flat(FlatStore::from_parts(
                    market.into_slots().collect(),
                    next_id,
                )),
            },
            (repr, _) => SlotList { repr },
        }
    }

    /// Builds a flat-representation list from arbitrary slots, sorting
    /// them by start time.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DuplicateSlotId`] if two slots share an id, or
    /// [`CoreError::OverlappingSlots`] if two slots on the same node
    /// overlap in time.
    pub fn from_slots(slots: Vec<Slot>) -> Result<Self, CoreError> {
        FlatStore::from_slots(slots).map(|flat| SlotList {
            repr: Repr::Flat(flat),
        })
    }

    /// [`SlotList::from_slots`], then converts to `repr`.
    ///
    /// # Errors
    ///
    /// Propagates [`SlotList::from_slots`] errors.
    pub fn from_slots_with_repr(slots: Vec<Slot>, repr: MarketRepr) -> Result<Self, CoreError> {
        SlotList::from_slots(slots).map(|list| list.with_repr(repr))
    }

    /// Builds a flat list from slots already in strictly increasing
    /// `(start, id)` order — the bulk-load path. One pass, `O(m)`: order,
    /// id uniqueness, and same-node disjointness are all checked as the
    /// slots stream in, with no sort and no quadratic overlap scan.
    ///
    /// # Errors
    ///
    /// * [`CoreError::UnsortedSlots`] if a slot is not strictly after its
    ///   predecessor in `(start, id)` order (this also rejects duplicate
    ///   ids at equal starts);
    /// * [`CoreError::DuplicateSlotId`] if an id repeats across different
    ///   start times;
    /// * [`CoreError::OverlappingSlots`] if two slots on one node overlap.
    ///
    /// # Examples
    ///
    /// ```
    /// use ecosched_core::{NodeId, Perf, Price, Slot, SlotId, SlotList, Span, TimePoint};
    ///
    /// let mk = |id: u64, a: i64, b: i64| Slot::new(
    ///     SlotId::new(id), NodeId::new(id as u32), Perf::UNIT,
    ///     Price::from_credits(2),
    ///     Span::new(TimePoint::new(a), TimePoint::new(b)).unwrap(),
    /// ).unwrap();
    /// let list = SlotList::from_sorted_slots(vec![mk(0, 0, 50), mk(1, 0, 60)]).unwrap();
    /// assert_eq!(list.len(), 2);
    /// assert!(SlotList::from_sorted_slots(vec![mk(0, 10, 50), mk(1, 0, 60)]).is_err());
    /// ```
    pub fn from_sorted_slots(slots: Vec<Slot>) -> Result<Self, CoreError> {
        FlatStore::from_sorted_slots(slots).map(|flat| SlotList {
            repr: Repr::Flat(flat),
        })
    }

    /// [`SlotList::from_sorted_slots`] targeting a specific
    /// representation directly (no post-hoc conversion pass). Same
    /// validation, same errors.
    ///
    /// # Errors
    ///
    /// As [`SlotList::from_sorted_slots`].
    pub fn from_sorted_slots_with_repr(
        slots: Vec<Slot>,
        repr: MarketRepr,
    ) -> Result<Self, CoreError> {
        match repr {
            MarketRepr::Flat => SlotList::from_sorted_slots(slots),
            MarketRepr::Interval => IntervalMarket::from_sorted_slots(slots).map(|m| SlotList {
                repr: Repr::Interval(m),
            }),
        }
    }

    fn next_id(&self) -> u64 {
        match &self.repr {
            Repr::Flat(flat) => flat.next_id,
            Repr::Interval(market) => market.next_id(),
        }
    }

    /// Mints a fresh slot id, unique within this list.
    pub fn mint_id(&mut self) -> SlotId {
        match &mut self.repr {
            Repr::Flat(flat) => flat.mint_id(),
            Repr::Interval(market) => market.mint_id(),
        }
    }

    /// Inserts a slot, keeping the ordering invariant.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DuplicateSlotId`] if the id is already
    /// present. Overlap against existing same-node slots is checked in
    /// debug builds (flat) or structurally (interval, where an
    /// overlapping insert returns [`CoreError::OverlappingSlots`] instead
    /// of corrupting the timeline).
    pub fn insert(&mut self, slot: Slot) -> Result<(), CoreError> {
        match &mut self.repr {
            Repr::Flat(flat) => flat.insert(slot),
            Repr::Interval(market) => market.insert(slot),
        }
    }

    /// Number of slots in the list.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Flat(flat) => flat.slots.len(),
            Repr::Interval(market) => market.len(),
        }
    }

    /// Returns `true` if the list has no slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates the slots in `(start, id)` order.
    pub fn iter(&self) -> SlotIter<'_> {
        match &self.repr {
            Repr::Flat(flat) => SlotIter::Flat(flat.slots.iter()),
            Repr::Interval(market) => SlotIter::Interval(market.iter()),
        }
    }

    /// Iterates, in `(start, id)` order, every slot with `start >= from`
    /// — `O(log m)` to position, then `O(1)` per step. This replaces the
    /// positional `first_at_or_after`/`as_slice` pair of the flat-only
    /// era: scans walk boundaries, not vector indices.
    ///
    /// # Examples
    ///
    /// ```
    /// use ecosched_core::{NodeId, Perf, Price, Slot, SlotId, SlotList, Span, TimePoint};
    ///
    /// let mk = |id: u64, a: i64, b: i64| Slot::new(
    ///     SlotId::new(id), NodeId::new(id as u32), Perf::UNIT,
    ///     Price::from_credits(2),
    ///     Span::new(TimePoint::new(a), TimePoint::new(b)).unwrap(),
    /// ).unwrap();
    /// let list = SlotList::from_slots(vec![mk(0, 0, 50), mk(1, 20, 60)]).unwrap();
    /// assert_eq!(list.iter_from(TimePoint::new(10)).count(), 1);
    /// assert_eq!(list.iter_from(TimePoint::new(100)).count(), 0);
    /// ```
    pub fn iter_from(&self, from: TimePoint) -> SlotIter<'_> {
        match &self.repr {
            Repr::Flat(flat) => {
                let pos = flat.slots.partition_point(|s| s.start() < from);
                SlotIter::Flat(flat.slots[pos..].iter())
            }
            Repr::Interval(market) => SlotIter::IntervalRange(market.range_from(from)),
        }
    }

    /// Looks up a slot by id in `O(log m)` via the id index.
    ///
    /// # Examples
    ///
    /// ```
    /// use ecosched_core::{NodeId, Perf, Price, Slot, SlotId, SlotList, Span, TimePoint};
    ///
    /// let span = Span::new(TimePoint::new(0), TimePoint::new(100)).unwrap();
    /// let slot = Slot::new(SlotId::new(7), NodeId::new(0), Perf::UNIT,
    ///                      Price::from_credits(2), span).unwrap();
    /// let list = SlotList::from_slots(vec![slot]).unwrap();
    /// assert_eq!(list.get(SlotId::new(7)).unwrap().start(), TimePoint::new(0));
    /// assert!(list.get(SlotId::new(8)).is_none());
    /// ```
    #[must_use]
    pub fn get(&self, id: SlotId) -> Option<&Slot> {
        match &self.repr {
            Repr::Flat(flat) => flat.get(id),
            Repr::Interval(market) => market.get(id),
        }
    }

    /// Returns `true` if slot `id` is currently in the list (`O(1)`).
    #[must_use]
    pub fn contains(&self, id: SlotId) -> bool {
        match &self.repr {
            Repr::Flat(flat) => flat.index.contains_key(&id),
            Repr::Interval(market) => market.contains(id),
        }
    }

    /// The earliest vacant start across the list, if any.
    #[must_use]
    pub fn earliest_start(&self) -> Option<TimePoint> {
        match &self.repr {
            Repr::Flat(flat) => flat.slots.first().map(Slot::start),
            Repr::Interval(market) => market.earliest_start(),
        }
    }

    /// Sum of all vacant span lengths.
    #[must_use]
    pub fn total_vacant_time(&self) -> TimeDelta {
        match &self.repr {
            Repr::Flat(flat) => flat.slots.iter().map(Slot::length).sum(),
            Repr::Interval(market) => market.total_vacant_time(),
        }
    }

    /// The slot on `node` whose vacant span fully contains `region`, if
    /// one exists — `O(log m)` via the per-node structures.
    ///
    /// Same-node slots are disjoint, so at most one slot can cover the
    /// region: the last one starting at or before `region.start()`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ecosched_core::{NodeId, Perf, Price, Slot, SlotId, SlotList, Span, TimePoint};
    ///
    /// let span = Span::new(TimePoint::new(10), TimePoint::new(90)).unwrap();
    /// let slot = Slot::new(SlotId::new(0), NodeId::new(3), Perf::UNIT,
    ///                      Price::from_credits(2), span).unwrap();
    /// let list = SlotList::from_slots(vec![slot]).unwrap();
    /// let region = Span::new(TimePoint::new(20), TimePoint::new(50)).unwrap();
    /// assert!(list.covering_slot(NodeId::new(3), region).is_some());
    /// assert!(list.covering_slot(NodeId::new(4), region).is_none());
    /// ```
    #[must_use]
    pub fn covering_slot(&self, node: NodeId, region: Span) -> Option<&Slot> {
        match &self.repr {
            Repr::Flat(flat) => flat.covering_slot(node, region),
            Repr::Interval(market) => market.covering_slot(node, region),
        }
    }

    /// Withdraws `region` from every slot on `node` it overlaps — the
    /// revocation primitive: an owner reclaiming `[a, b)` on a node carves
    /// that interval out of whatever vacancy remains there, minting
    /// remnants for the surviving pieces. Returns the ids of the affected
    /// slots. `O((k + 1) log m)` for `k` affected slots.
    pub fn remove_region(&mut self, node: NodeId, region: Span) -> Vec<SlotId> {
        match &mut self.repr {
            Repr::Flat(flat) => flat.remove_region(node, region),
            Repr::Interval(market) => market.remove_region(node, region),
        }
    }

    /// Removes the interval `cut` from the slot `id`, inserting remnants in
    /// order (Fig. 1 (b)). Locating the slot is `O(log m)` via the index;
    /// the splice itself is `O(m)` flat, `O(log m)` interval.
    ///
    /// # Errors
    ///
    /// * [`CoreError::SlotNotFound`] if `id` is not in the list;
    /// * [`CoreError::CutOutsideSlot`] if `cut` is not fully contained in
    ///   the slot's vacant span.
    pub fn subtract(&mut self, id: SlotId, cut: Span) -> Result<(), CoreError> {
        self.subtract_collect(id, cut, &mut Vec::new())
    }

    /// [`SlotList::subtract`], appending minted remnants to `remnants`.
    fn subtract_collect(
        &mut self,
        id: SlotId,
        cut: Span,
        remnants: &mut Vec<Slot>,
    ) -> Result<(), CoreError> {
        match &mut self.repr {
            Repr::Flat(flat) => flat.subtract_collect(id, cut, remnants),
            Repr::Interval(market) => market.subtract_collect(id, cut, remnants),
        }
    }

    /// Subtracts every member of a committed window from the list.
    ///
    /// This is all-or-nothing: on error the list is left unchanged.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::SlotNotFound`] / [`CoreError::CutOutsideSlot`]
    /// from [`SlotList::subtract`].
    pub fn subtract_window(&mut self, window: &Window) -> Result<(), CoreError> {
        self.subtract_window_report(window).map(drop)
    }

    /// [`SlotList::subtract_window`], additionally reporting the consumed
    /// ids and the minted remnants.
    ///
    /// Validation and mutation share one indexed pass over the window's
    /// cuts: each cut is checked with an `O(log m)` lookup, and only when
    /// all pass does the mutation run, so a failure cannot leave a partial
    /// subtraction.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::SlotNotFound`] / [`CoreError::CutOutsideSlot`]
    /// from [`SlotList::subtract`].
    pub fn subtract_window_report(
        &mut self,
        window: &Window,
    ) -> Result<SubtractionReport, CoreError> {
        // Indexed validation: O(k log m) total, no list mutation yet.
        for (id, cut) in window.cuts() {
            let slot = self.get(id).ok_or(CoreError::SlotNotFound { id })?;
            if !slot.span().contains_span(cut) {
                return Err(CoreError::CutOutsideSlot {
                    id,
                    slot_span: slot.span(),
                    cut,
                });
            }
        }
        let mut report = SubtractionReport::default();
        for (id, cut) in window.cuts() {
            self.subtract_collect(id, cut, &mut report.remnants)
                .expect("cuts validated before mutation");
            report.removed.push(id);
        }
        Ok(report)
    }

    /// Merges every run of same-node slots that touch (`prev.end ==
    /// next.start`) and agree on price and performance into one slot
    /// carrying the run head's id — the defragmentation pass for lists
    /// shredded by window release/re-release cycles. Returns the number of
    /// slots absorbed into a neighbour.
    ///
    /// Ids of absorbed slots are retired (never reused: `next_id` is
    /// untouched), surviving slots keep their ids and `(start, id)` order,
    /// and the union of vacant `(node, time)` capacity is exactly
    /// preserved — only the partitioning changes. Both representations
    /// make identical merge decisions; the interval form pays `O(n log n)`
    /// tree updates instead of a full vector rebuild.
    pub fn coalesce(&mut self) -> usize {
        match &mut self.repr {
            Repr::Flat(flat) => flat.coalesce(),
            Repr::Interval(market) => market.coalesce(),
        }
    }

    /// Checks every structural invariant of the list, including that the
    /// auxiliary structures match the canonical slot set. Cheap enough for
    /// tests; not called on hot paths.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`CoreError`].
    pub fn validate(&self) -> Result<(), CoreError> {
        match &self.repr {
            Repr::Flat(flat) => flat.validate(),
            Repr::Interval(market) => market.validate(),
        }
    }
}

/// Borrowed iterator over a [`SlotList`]'s slots in `(start, id)` order,
/// uniform across representations.
#[derive(Debug, Clone)]
pub enum SlotIter<'a> {
    /// Walking the flat vector.
    Flat(std::slice::Iter<'a, Slot>),
    /// Walking the whole interval order tree.
    Interval(std::collections::btree_map::Values<'a, (TimePoint, SlotId), Slot>),
    /// Walking an interval order-tree suffix (from [`SlotList::iter_from`]).
    IntervalRange(std::collections::btree_map::Range<'a, (TimePoint, SlotId), Slot>),
}

impl<'a> Iterator for SlotIter<'a> {
    type Item = &'a Slot;

    fn next(&mut self) -> Option<&'a Slot> {
        match self {
            SlotIter::Flat(it) => it.next(),
            SlotIter::Interval(it) => it.next(),
            SlotIter::IntervalRange(it) => it.next().map(|(_, slot)| slot),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            SlotIter::Flat(it) => it.size_hint(),
            SlotIter::Interval(it) => it.size_hint(),
            SlotIter::IntervalRange(it) => it.size_hint(),
        }
    }
}

impl DoubleEndedIterator for SlotIter<'_> {
    fn next_back(&mut self) -> Option<Self::Item> {
        match self {
            SlotIter::Flat(it) => it.next_back(),
            SlotIter::Interval(it) => it.next_back(),
            SlotIter::IntervalRange(it) => it.next_back().map(|(_, slot)| slot),
        }
    }
}

/// Owning iterator over a [`SlotList`]'s slots in `(start, id)` order.
#[derive(Debug)]
pub enum SlotIntoIter {
    /// Draining the flat vector.
    Flat(std::vec::IntoIter<Slot>),
    /// Draining the interval order tree.
    Interval(std::collections::btree_map::IntoValues<(TimePoint, SlotId), Slot>),
}

impl Iterator for SlotIntoIter {
    type Item = Slot;

    fn next(&mut self) -> Option<Slot> {
        match self {
            SlotIntoIter::Flat(it) => it.next(),
            SlotIntoIter::Interval(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            SlotIntoIter::Flat(it) => it.size_hint(),
            SlotIntoIter::Interval(it) => it.size_hint(),
        }
    }
}

impl PartialEq for SlotList {
    fn eq(&self, other: &Self) -> bool {
        // Observable equality: the slots and the minting cursor. The
        // backing representation is an execution detail — a flat list and
        // an interval list holding the same market compare equal.
        self.next_id() == other.next_id()
            && self.len() == other.len()
            && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl Eq for SlotList {}

// Manual serde. The flat representation keeps the wire format of the
// pre-index list (`slots` + `next_id`); the interval representation
// writes the per-node interval form behind a `repr` tag. Decoding
// dispatches on the tag's presence, so legacy flat payloads (persist
// format v1) load unchanged.
impl Serialize for SlotList {
    fn to_value(&self) -> serde::Value {
        match &self.repr {
            Repr::Flat(flat) => serde::Value::Map(vec![
                ("slots".to_string(), flat.slots.to_value()),
                ("next_id".to_string(), flat.next_id.to_value()),
            ]),
            Repr::Interval(market) => {
                let nodes: Vec<serde::Value> = market
                    .node_slots()
                    .into_iter()
                    .map(|(node, slots)| {
                        serde::Value::Map(vec![
                            ("node".to_string(), node.to_value()),
                            ("slots".to_string(), slots.to_value()),
                        ])
                    })
                    .collect();
                serde::Value::Map(vec![
                    ("repr".to_string(), "interval".to_string().to_value()),
                    ("nodes".to_string(), serde::Value::Seq(nodes)),
                    ("next_id".to_string(), market.next_id().to_value()),
                ])
            }
        }
    }
}

impl<'de> Deserialize<'de> for SlotList {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let tagged_interval = value
            .as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == "repr"))
            .is_some();
        if !tagged_interval {
            // Legacy flat payload: `{slots, next_id}`.
            let slots = Vec::<Slot>::from_value(serde::get_field(value, "slots")?)?;
            let next_id = u64::from_value(serde::get_field(value, "next_id")?)?;
            let flat = FlatStore::rebuild(slots, next_id)?;
            return Ok(SlotList {
                repr: Repr::Flat(flat),
            });
        }
        let repr = String::from_value(serde::get_field(value, "repr")?)?;
        if repr != "interval" {
            return Err(serde::Error::custom(format!(
                "unknown slot list repr tag {repr:?}"
            )));
        }
        let next_id = u64::from_value(serde::get_field(value, "next_id")?)?;
        let nodes = serde::get_field(value, "nodes")?;
        let serde::Value::Seq(nodes) = nodes else {
            return Err(serde::Error::expected("sequence", nodes));
        };
        let mut all_slots: Vec<Slot> = Vec::new();
        for entry in nodes {
            let node = NodeId::from_value(serde::get_field(entry, "node")?)?;
            let slots = Vec::<Slot>::from_value(serde::get_field(entry, "slots")?)?;
            for slot in &slots {
                if slot.node() != node {
                    return Err(serde::Error::custom(format!(
                        "slot {} filed under node {node} but belongs to {}",
                        slot.id(),
                        slot.node()
                    )));
                }
            }
            all_slots.extend(slots);
        }
        let market = IntervalMarket::from_parts(all_slots, next_id);
        market.validate().map_err(|e| {
            serde::Error::custom(format!("invalid serialized interval market: {e}"))
        })?;
        Ok(SlotList {
            repr: Repr::Interval(market),
        })
    }
}

impl IntoIterator for SlotList {
    type Item = Slot;
    type IntoIter = SlotIntoIter;
    fn into_iter(self) -> Self::IntoIter {
        match self.repr {
            Repr::Flat(flat) => SlotIntoIter::Flat(flat.slots.into_iter()),
            Repr::Interval(market) => SlotIntoIter::Interval(market.into_slots()),
        }
    }
}

impl<'a> IntoIterator for &'a SlotList {
    type Item = &'a Slot;
    type IntoIter = SlotIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl fmt::Display for SlotList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "slot list ({} slots):", self.len())?;
        for slot in self.iter() {
            writeln!(f, "  {slot}")?;
        }
        Ok(())
    }
}

/// The flat representation: a `(start, id)`-ordered vector with an id
/// index and per-node start maps. Retained as the differential oracle
/// the interval representation is pinned against.
#[derive(Debug, Clone, Default)]
struct FlatStore {
    slots: Vec<Slot>,
    next_id: u64,
    /// Start time of each live slot, keyed by id: turns `get`/`subtract`
    /// into a hash probe + binary search on the ordered vector.
    index: HashMap<SlotId, TimePoint>,
    /// Per-node view `start → id`. Same-node slots are disjoint, so the
    /// start uniquely keys a slot within its node; this turns region
    /// queries into `O(log m)` range lookups instead of full scans.
    node_starts: HashMap<NodeId, BTreeMap<TimePoint, SlotId>>,
}

impl FlatStore {
    fn from_slots(slots: Vec<Slot>) -> Result<Self, CoreError> {
        let mut list = FlatStore {
            next_id: slots.iter().map(|s| s.id().raw() + 1).max().unwrap_or(0),
            index: HashMap::with_capacity(slots.len()),
            node_starts: HashMap::new(),
            slots,
        };
        list.slots.sort_by_key(|s| (s.start(), s.id()));
        for slot in &list.slots {
            if list.index.insert(slot.id(), slot.start()).is_some() {
                return Err(CoreError::DuplicateSlotId { id: slot.id() });
            }
            list.node_starts
                .entry(slot.node())
                .or_default()
                .insert(slot.start(), slot.id());
        }
        list.validate()?;
        Ok(list)
    }

    fn from_sorted_slots(slots: Vec<Slot>) -> Result<Self, CoreError> {
        let mut index = HashMap::with_capacity(slots.len());
        let mut node_starts: HashMap<NodeId, BTreeMap<TimePoint, SlotId>> = HashMap::new();
        // Running max vacant end per node: starts are non-decreasing, so a
        // new slot overlaps an earlier same-node slot iff it starts before
        // the furthest end seen on that node.
        let mut node_ends: HashMap<NodeId, (TimePoint, SlotId)> = HashMap::new();
        let mut next_id = 0u64;
        for (i, slot) in slots.iter().enumerate() {
            if i > 0 {
                let prev = &slots[i - 1];
                if (prev.start(), prev.id()) >= (slot.start(), slot.id()) {
                    return Err(CoreError::UnsortedSlots { index: i });
                }
            }
            if index.insert(slot.id(), slot.start()).is_some() {
                return Err(CoreError::DuplicateSlotId { id: slot.id() });
            }
            match node_ends.get_mut(&slot.node()) {
                Some((end, first)) => {
                    if slot.start() < *end {
                        return Err(CoreError::OverlappingSlots {
                            node: slot.node(),
                            first: *first,
                            second: slot.id(),
                        });
                    }
                    if slot.end() > *end {
                        *end = slot.end();
                        *first = slot.id();
                    }
                }
                None => {
                    node_ends.insert(slot.node(), (slot.end(), slot.id()));
                }
            }
            node_starts
                .entry(slot.node())
                .or_default()
                .insert(slot.start(), slot.id());
            next_id = next_id.max(slot.id().raw() + 1);
        }
        Ok(FlatStore {
            slots,
            next_id,
            index,
            node_starts,
        })
    }

    /// Rebuilds from an in-order slot dump plus a trusted `next_id` — the
    /// representation-conversion path, no revalidation beyond indexing.
    fn from_parts(slots: Vec<Slot>, next_id: u64) -> Self {
        let mut index = HashMap::with_capacity(slots.len());
        let mut node_starts: HashMap<NodeId, BTreeMap<TimePoint, SlotId>> = HashMap::new();
        for slot in &slots {
            index.insert(slot.id(), slot.start());
            node_starts
                .entry(slot.node())
                .or_default()
                .insert(slot.start(), slot.id());
        }
        FlatStore {
            slots,
            next_id,
            index,
            node_starts,
        }
    }

    /// Deserialization path: [`FlatStore::from_parts`] plus the duplicate
    /// id check the legacy decoder always performed.
    fn rebuild(slots: Vec<Slot>, next_id: u64) -> Result<Self, serde::Error> {
        let mut index = HashMap::with_capacity(slots.len());
        let mut node_starts: HashMap<NodeId, BTreeMap<TimePoint, SlotId>> = HashMap::new();
        for slot in &slots {
            if index.insert(slot.id(), slot.start()).is_some() {
                return Err(serde::Error::custom(format!(
                    "duplicate slot id {} in serialized slot list",
                    slot.id()
                )));
            }
            node_starts
                .entry(slot.node())
                .or_default()
                .insert(slot.start(), slot.id());
        }
        Ok(FlatStore {
            slots,
            next_id,
            index,
            node_starts,
        })
    }

    fn mint_id(&mut self) -> SlotId {
        let id = SlotId::new(self.next_id);
        self.next_id += 1;
        id
    }

    fn insert(&mut self, slot: Slot) -> Result<(), CoreError> {
        if self.index.contains_key(&slot.id()) {
            return Err(CoreError::DuplicateSlotId { id: slot.id() });
        }
        debug_assert!(
            self.slots
                .iter()
                .all(|s| s.node() != slot.node() || !s.span().overlaps(slot.span())),
            "inserted slot overlaps an existing slot on the same node"
        );
        self.next_id = self.next_id.max(slot.id().raw() + 1);
        let pos = self
            .slots
            .partition_point(|s| (s.start(), s.id()) < (slot.start(), slot.id()));
        self.index.insert(slot.id(), slot.start());
        self.node_starts
            .entry(slot.node())
            .or_default()
            .insert(slot.start(), slot.id());
        self.slots.insert(pos, slot);
        Ok(())
    }

    /// Position of slot `id` in the ordered vector: a hash probe for its
    /// start time, then a binary search on `(start, id)`.
    fn position(&self, id: SlotId) -> Option<usize> {
        let start = *self.index.get(&id)?;
        let pos = self
            .slots
            .partition_point(|s| (s.start(), s.id()) < (start, id));
        debug_assert!(
            self.slots.get(pos).is_some_and(|s| s.id() == id),
            "index start time out of sync with the ordered vector"
        );
        Some(pos)
    }

    fn get(&self, id: SlotId) -> Option<&Slot> {
        self.position(id).map(|pos| &self.slots[pos])
    }

    fn covering_slot(&self, node: NodeId, region: Span) -> Option<&Slot> {
        let starts = self.node_starts.get(&node)?;
        let (_, &id) = starts.range(..=region.start()).next_back()?;
        let slot = self.get(id)?;
        slot.span().contains_span(region).then_some(slot)
    }

    fn remove_region(&mut self, node: NodeId, region: Span) -> Vec<SlotId> {
        let mut candidates: Vec<SlotId> = Vec::new();
        if let Some(starts) = self.node_starts.get(&node) {
            // The predecessor of the region start may reach into it; every
            // slot starting inside the region overlaps it (spans are
            // non-empty).
            if let Some((_, &id)) = starts.range(..region.start()).next_back() {
                candidates.push(id);
            }
            candidates.extend(
                starts
                    .range(region.start()..region.end())
                    .map(|(_, &id)| id),
            );
        }
        let mut affected = Vec::new();
        for id in candidates {
            let slot = *self.get(id).expect("node index is in sync with the list");
            if let Some(cut) = slot.span().intersect(region) {
                self.subtract_collect(id, cut, &mut Vec::new())
                    .expect("the intersection lies inside the slot");
                affected.push(id);
            }
        }
        affected
    }

    fn subtract_collect(
        &mut self,
        id: SlotId,
        cut: Span,
        remnants: &mut Vec<Slot>,
    ) -> Result<(), CoreError> {
        let pos = self.position(id).ok_or(CoreError::SlotNotFound { id })?;
        let slot = self.slots[pos];
        if !slot.span().contains_span(cut) {
            return Err(CoreError::CutOutsideSlot {
                id,
                slot_span: slot.span(),
                cut,
            });
        }
        self.slots.remove(pos);
        self.index.remove(&id);
        if let Some(starts) = self.node_starts.get_mut(&slot.node()) {
            starts.remove(&slot.start());
            if starts.is_empty() {
                self.node_starts.remove(&slot.node());
            }
        }
        let (left, right) = slot.span().subtract(cut);
        for remnant in [left, right].into_iter().flatten() {
            let rid = self.mint_id();
            let new_slot = slot
                .with_span(rid, remnant)
                .expect("non-empty remnant spans construct valid slots");
            self.insert(new_slot)
                .expect("freshly minted ids cannot collide");
            remnants.push(new_slot);
        }
        Ok(())
    }

    fn coalesce(&mut self) -> usize {
        use std::collections::HashSet;
        if self.slots.len() < 2 {
            return 0;
        }
        let mut merged_end: HashMap<SlotId, TimePoint> = HashMap::new();
        let mut absorbed: HashSet<SlotId> = HashSet::new();
        for starts in self.node_starts.values() {
            // Per-node slots in start order; same-node disjointness makes
            // "touching" the only adjacency case to consider.
            let mut run: Option<(SlotId, Slot)> = None;
            for &id in starts.values() {
                let slot = *self.get(id).expect("node index is in sync with the list");
                match &mut run {
                    Some((head_id, head))
                        if head.end() == slot.start()
                            && head.price() == slot.price()
                            && head.perf() == slot.perf() =>
                    {
                        absorbed.insert(id);
                        let span = Span::new(head.start(), slot.end())
                            .expect("a merged span outlives both parts");
                        *head = head
                            .with_span(*head_id, span)
                            .expect("merged spans are non-empty");
                        merged_end.insert(*head_id, slot.end());
                    }
                    _ => run = Some((id, slot)),
                }
            }
        }
        if absorbed.is_empty() {
            return 0;
        }
        // Apply in list order: extending an end never changes a slot's
        // (start, id) sort key, so the ordered vector stays sorted.
        self.slots = self
            .slots
            .iter()
            .filter(|s| !absorbed.contains(&s.id()))
            .map(|s| match merged_end.get(&s.id()) {
                Some(&end) => s
                    .with_span(
                        s.id(),
                        Span::new(s.start(), end).expect("merged spans are non-empty"),
                    )
                    .expect("merged spans are non-empty"),
                None => *s,
            })
            .collect();
        self.index.clear();
        self.node_starts.clear();
        for slot in &self.slots {
            self.index.insert(slot.id(), slot.start());
            self.node_starts
                .entry(slot.node())
                .or_default()
                .insert(slot.start(), slot.id());
        }
        absorbed.len()
    }

    fn validate(&self) -> Result<(), CoreError> {
        for pair in self.slots.windows(2) {
            if (pair[0].start(), pair[0].id()) >= (pair[1].start(), pair[1].id()) {
                return Err(CoreError::DuplicateSlotId { id: pair[1].id() });
            }
        }
        if self.index.len() != self.slots.len() {
            return Err(CoreError::DuplicateSlotId {
                id: SlotId::new(self.next_id),
            });
        }
        for slot in &self.slots {
            if self.index.get(&slot.id()) != Some(&slot.start()) {
                return Err(CoreError::SlotNotFound { id: slot.id() });
            }
            if self
                .node_starts
                .get(&slot.node())
                .and_then(|starts| starts.get(&slot.start()))
                != Some(&slot.id())
            {
                return Err(CoreError::SlotNotFound { id: slot.id() });
            }
        }
        if self.node_starts.values().map(BTreeMap::len).sum::<usize>() != self.slots.len() {
            return Err(CoreError::DuplicateSlotId {
                id: SlotId::new(self.next_id),
            });
        }
        let mut per_node: HashMap<_, Vec<&Slot>> = HashMap::new();
        for slot in &self.slots {
            per_node.entry(slot.node()).or_default().push(slot);
        }
        for (node, slots) in per_node {
            for i in 0..slots.len() {
                for j in (i + 1)..slots.len() {
                    if slots[i].span().overlaps(slots[j].span()) {
                        return Err(CoreError::OverlappingSlots {
                            node,
                            first: slots[i].id(),
                            second: slots[j].id(),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::money::Price;
    use crate::perf::Perf;
    use crate::resource::NodeId;

    fn span(a: i64, b: i64) -> Span {
        Span::new(TimePoint::new(a), TimePoint::new(b)).unwrap()
    }

    fn slot(id: u64, node: u32, a: i64, b: i64) -> Slot {
        Slot::new(
            SlotId::new(id),
            NodeId::new(node),
            Perf::UNIT,
            Price::from_credits(2),
            span(a, b),
        )
        .unwrap()
    }

    /// Runs a test body against both representations of the same initial
    /// list, so every semantic assertion below pins flat and interval
    /// behavior at once.
    fn on_both_reprs(slots: Vec<Slot>, body: impl Fn(SlotList)) {
        for repr in [MarketRepr::Flat, MarketRepr::Interval] {
            body(SlotList::from_slots_with_repr(slots.clone(), repr).unwrap());
        }
    }

    #[test]
    fn from_slots_sorts_by_start() {
        on_both_reprs(
            vec![slot(0, 0, 50, 80), slot(1, 1, 10, 40), slot(2, 2, 30, 90)],
            |list| {
                let starts: Vec<i64> = list.iter().map(|s| s.start().ticks()).collect();
                assert_eq!(starts, vec![10, 30, 50]);
            },
        );
    }

    #[test]
    fn from_slots_rejects_duplicate_ids() {
        let err = SlotList::from_slots(vec![slot(3, 0, 0, 10), slot(3, 1, 0, 10)]).unwrap_err();
        assert_eq!(err, CoreError::DuplicateSlotId { id: SlotId::new(3) });
    }

    #[test]
    fn from_slots_rejects_same_node_overlap() {
        let err = SlotList::from_slots(vec![slot(0, 5, 0, 50), slot(1, 5, 40, 90)]).unwrap_err();
        assert!(matches!(err, CoreError::OverlappingSlots { node, .. } if node == NodeId::new(5)));
    }

    #[test]
    fn same_node_touching_slots_are_fine() {
        on_both_reprs(vec![slot(0, 5, 0, 50), slot(1, 5, 50, 90)], |list| {
            assert_eq!(list.len(), 2);
            list.validate().unwrap();
        });
    }

    #[test]
    fn insert_keeps_order_and_rejects_duplicates() {
        on_both_reprs(vec![slot(0, 0, 100, 200)], |mut list| {
            list.insert(slot(10, 1, 50, 80)).unwrap();
            assert_eq!(list.iter().next().unwrap().id(), SlotId::new(10));
            assert_eq!(
                list.insert(slot(10, 2, 0, 10)).unwrap_err(),
                CoreError::DuplicateSlotId {
                    id: SlotId::new(10)
                }
            );
        });
    }

    #[test]
    fn interval_insert_rejects_overlap_structurally() {
        let mut list =
            SlotList::from_slots_with_repr(vec![slot(0, 5, 0, 50)], MarketRepr::Interval).unwrap();
        let err = list.insert(slot(1, 5, 40, 90)).unwrap_err();
        assert_eq!(
            err,
            CoreError::OverlappingSlots {
                node: NodeId::new(5),
                first: SlotId::new(0),
                second: SlotId::new(1),
            }
        );
        list.validate().unwrap();
    }

    #[test]
    fn minted_ids_never_collide_with_inserted() {
        on_both_reprs(vec![slot(41, 0, 0, 10)], |mut list| {
            assert_eq!(list.mint_id(), SlotId::new(42));
            list.insert(slot(100, 1, 0, 10)).unwrap();
            assert_eq!(list.mint_id(), SlotId::new(101));
        });
    }

    #[test]
    fn indexed_get_matches_linear_lookup() {
        // Several slots sharing start times so the lookups have to break
        // ties on id.
        on_both_reprs(
            vec![
                slot(5, 0, 10, 40),
                slot(2, 1, 10, 50),
                slot(9, 2, 10, 30),
                slot(1, 3, 0, 20),
                slot(7, 4, 25, 60),
            ],
            |list| {
                let all: Vec<Slot> = list.iter().copied().collect();
                for expected in &all {
                    let found = list.get(expected.id()).expect("every id resolves");
                    assert_eq!(found, expected);
                    assert!(list.contains(expected.id()));
                }
                assert!(list.get(SlotId::new(1000)).is_none());
                assert!(!list.contains(SlotId::new(1000)));
            },
        );
    }

    #[test]
    fn iter_from_brackets_the_list() {
        on_both_reprs(
            vec![slot(0, 0, 10, 40), slot(1, 1, 10, 50), slot(2, 2, 30, 90)],
            |list| {
                let ids_from = |t: i64| -> Vec<u64> {
                    list.iter_from(TimePoint::new(t))
                        .map(|s| s.id().raw())
                        .collect()
                };
                assert_eq!(ids_from(0), vec![0, 1, 2]);
                assert_eq!(ids_from(10), vec![0, 1, 2]);
                assert_eq!(ids_from(11), vec![2]);
                assert_eq!(ids_from(31), Vec::<u64>::new());
            },
        );
    }

    #[test]
    fn subtract_interior_produces_two_remnants() {
        on_both_reprs(vec![slot(0, 0, 0, 100)], |mut list| {
            list.subtract(SlotId::new(0), span(30, 60)).unwrap();
            assert_eq!(list.len(), 2);
            let spans: Vec<Span> = list.iter().map(|s| s.span()).collect();
            assert_eq!(spans, vec![span(0, 30), span(60, 100)]);
            list.validate().unwrap();
        });
    }

    #[test]
    fn subtract_prefix_keeps_right_remnant_only() {
        on_both_reprs(vec![slot(0, 0, 0, 100)], |mut list| {
            list.subtract(SlotId::new(0), span(0, 100)).unwrap();
            assert!(list.is_empty());
        });
    }

    #[test]
    fn subtract_missing_slot_errors() {
        for repr in [MarketRepr::Flat, MarketRepr::Interval] {
            let mut list = SlotList::new_with_repr(repr);
            assert_eq!(
                list.subtract(SlotId::new(1), span(0, 10)).unwrap_err(),
                CoreError::SlotNotFound { id: SlotId::new(1) }
            );
        }
    }

    #[test]
    fn subtract_outside_cut_errors() {
        on_both_reprs(vec![slot(0, 0, 10, 20)], |mut list| {
            let err = list.subtract(SlotId::new(0), span(15, 30)).unwrap_err();
            assert!(matches!(err, CoreError::CutOutsideSlot { .. }));
            // List unchanged.
            assert_eq!(list.len(), 1);
            assert_eq!(list.iter().next().unwrap().span(), span(10, 20));
        });
    }

    #[test]
    fn subtract_window_is_atomic_on_error() {
        use crate::window::{Window, WindowSlot};
        let a = slot(0, 0, 0, 100);
        let b = slot(1, 1, 0, 10); // too short for the cut below
        on_both_reprs(vec![a, b], |mut list| {
            let w = Window::new(
                TimePoint::new(0),
                vec![
                    WindowSlot::from_slot(&a, TimeDelta::new(50)).unwrap(),
                    WindowSlot::from_slot(&b, TimeDelta::new(50)).unwrap(),
                ],
            )
            .unwrap();
            let err = list.subtract_window(&w).unwrap_err();
            assert!(matches!(err, CoreError::CutOutsideSlot { .. }));
            // Nothing was subtracted, including from slot `a`.
            assert_eq!(list.len(), 2);
            assert_eq!(list.get(SlotId::new(0)).unwrap().span(), span(0, 100));
        });
    }

    #[test]
    fn subtract_window_removes_all_members() {
        use crate::window::{Window, WindowSlot};
        let a = slot(0, 0, 0, 100);
        let b = slot(1, 1, 0, 100);
        on_both_reprs(vec![a, b], |mut list| {
            let w = Window::new(
                TimePoint::new(0),
                vec![
                    WindowSlot::from_slot(&a, TimeDelta::new(40)).unwrap(),
                    WindowSlot::from_slot(&b, TimeDelta::new(40)).unwrap(),
                ],
            )
            .unwrap();
            list.subtract_window(&w).unwrap();
            assert_eq!(list.len(), 2);
            for s in list.iter() {
                assert_eq!(s.span(), span(40, 100));
            }
            list.validate().unwrap();
        });
    }

    #[test]
    fn subtraction_report_lists_consumed_and_minted() {
        use crate::window::{Window, WindowSlot};
        let a = slot(0, 0, 0, 100);
        let b = slot(1, 1, 20, 120);
        on_both_reprs(vec![a, b], |mut list| {
            let w = Window::new(
                TimePoint::new(20),
                vec![
                    WindowSlot::from_slot(&a, TimeDelta::new(40)).unwrap(),
                    WindowSlot::from_slot(&b, TimeDelta::new(40)).unwrap(),
                ],
            )
            .unwrap();
            let report = list.subtract_window_report(&w).unwrap();
            assert_eq!(report.removed, vec![SlotId::new(0), SlotId::new(1)]);
            // a → [0, 20) and [60, 100); b → [60, 120).
            assert_eq!(report.remnants.len(), 3);
            for remnant in &report.remnants {
                assert_eq!(list.get(remnant.id()), Some(remnant));
            }
            list.validate().unwrap();
        });
    }

    #[test]
    fn totals_and_earliest() {
        on_both_reprs(vec![slot(0, 0, 10, 40), slot(1, 1, 5, 25)], |list| {
            assert_eq!(list.earliest_start(), Some(TimePoint::new(5)));
            assert_eq!(list.total_vacant_time(), TimeDelta::new(50));
        });
        assert!(SlotList::new().earliest_start().is_none());
    }

    #[test]
    fn from_sorted_slots_matches_from_slots() {
        let slots = vec![
            slot(1, 3, 0, 20),
            slot(5, 0, 10, 40),
            slot(9, 2, 10, 30),
            slot(7, 4, 25, 60),
        ];
        for repr in [MarketRepr::Flat, MarketRepr::Interval] {
            let sorted = SlotList::from_sorted_slots_with_repr(slots.clone(), repr).unwrap();
            let general = SlotList::from_slots(slots.clone()).unwrap();
            assert_eq!(sorted, general);
            sorted.validate().unwrap();
            assert_eq!(sorted.next_id(), general.next_id());
        }
    }

    #[test]
    fn from_sorted_slots_rejects_unsorted_input() {
        for repr in [MarketRepr::Flat, MarketRepr::Interval] {
            // Out of start order.
            let err = SlotList::from_sorted_slots_with_repr(
                vec![slot(0, 0, 10, 20), slot(1, 1, 0, 5)],
                repr,
            )
            .unwrap_err();
            assert_eq!(err, CoreError::UnsortedSlots { index: 1 });
            // Equal starts must come in increasing id order.
            let err = SlotList::from_sorted_slots_with_repr(
                vec![slot(4, 0, 10, 20), slot(2, 1, 10, 20)],
                repr,
            )
            .unwrap_err();
            assert_eq!(err, CoreError::UnsortedSlots { index: 1 });
        }
    }

    #[test]
    fn from_sorted_slots_rejects_same_node_overlap() {
        // The long first slot still overlaps the third even though the
        // second ends earlier — the running bound must track the max end.
        for repr in [MarketRepr::Flat, MarketRepr::Interval] {
            let err = SlotList::from_sorted_slots_with_repr(
                vec![slot(0, 5, 0, 100), slot(1, 6, 10, 20), slot(2, 5, 30, 40)],
                repr,
            )
            .unwrap_err();
            assert_eq!(
                err,
                CoreError::OverlappingSlots {
                    node: NodeId::new(5),
                    first: SlotId::new(0),
                    second: SlotId::new(2),
                }
            );
        }
    }

    #[test]
    fn from_sorted_slots_rejects_duplicate_ids() {
        for repr in [MarketRepr::Flat, MarketRepr::Interval] {
            let err = SlotList::from_sorted_slots_with_repr(
                vec![slot(3, 0, 0, 10), slot(3, 1, 5, 15)],
                repr,
            )
            .unwrap_err();
            assert_eq!(err, CoreError::DuplicateSlotId { id: SlotId::new(3) });
        }
    }

    #[test]
    fn covering_slot_finds_the_unique_container() {
        on_both_reprs(
            vec![slot(0, 0, 0, 50), slot(1, 0, 60, 100), slot(2, 1, 0, 100)],
            |list| {
                let region = span(70, 90);
                assert_eq!(
                    list.covering_slot(NodeId::new(0), region).map(Slot::id),
                    Some(SlotId::new(1))
                );
                // A region straddling the gap is covered by nothing.
                assert!(list.covering_slot(NodeId::new(0), span(40, 70)).is_none());
                // Other nodes see their own slots only.
                assert_eq!(
                    list.covering_slot(NodeId::new(1), region).map(Slot::id),
                    Some(SlotId::new(2))
                );
                assert!(list.covering_slot(NodeId::new(9), region).is_none());
            },
        );
    }

    #[test]
    fn covering_slot_tracks_subtraction() {
        on_both_reprs(vec![slot(0, 0, 0, 100)], |mut list| {
            list.subtract(SlotId::new(0), span(40, 60)).unwrap();
            assert!(list.covering_slot(NodeId::new(0), span(45, 55)).is_none());
            let left = list.covering_slot(NodeId::new(0), span(10, 30)).unwrap();
            assert_eq!(left.span(), span(0, 40));
            let right = list.covering_slot(NodeId::new(0), span(70, 90)).unwrap();
            assert_eq!(right.span(), span(60, 100));
        });
    }

    #[test]
    fn remove_region_carves_every_overlapping_slot() {
        on_both_reprs(
            vec![
                slot(0, 0, 0, 30),
                slot(1, 0, 40, 70),
                slot(2, 0, 80, 120),
                slot(3, 1, 0, 120), // other node, untouched
            ],
            |mut list| {
                let affected = list.remove_region(NodeId::new(0), span(20, 90));
                assert_eq!(
                    affected,
                    vec![SlotId::new(0), SlotId::new(1), SlotId::new(2)]
                );
                list.validate().unwrap();
                let node0: Vec<Span> = list
                    .iter()
                    .filter(|s| s.node() == NodeId::new(0))
                    .map(|s| s.span())
                    .collect();
                assert_eq!(node0, vec![span(0, 20), span(90, 120)]);
                assert_eq!(list.get(SlotId::new(3)).unwrap().span(), span(0, 120));
            },
        );
    }

    #[test]
    fn remove_region_misses_cleanly() {
        on_both_reprs(vec![slot(0, 0, 0, 30)], |mut list| {
            assert!(list.remove_region(NodeId::new(0), span(30, 50)).is_empty());
            assert!(list.remove_region(NodeId::new(7), span(0, 50)).is_empty());
            assert_eq!(list.len(), 1);
        });
    }

    #[test]
    fn coalesce_merges_touching_same_attribute_runs() {
        on_both_reprs(
            vec![
                slot(0, 0, 0, 30),
                slot(1, 0, 30, 60),
                slot(2, 0, 60, 100),
                slot(3, 1, 0, 50), // other node: left alone
            ],
            |mut list| {
                let before = list.total_vacant_time();
                assert_eq!(list.coalesce(), 2);
                list.validate().unwrap();
                assert_eq!(list.len(), 2);
                // The run head keeps its id and absorbs the whole run.
                let merged = list.get(SlotId::new(0)).unwrap();
                assert_eq!(merged.span(), span(0, 100));
                assert_eq!(list.total_vacant_time(), before);
                assert!(list.get(SlotId::new(1)).is_none());
                assert!(list.get(SlotId::new(2)).is_none());
                assert_eq!(list.get(SlotId::new(3)).unwrap().span(), span(0, 50));
                // Idempotent: a second pass finds nothing.
                assert_eq!(list.coalesce(), 0);
            },
        );
    }

    #[test]
    fn coalesce_respects_gaps_and_attribute_changes() {
        let cheap = slot(0, 0, 0, 30);
        let pricey = Slot::new(
            SlotId::new(1),
            NodeId::new(0),
            Perf::UNIT,
            Price::from_credits(9),
            span(30, 60),
        )
        .unwrap();
        let fast = Slot::new(
            SlotId::new(2),
            NodeId::new(0),
            Perf::from_f64(2.0),
            Price::from_credits(2),
            span(60, 90),
        )
        .unwrap();
        let gapped = slot(3, 0, 95, 120);
        on_both_reprs(vec![cheap, pricey, fast, gapped], |mut list| {
            assert_eq!(list.coalesce(), 0);
            assert_eq!(list.len(), 4);
            list.validate().unwrap();
        });
    }

    #[test]
    fn coalesce_never_reuses_retired_ids() {
        on_both_reprs(vec![slot(0, 0, 0, 30), slot(1, 0, 30, 60)], |mut list| {
            assert_eq!(list.coalesce(), 1);
            // Id 1 is retired, not recycled: fresh mints start past it.
            assert_eq!(list.mint_id(), SlotId::new(2));
        });
    }

    #[test]
    fn iteration_conveniences() {
        on_both_reprs(vec![slot(0, 0, 10, 40)], |list| {
            assert_eq!((&list).into_iter().count(), 1);
            assert_eq!(list.clone().into_iter().count(), 1);
            assert!(format!("{list}").contains("1 slots"));
        });
    }

    #[test]
    fn repr_conversion_round_trips_and_compares_equal() {
        let slots = vec![
            slot(1, 3, 0, 20),
            slot(5, 0, 10, 40),
            slot(9, 2, 10, 30),
            slot(7, 0, 55, 60),
        ];
        let mut flat = SlotList::from_slots(slots).unwrap();
        flat.mint_id(); // push next_id past max(id)+1
        let interval = flat.clone().with_repr(MarketRepr::Interval);
        assert_eq!(interval.repr(), MarketRepr::Interval);
        interval.validate().unwrap();
        assert_eq!(flat, interval, "conversion preserves observable state");
        let back = interval.clone().with_repr(MarketRepr::Flat);
        back.validate().unwrap();
        assert_eq!(back, flat);
        assert_eq!(back.next_id(), flat.next_id(), "minting cursor preserved");
        // Same-repr conversion is the identity.
        assert_eq!(flat.clone().with_repr(MarketRepr::Flat), flat);
    }

    #[test]
    fn serde_round_trips_both_reprs() {
        let slots = vec![slot(0, 0, 0, 30), slot(1, 1, 10, 60), slot(2, 0, 40, 90)];
        for repr in [MarketRepr::Flat, MarketRepr::Interval] {
            let list = SlotList::from_slots_with_repr(slots.clone(), repr).unwrap();
            let value = list.to_value();
            let back = SlotList::from_value(&value).unwrap();
            assert_eq!(back.repr(), repr, "repr survives the wire");
            assert_eq!(back, list);
            back.validate().unwrap();
        }
    }

    #[test]
    fn serde_flat_wire_format_is_unchanged() {
        // The flat payload must stay exactly `{slots, next_id}` so persist
        // format v1 snapshots keep decoding.
        let list = SlotList::from_slots(vec![slot(0, 0, 0, 30)]).unwrap();
        let value = list.to_value();
        let keys: Vec<&str> = value
            .as_map()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["slots", "next_id"]);
    }

    #[test]
    fn serde_rejects_corrupt_interval_payload() {
        let list = SlotList::from_slots_with_repr(
            vec![slot(0, 0, 0, 30), slot(1, 0, 30, 60)],
            MarketRepr::Interval,
        )
        .unwrap();
        let serde::Value::Map(mut fields) = list.to_value() else {
            panic!("interval form serializes as a map");
        };
        // Tamper: claim an unknown repr tag.
        for (k, v) in &mut fields {
            if k == "repr" {
                *v = serde::Value::Str("hyperbolic".to_string());
            }
        }
        assert!(SlotList::from_value(&serde::Value::Map(fields)).is_err());
    }
}
