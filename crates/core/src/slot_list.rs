//! The ordered vacant-slot list and the slot-subtraction operation.
//!
//! Local resource managers publish vacant slots; the metascheduler keeps
//! them in a list ordered by non-decreasing start time (Fig. 1 (a) of the
//! paper). When a window is committed for a job, the used intervals are
//! *subtracted* from the list (Fig. 1 (b)): each source slot `K` is removed
//! and replaced by the remnants `K1 = [K.start, K'.start)` and
//! `K2 = [K'.end, K.end)`, dropping zero-length pieces.
//!
//! The list carries an id index (`SlotId → start time`) so lookups and
//! subtractions locate their slot with a hash probe plus a binary search on
//! `(start, id)` instead of a linear scan — `O(log m)` per operation, which
//! the incremental alternatives search in `ecosched-select` relies on.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::resource::NodeId;
use crate::slot::{Slot, SlotId};
use crate::time::{Span, TimeDelta, TimePoint};
use crate::window::Window;

/// A list of vacant slots ordered by `(start time, slot id)`.
///
/// # Examples
///
/// ```
/// use ecosched_core::{NodeId, Perf, Price, Slot, SlotId, SlotList, Span, TimePoint};
///
/// let mut list = SlotList::new();
/// let span = Span::new(TimePoint::new(0), TimePoint::new(100)).unwrap();
/// let id = list.mint_id();
/// list.insert(Slot::new(id, NodeId::new(0), Perf::UNIT, Price::from_credits(2), span)?)?;
/// assert_eq!(list.len(), 1);
/// # Ok::<(), ecosched_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct SlotList {
    slots: Vec<Slot>,
    next_id: u64,
    /// Start time of each live slot, keyed by id: turns `get`/`subtract`
    /// into a hash probe + binary search on the ordered vector.
    index: HashMap<SlotId, TimePoint>,
    /// Per-node view `start → id`. Same-node slots are disjoint, so the
    /// start uniquely keys a slot within its node; this turns region
    /// queries ([`SlotList::covering_slot`], [`SlotList::remove_region`])
    /// into `O(log m)` range lookups instead of full scans.
    node_starts: HashMap<NodeId, BTreeMap<TimePoint, SlotId>>,
}

/// What one [`SlotList::subtract_window_report`] call did to the list:
/// which slots were consumed and which remnants replaced them.
///
/// The incremental alternatives search uses this to update per-job scan
/// state without re-reading the whole list.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SubtractionReport {
    /// Ids removed from the list (the window's source slots).
    pub removed: Vec<SlotId>,
    /// Freshly minted remnant slots inserted in their place.
    pub remnants: Vec<Slot>,
}

impl SlotList {
    /// Creates an empty slot list.
    #[must_use]
    pub fn new() -> Self {
        SlotList::default()
    }

    /// Builds a list from arbitrary slots, sorting them by start time.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DuplicateSlotId`] if two slots share an id, or
    /// [`CoreError::OverlappingSlots`] if two slots on the same node
    /// overlap in time.
    pub fn from_slots(slots: Vec<Slot>) -> Result<Self, CoreError> {
        let mut list = SlotList {
            next_id: slots.iter().map(|s| s.id().raw() + 1).max().unwrap_or(0),
            index: HashMap::with_capacity(slots.len()),
            node_starts: HashMap::new(),
            slots,
        };
        list.slots.sort_by_key(|s| (s.start(), s.id()));
        for slot in &list.slots {
            if list.index.insert(slot.id(), slot.start()).is_some() {
                return Err(CoreError::DuplicateSlotId { id: slot.id() });
            }
            list.node_starts
                .entry(slot.node())
                .or_default()
                .insert(slot.start(), slot.id());
        }
        list.validate()?;
        Ok(list)
    }

    /// Builds a list from slots already in strictly increasing `(start,
    /// id)` order — the ROADMAP bulk-load path. One pass, `O(m)`: order,
    /// id uniqueness, and same-node disjointness are all checked as the
    /// slots stream in, with no sort and no quadratic overlap scan.
    ///
    /// # Errors
    ///
    /// * [`CoreError::UnsortedSlots`] if a slot is not strictly after its
    ///   predecessor in `(start, id)` order (this also rejects duplicate
    ///   ids at equal starts);
    /// * [`CoreError::DuplicateSlotId`] if an id repeats across different
    ///   start times;
    /// * [`CoreError::OverlappingSlots`] if two slots on one node overlap.
    ///
    /// # Examples
    ///
    /// ```
    /// use ecosched_core::{NodeId, Perf, Price, Slot, SlotId, SlotList, Span, TimePoint};
    ///
    /// let mk = |id: u64, a: i64, b: i64| Slot::new(
    ///     SlotId::new(id), NodeId::new(id as u32), Perf::UNIT,
    ///     Price::from_credits(2),
    ///     Span::new(TimePoint::new(a), TimePoint::new(b)).unwrap(),
    /// ).unwrap();
    /// let list = SlotList::from_sorted_slots(vec![mk(0, 0, 50), mk(1, 0, 60)]).unwrap();
    /// assert_eq!(list.len(), 2);
    /// assert!(SlotList::from_sorted_slots(vec![mk(0, 10, 50), mk(1, 0, 60)]).is_err());
    /// ```
    pub fn from_sorted_slots(slots: Vec<Slot>) -> Result<Self, CoreError> {
        let mut index = HashMap::with_capacity(slots.len());
        let mut node_starts: HashMap<NodeId, BTreeMap<TimePoint, SlotId>> = HashMap::new();
        // Running max vacant end per node: starts are non-decreasing, so a
        // new slot overlaps an earlier same-node slot iff it starts before
        // the furthest end seen on that node.
        let mut node_ends: HashMap<NodeId, (TimePoint, SlotId)> = HashMap::new();
        let mut next_id = 0u64;
        for (i, slot) in slots.iter().enumerate() {
            if i > 0 {
                let prev = &slots[i - 1];
                if (prev.start(), prev.id()) >= (slot.start(), slot.id()) {
                    return Err(CoreError::UnsortedSlots { index: i });
                }
            }
            if index.insert(slot.id(), slot.start()).is_some() {
                return Err(CoreError::DuplicateSlotId { id: slot.id() });
            }
            match node_ends.get_mut(&slot.node()) {
                Some((end, first)) => {
                    if slot.start() < *end {
                        return Err(CoreError::OverlappingSlots {
                            node: slot.node(),
                            first: *first,
                            second: slot.id(),
                        });
                    }
                    if slot.end() > *end {
                        *end = slot.end();
                        *first = slot.id();
                    }
                }
                None => {
                    node_ends.insert(slot.node(), (slot.end(), slot.id()));
                }
            }
            node_starts
                .entry(slot.node())
                .or_default()
                .insert(slot.start(), slot.id());
            next_id = next_id.max(slot.id().raw() + 1);
        }
        Ok(SlotList {
            slots,
            next_id,
            index,
            node_starts,
        })
    }

    /// Mints a fresh slot id, unique within this list.
    pub fn mint_id(&mut self) -> SlotId {
        let id = SlotId::new(self.next_id);
        self.next_id += 1;
        id
    }

    /// Inserts a slot, keeping the ordering invariant.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DuplicateSlotId`] if the id is already present.
    /// Overlap against existing same-node slots is checked in debug builds.
    pub fn insert(&mut self, slot: Slot) -> Result<(), CoreError> {
        if self.index.contains_key(&slot.id()) {
            return Err(CoreError::DuplicateSlotId { id: slot.id() });
        }
        debug_assert!(
            self.slots
                .iter()
                .all(|s| s.node() != slot.node() || !s.span().overlaps(slot.span())),
            "inserted slot overlaps an existing slot on the same node"
        );
        self.next_id = self.next_id.max(slot.id().raw() + 1);
        let pos = self
            .slots
            .partition_point(|s| (s.start(), s.id()) < (slot.start(), slot.id()));
        self.index.insert(slot.id(), slot.start());
        self.node_starts
            .entry(slot.node())
            .or_default()
            .insert(slot.start(), slot.id());
        self.slots.insert(pos, slot);
        Ok(())
    }

    /// Number of slots in the list.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` if the list has no slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Iterates the slots in start-time order.
    pub fn iter(&self) -> std::slice::Iter<'_, Slot> {
        self.slots.iter()
    }

    /// The slots in start-time order.
    #[must_use]
    pub fn as_slice(&self) -> &[Slot] {
        &self.slots
    }

    /// Position of slot `id` in the ordered vector: a hash probe for its
    /// start time, then a binary search on `(start, id)`.
    fn position(&self, id: SlotId) -> Option<usize> {
        let start = *self.index.get(&id)?;
        let pos = self
            .slots
            .partition_point(|s| (s.start(), s.id()) < (start, id));
        debug_assert!(
            self.slots.get(pos).is_some_and(|s| s.id() == id),
            "index start time out of sync with the ordered vector"
        );
        Some(pos)
    }

    /// Looks up a slot by id in `O(log m)` via the id index.
    ///
    /// # Examples
    ///
    /// ```
    /// use ecosched_core::{NodeId, Perf, Price, Slot, SlotId, SlotList, Span, TimePoint};
    ///
    /// let span = Span::new(TimePoint::new(0), TimePoint::new(100)).unwrap();
    /// let slot = Slot::new(SlotId::new(7), NodeId::new(0), Perf::UNIT,
    ///                      Price::from_credits(2), span).unwrap();
    /// let list = SlotList::from_slots(vec![slot]).unwrap();
    /// assert_eq!(list.get(SlotId::new(7)).unwrap().start(), TimePoint::new(0));
    /// assert!(list.get(SlotId::new(8)).is_none());
    /// ```
    #[must_use]
    pub fn get(&self, id: SlotId) -> Option<&Slot> {
        self.position(id).map(|pos| &self.slots[pos])
    }

    /// Returns `true` if slot `id` is currently in the list (`O(1)`).
    #[must_use]
    pub fn contains(&self, id: SlotId) -> bool {
        self.index.contains_key(&id)
    }

    /// Index of the first slot with `start >= from` in the ordered vector
    /// (`O(log m)`). Everything before it starts earlier than `from`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ecosched_core::{NodeId, Perf, Price, Slot, SlotId, SlotList, Span, TimePoint};
    ///
    /// let mk = |id: u64, a: i64, b: i64| Slot::new(
    ///     SlotId::new(id), NodeId::new(id as u32), Perf::UNIT,
    ///     Price::from_credits(2),
    ///     Span::new(TimePoint::new(a), TimePoint::new(b)).unwrap(),
    /// ).unwrap();
    /// let list = SlotList::from_slots(vec![mk(0, 0, 50), mk(1, 20, 60)]).unwrap();
    /// assert_eq!(list.first_at_or_after(TimePoint::new(10)), 1);
    /// assert_eq!(list.first_at_or_after(TimePoint::new(100)), 2);
    /// ```
    #[must_use]
    pub fn first_at_or_after(&self, from: TimePoint) -> usize {
        self.slots.partition_point(|s| s.start() < from)
    }

    /// The earliest vacant start across the list, if any.
    #[must_use]
    pub fn earliest_start(&self) -> Option<TimePoint> {
        self.slots.first().map(Slot::start)
    }

    /// Sum of all vacant span lengths.
    #[must_use]
    pub fn total_vacant_time(&self) -> TimeDelta {
        self.slots.iter().map(Slot::length).sum()
    }

    /// The slot on `node` whose vacant span fully contains `region`, if
    /// one exists — `O(log m)` via the per-node start index.
    ///
    /// Same-node slots are disjoint, so at most one slot can cover the
    /// region: the last one starting at or before `region.start()`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ecosched_core::{NodeId, Perf, Price, Slot, SlotId, SlotList, Span, TimePoint};
    ///
    /// let span = Span::new(TimePoint::new(10), TimePoint::new(90)).unwrap();
    /// let slot = Slot::new(SlotId::new(0), NodeId::new(3), Perf::UNIT,
    ///                      Price::from_credits(2), span).unwrap();
    /// let list = SlotList::from_slots(vec![slot]).unwrap();
    /// let region = Span::new(TimePoint::new(20), TimePoint::new(50)).unwrap();
    /// assert!(list.covering_slot(NodeId::new(3), region).is_some());
    /// assert!(list.covering_slot(NodeId::new(4), region).is_none());
    /// ```
    #[must_use]
    pub fn covering_slot(&self, node: NodeId, region: Span) -> Option<&Slot> {
        let starts = self.node_starts.get(&node)?;
        let (_, &id) = starts.range(..=region.start()).next_back()?;
        let slot = self.get(id)?;
        slot.span().contains_span(region).then_some(slot)
    }

    /// Withdraws `region` from every slot on `node` it overlaps — the
    /// revocation primitive: an owner reclaiming `[a, b)` on a node carves
    /// that interval out of whatever vacancy remains there, minting
    /// remnants for the surviving pieces. Returns the ids of the affected
    /// slots. `O((k + 1) log m)` for `k` affected slots.
    pub fn remove_region(&mut self, node: NodeId, region: Span) -> Vec<SlotId> {
        let mut candidates: Vec<SlotId> = Vec::new();
        if let Some(starts) = self.node_starts.get(&node) {
            // The predecessor of the region start may reach into it; every
            // slot starting inside the region overlaps it (spans are
            // non-empty).
            if let Some((_, &id)) = starts.range(..region.start()).next_back() {
                candidates.push(id);
            }
            candidates.extend(
                starts
                    .range(region.start()..region.end())
                    .map(|(_, &id)| id),
            );
        }
        let mut affected = Vec::new();
        for id in candidates {
            let slot = *self.get(id).expect("node index is in sync with the list");
            if let Some(cut) = slot.span().intersect(region) {
                self.subtract(id, cut)
                    .expect("the intersection lies inside the slot");
                affected.push(id);
            }
        }
        affected
    }

    /// Removes the interval `cut` from the slot `id`, inserting remnants in
    /// order (Fig. 1 (b)). Locating the slot is `O(log m)` via the index.
    ///
    /// # Errors
    ///
    /// * [`CoreError::SlotNotFound`] if `id` is not in the list;
    /// * [`CoreError::CutOutsideSlot`] if `cut` is not fully contained in
    ///   the slot's vacant span.
    pub fn subtract(&mut self, id: SlotId, cut: Span) -> Result<(), CoreError> {
        self.subtract_collect(id, cut, &mut Vec::new())
    }

    /// [`SlotList::subtract`], appending minted remnants to `remnants`.
    fn subtract_collect(
        &mut self,
        id: SlotId,
        cut: Span,
        remnants: &mut Vec<Slot>,
    ) -> Result<(), CoreError> {
        let pos = self.position(id).ok_or(CoreError::SlotNotFound { id })?;
        let slot = self.slots[pos];
        if !slot.span().contains_span(cut) {
            return Err(CoreError::CutOutsideSlot {
                id,
                slot_span: slot.span(),
                cut,
            });
        }
        self.slots.remove(pos);
        self.index.remove(&id);
        if let Some(starts) = self.node_starts.get_mut(&slot.node()) {
            starts.remove(&slot.start());
            if starts.is_empty() {
                self.node_starts.remove(&slot.node());
            }
        }
        let (left, right) = slot.span().subtract(cut);
        for remnant in [left, right].into_iter().flatten() {
            let rid = self.mint_id();
            let new_slot = slot
                .with_span(rid, remnant)
                .expect("non-empty remnant spans construct valid slots");
            self.insert(new_slot)
                .expect("freshly minted ids cannot collide");
            remnants.push(new_slot);
        }
        Ok(())
    }

    /// Subtracts every member of a committed window from the list.
    ///
    /// This is all-or-nothing: on error the list is left unchanged.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::SlotNotFound`] / [`CoreError::CutOutsideSlot`]
    /// from [`SlotList::subtract`].
    pub fn subtract_window(&mut self, window: &Window) -> Result<(), CoreError> {
        self.subtract_window_report(window).map(drop)
    }

    /// [`SlotList::subtract_window`], additionally reporting the consumed
    /// ids and the minted remnants.
    ///
    /// Validation and mutation share one indexed pass over the window's
    /// cuts: each cut is checked with an `O(log m)` lookup, and only when
    /// all pass does the mutation run, so a failure cannot leave a partial
    /// subtraction.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::SlotNotFound`] / [`CoreError::CutOutsideSlot`]
    /// from [`SlotList::subtract`].
    pub fn subtract_window_report(
        &mut self,
        window: &Window,
    ) -> Result<SubtractionReport, CoreError> {
        // Indexed validation: O(k log m) total, no list mutation yet.
        for (id, cut) in window.cuts() {
            let slot = self.get(id).ok_or(CoreError::SlotNotFound { id })?;
            if !slot.span().contains_span(cut) {
                return Err(CoreError::CutOutsideSlot {
                    id,
                    slot_span: slot.span(),
                    cut,
                });
            }
        }
        let mut report = SubtractionReport::default();
        for (id, cut) in window.cuts() {
            self.subtract_collect(id, cut, &mut report.remnants)
                .expect("cuts validated before mutation");
            report.removed.push(id);
        }
        Ok(report)
    }

    /// Merges every run of same-node slots that touch (`prev.end ==
    /// next.start`) and agree on price and performance into one slot
    /// carrying the run head's id — the defragmentation pass for lists
    /// shredded by window release/re-release cycles. Returns the number of
    /// slots absorbed into a neighbour.
    ///
    /// Ids of absorbed slots are retired (never reused: `next_id` is
    /// untouched), surviving slots keep their ids and `(start, id)` order,
    /// and the union of vacant `(node, time)` capacity is exactly
    /// preserved — only the partitioning changes.
    pub fn coalesce(&mut self) -> usize {
        use std::collections::HashSet;
        if self.slots.len() < 2 {
            return 0;
        }
        let mut merged_end: HashMap<SlotId, TimePoint> = HashMap::new();
        let mut absorbed: HashSet<SlotId> = HashSet::new();
        for starts in self.node_starts.values() {
            // Per-node slots in start order; same-node disjointness makes
            // "touching" the only adjacency case to consider.
            let mut run: Option<(SlotId, Slot)> = None;
            for &id in starts.values() {
                let slot = *self.get(id).expect("node index is in sync with the list");
                match &mut run {
                    Some((head_id, head))
                        if head.end() == slot.start()
                            && head.price() == slot.price()
                            && head.perf() == slot.perf() =>
                    {
                        absorbed.insert(id);
                        let span = Span::new(head.start(), slot.end())
                            .expect("a merged span outlives both parts");
                        *head = head
                            .with_span(*head_id, span)
                            .expect("merged spans are non-empty");
                        merged_end.insert(*head_id, slot.end());
                    }
                    _ => run = Some((id, slot)),
                }
            }
        }
        if absorbed.is_empty() {
            return 0;
        }
        // Apply in list order: extending an end never changes a slot's
        // (start, id) sort key, so the ordered vector stays sorted.
        self.slots = self
            .slots
            .iter()
            .filter(|s| !absorbed.contains(&s.id()))
            .map(|s| match merged_end.get(&s.id()) {
                Some(&end) => s
                    .with_span(
                        s.id(),
                        Span::new(s.start(), end).expect("merged spans are non-empty"),
                    )
                    .expect("merged spans are non-empty"),
                None => *s,
            })
            .collect();
        self.index.clear();
        self.node_starts.clear();
        for slot in &self.slots {
            self.index.insert(slot.id(), slot.start());
            self.node_starts
                .entry(slot.node())
                .or_default()
                .insert(slot.start(), slot.id());
        }
        absorbed.len()
    }

    /// Checks every structural invariant of the list, including that the id
    /// index matches the ordered vector. Cheap enough for tests; not called
    /// on hot paths.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`CoreError`].
    pub fn validate(&self) -> Result<(), CoreError> {
        for pair in self.slots.windows(2) {
            if (pair[0].start(), pair[0].id()) >= (pair[1].start(), pair[1].id()) {
                return Err(CoreError::DuplicateSlotId { id: pair[1].id() });
            }
        }
        if self.index.len() != self.slots.len() {
            return Err(CoreError::DuplicateSlotId {
                id: SlotId::new(self.next_id),
            });
        }
        for slot in &self.slots {
            if self.index.get(&slot.id()) != Some(&slot.start()) {
                return Err(CoreError::SlotNotFound { id: slot.id() });
            }
            if self
                .node_starts
                .get(&slot.node())
                .and_then(|starts| starts.get(&slot.start()))
                != Some(&slot.id())
            {
                return Err(CoreError::SlotNotFound { id: slot.id() });
            }
        }
        if self.node_starts.values().map(BTreeMap::len).sum::<usize>() != self.slots.len() {
            return Err(CoreError::DuplicateSlotId {
                id: SlotId::new(self.next_id),
            });
        }
        let mut per_node: HashMap<_, Vec<&Slot>> = HashMap::new();
        for slot in &self.slots {
            per_node.entry(slot.node()).or_default().push(slot);
        }
        for (node, slots) in per_node {
            for i in 0..slots.len() {
                for j in (i + 1)..slots.len() {
                    if slots[i].span().overlaps(slots[j].span()) {
                        return Err(CoreError::OverlappingSlots {
                            node,
                            first: slots[i].id(),
                            second: slots[j].id(),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

impl PartialEq for SlotList {
    fn eq(&self, other: &Self) -> bool {
        // The index is a function of `slots`; comparing it would be
        // redundant work.
        self.slots == other.slots && self.next_id == other.next_id
    }
}

impl Eq for SlotList {}

// Manual serde keeps the wire format of the pre-index list (`slots` +
// `next_id`); the index is rebuilt on deserialization.
impl Serialize for SlotList {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("slots".to_string(), self.slots.to_value()),
            ("next_id".to_string(), self.next_id.to_value()),
        ])
    }
}

impl<'de> Deserialize<'de> for SlotList {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let slots = Vec::<Slot>::from_value(serde::get_field(value, "slots")?)?;
        let next_id = u64::from_value(serde::get_field(value, "next_id")?)?;
        let mut index = HashMap::with_capacity(slots.len());
        let mut node_starts: HashMap<NodeId, BTreeMap<TimePoint, SlotId>> = HashMap::new();
        for slot in &slots {
            if index.insert(slot.id(), slot.start()).is_some() {
                return Err(serde::Error::custom(format!(
                    "duplicate slot id {} in serialized slot list",
                    slot.id()
                )));
            }
            node_starts
                .entry(slot.node())
                .or_default()
                .insert(slot.start(), slot.id());
        }
        Ok(SlotList {
            slots,
            next_id,
            index,
            node_starts,
        })
    }
}

impl IntoIterator for SlotList {
    type Item = Slot;
    type IntoIter = std::vec::IntoIter<Slot>;
    fn into_iter(self) -> Self::IntoIter {
        self.slots.into_iter()
    }
}

impl<'a> IntoIterator for &'a SlotList {
    type Item = &'a Slot;
    type IntoIter = std::slice::Iter<'a, Slot>;
    fn into_iter(self) -> Self::IntoIter {
        self.slots.iter()
    }
}

impl fmt::Display for SlotList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "slot list ({} slots):", self.len())?;
        for slot in &self.slots {
            writeln!(f, "  {slot}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::money::Price;
    use crate::perf::Perf;
    use crate::resource::NodeId;

    fn span(a: i64, b: i64) -> Span {
        Span::new(TimePoint::new(a), TimePoint::new(b)).unwrap()
    }

    fn slot(id: u64, node: u32, a: i64, b: i64) -> Slot {
        Slot::new(
            SlotId::new(id),
            NodeId::new(node),
            Perf::UNIT,
            Price::from_credits(2),
            span(a, b),
        )
        .unwrap()
    }

    #[test]
    fn from_slots_sorts_by_start() {
        let list = SlotList::from_slots(vec![
            slot(0, 0, 50, 80),
            slot(1, 1, 10, 40),
            slot(2, 2, 30, 90),
        ])
        .unwrap();
        let starts: Vec<i64> = list.iter().map(|s| s.start().ticks()).collect();
        assert_eq!(starts, vec![10, 30, 50]);
    }

    #[test]
    fn from_slots_rejects_duplicate_ids() {
        let err = SlotList::from_slots(vec![slot(3, 0, 0, 10), slot(3, 1, 0, 10)]).unwrap_err();
        assert_eq!(err, CoreError::DuplicateSlotId { id: SlotId::new(3) });
    }

    #[test]
    fn from_slots_rejects_same_node_overlap() {
        let err = SlotList::from_slots(vec![slot(0, 5, 0, 50), slot(1, 5, 40, 90)]).unwrap_err();
        assert!(matches!(err, CoreError::OverlappingSlots { node, .. } if node == NodeId::new(5)));
    }

    #[test]
    fn same_node_touching_slots_are_fine() {
        let list = SlotList::from_slots(vec![slot(0, 5, 0, 50), slot(1, 5, 50, 90)]).unwrap();
        assert_eq!(list.len(), 2);
    }

    #[test]
    fn insert_keeps_order_and_rejects_duplicates() {
        let mut list = SlotList::from_slots(vec![slot(0, 0, 100, 200)]).unwrap();
        list.insert(slot(10, 1, 50, 80)).unwrap();
        assert_eq!(list.as_slice()[0].id(), SlotId::new(10));
        assert_eq!(
            list.insert(slot(10, 2, 0, 10)).unwrap_err(),
            CoreError::DuplicateSlotId {
                id: SlotId::new(10)
            }
        );
    }

    #[test]
    fn minted_ids_never_collide_with_inserted() {
        let mut list = SlotList::from_slots(vec![slot(41, 0, 0, 10)]).unwrap();
        assert_eq!(list.mint_id(), SlotId::new(42));
        list.insert(slot(100, 1, 0, 10)).unwrap();
        assert_eq!(list.mint_id(), SlotId::new(101));
    }

    #[test]
    fn indexed_get_matches_linear_lookup() {
        // Several slots sharing start times so the binary search has to
        // break ties on id.
        let list = SlotList::from_slots(vec![
            slot(5, 0, 10, 40),
            slot(2, 1, 10, 50),
            slot(9, 2, 10, 30),
            slot(1, 3, 0, 20),
            slot(7, 4, 25, 60),
        ])
        .unwrap();
        for expected in list.as_slice() {
            let found = list.get(expected.id()).expect("every id resolves");
            assert_eq!(found, expected);
            assert!(list.contains(expected.id()));
        }
        assert!(list.get(SlotId::new(1000)).is_none());
        assert!(!list.contains(SlotId::new(1000)));
    }

    #[test]
    fn first_at_or_after_brackets_the_list() {
        let list = SlotList::from_slots(vec![
            slot(0, 0, 10, 40),
            slot(1, 1, 10, 50),
            slot(2, 2, 30, 90),
        ])
        .unwrap();
        assert_eq!(list.first_at_or_after(TimePoint::new(0)), 0);
        assert_eq!(list.first_at_or_after(TimePoint::new(10)), 0);
        assert_eq!(list.first_at_or_after(TimePoint::new(11)), 2);
        assert_eq!(list.first_at_or_after(TimePoint::new(31)), 3);
    }

    #[test]
    fn subtract_interior_produces_two_remnants() {
        let mut list = SlotList::from_slots(vec![slot(0, 0, 0, 100)]).unwrap();
        list.subtract(SlotId::new(0), span(30, 60)).unwrap();
        assert_eq!(list.len(), 2);
        let spans: Vec<Span> = list.iter().map(|s| s.span()).collect();
        assert_eq!(spans, vec![span(0, 30), span(60, 100)]);
        list.validate().unwrap();
    }

    #[test]
    fn subtract_prefix_keeps_right_remnant_only() {
        let mut list = SlotList::from_slots(vec![slot(0, 0, 0, 100)]).unwrap();
        list.subtract(SlotId::new(0), span(0, 100)).unwrap();
        assert!(list.is_empty());
    }

    #[test]
    fn subtract_missing_slot_errors() {
        let mut list = SlotList::new();
        assert_eq!(
            list.subtract(SlotId::new(1), span(0, 10)).unwrap_err(),
            CoreError::SlotNotFound { id: SlotId::new(1) }
        );
    }

    #[test]
    fn subtract_outside_cut_errors() {
        let mut list = SlotList::from_slots(vec![slot(0, 0, 10, 20)]).unwrap();
        let err = list.subtract(SlotId::new(0), span(15, 30)).unwrap_err();
        assert!(matches!(err, CoreError::CutOutsideSlot { .. }));
        // List unchanged.
        assert_eq!(list.len(), 1);
        assert_eq!(list.as_slice()[0].span(), span(10, 20));
    }

    #[test]
    fn subtract_window_is_atomic_on_error() {
        use crate::window::{Window, WindowSlot};
        let a = slot(0, 0, 0, 100);
        let b = slot(1, 1, 0, 10); // too short for the cut below
        let mut list = SlotList::from_slots(vec![a, b]).unwrap();
        let w = Window::new(
            TimePoint::new(0),
            vec![
                WindowSlot::from_slot(&a, TimeDelta::new(50)).unwrap(),
                WindowSlot::from_slot(&b, TimeDelta::new(50)).unwrap(),
            ],
        )
        .unwrap();
        let err = list.subtract_window(&w).unwrap_err();
        assert!(matches!(err, CoreError::CutOutsideSlot { .. }));
        // Nothing was subtracted, including from slot `a`.
        assert_eq!(list.len(), 2);
        assert_eq!(list.get(SlotId::new(0)).unwrap().span(), span(0, 100));
    }

    #[test]
    fn subtract_window_removes_all_members() {
        use crate::window::{Window, WindowSlot};
        let a = slot(0, 0, 0, 100);
        let b = slot(1, 1, 0, 100);
        let mut list = SlotList::from_slots(vec![a, b]).unwrap();
        let w = Window::new(
            TimePoint::new(0),
            vec![
                WindowSlot::from_slot(&a, TimeDelta::new(40)).unwrap(),
                WindowSlot::from_slot(&b, TimeDelta::new(40)).unwrap(),
            ],
        )
        .unwrap();
        list.subtract_window(&w).unwrap();
        assert_eq!(list.len(), 2);
        for s in list.iter() {
            assert_eq!(s.span(), span(40, 100));
        }
        list.validate().unwrap();
    }

    #[test]
    fn subtraction_report_lists_consumed_and_minted() {
        use crate::window::{Window, WindowSlot};
        let a = slot(0, 0, 0, 100);
        let b = slot(1, 1, 20, 120);
        let mut list = SlotList::from_slots(vec![a, b]).unwrap();
        let w = Window::new(
            TimePoint::new(20),
            vec![
                WindowSlot::from_slot(&a, TimeDelta::new(40)).unwrap(),
                WindowSlot::from_slot(&b, TimeDelta::new(40)).unwrap(),
            ],
        )
        .unwrap();
        let report = list.subtract_window_report(&w).unwrap();
        assert_eq!(report.removed, vec![SlotId::new(0), SlotId::new(1)]);
        // a → [0, 20) and [60, 100); b → [60, 120).
        assert_eq!(report.remnants.len(), 3);
        for remnant in &report.remnants {
            assert_eq!(list.get(remnant.id()), Some(remnant));
        }
        list.validate().unwrap();
    }

    #[test]
    fn totals_and_earliest() {
        let list = SlotList::from_slots(vec![slot(0, 0, 10, 40), slot(1, 1, 5, 25)]).unwrap();
        assert_eq!(list.earliest_start(), Some(TimePoint::new(5)));
        assert_eq!(list.total_vacant_time(), TimeDelta::new(50));
        assert!(SlotList::new().earliest_start().is_none());
    }

    #[test]
    fn from_sorted_slots_matches_from_slots() {
        let slots = vec![
            slot(1, 3, 0, 20),
            slot(5, 0, 10, 40),
            slot(9, 2, 10, 30),
            slot(7, 4, 25, 60),
        ];
        let sorted = SlotList::from_sorted_slots(slots.clone()).unwrap();
        let general = SlotList::from_slots(slots).unwrap();
        assert_eq!(sorted, general);
        sorted.validate().unwrap();
        assert_eq!(sorted.next_id, general.next_id);
    }

    #[test]
    fn from_sorted_slots_rejects_unsorted_input() {
        // Out of start order.
        let err =
            SlotList::from_sorted_slots(vec![slot(0, 0, 10, 20), slot(1, 1, 0, 5)]).unwrap_err();
        assert_eq!(err, CoreError::UnsortedSlots { index: 1 });
        // Equal starts must come in increasing id order.
        let err =
            SlotList::from_sorted_slots(vec![slot(4, 0, 10, 20), slot(2, 1, 10, 20)]).unwrap_err();
        assert_eq!(err, CoreError::UnsortedSlots { index: 1 });
    }

    #[test]
    fn from_sorted_slots_rejects_same_node_overlap() {
        // The long first slot still overlaps the third even though the
        // second ends earlier — the running bound must track the max end.
        let err = SlotList::from_sorted_slots(vec![
            slot(0, 5, 0, 100),
            slot(1, 6, 10, 20),
            slot(2, 5, 30, 40),
        ])
        .unwrap_err();
        assert!(matches!(err, CoreError::OverlappingSlots { node, .. } if node == NodeId::new(5)));
    }

    #[test]
    fn from_sorted_slots_rejects_duplicate_ids() {
        let err =
            SlotList::from_sorted_slots(vec![slot(3, 0, 0, 10), slot(3, 1, 5, 15)]).unwrap_err();
        assert_eq!(err, CoreError::DuplicateSlotId { id: SlotId::new(3) });
    }

    #[test]
    fn covering_slot_finds_the_unique_container() {
        let list = SlotList::from_slots(vec![
            slot(0, 0, 0, 50),
            slot(1, 0, 60, 100),
            slot(2, 1, 0, 100),
        ])
        .unwrap();
        let region = span(70, 90);
        assert_eq!(
            list.covering_slot(NodeId::new(0), region).map(Slot::id),
            Some(SlotId::new(1))
        );
        // A region straddling the gap is covered by nothing.
        assert!(list.covering_slot(NodeId::new(0), span(40, 70)).is_none());
        // Other nodes see their own slots only.
        assert_eq!(
            list.covering_slot(NodeId::new(1), region).map(Slot::id),
            Some(SlotId::new(2))
        );
        assert!(list.covering_slot(NodeId::new(9), region).is_none());
    }

    #[test]
    fn covering_slot_tracks_subtraction() {
        let mut list = SlotList::from_slots(vec![slot(0, 0, 0, 100)]).unwrap();
        list.subtract(SlotId::new(0), span(40, 60)).unwrap();
        assert!(list.covering_slot(NodeId::new(0), span(45, 55)).is_none());
        let left = list.covering_slot(NodeId::new(0), span(10, 30)).unwrap();
        assert_eq!(left.span(), span(0, 40));
        let right = list.covering_slot(NodeId::new(0), span(70, 90)).unwrap();
        assert_eq!(right.span(), span(60, 100));
    }

    #[test]
    fn remove_region_carves_every_overlapping_slot() {
        let mut list = SlotList::from_slots(vec![
            slot(0, 0, 0, 30),
            slot(1, 0, 40, 70),
            slot(2, 0, 80, 120),
            slot(3, 1, 0, 120), // other node, untouched
        ])
        .unwrap();
        let affected = list.remove_region(NodeId::new(0), span(20, 90));
        assert_eq!(
            affected,
            vec![SlotId::new(0), SlotId::new(1), SlotId::new(2)]
        );
        list.validate().unwrap();
        let node0: Vec<Span> = list
            .iter()
            .filter(|s| s.node() == NodeId::new(0))
            .map(|s| s.span())
            .collect();
        assert_eq!(node0, vec![span(0, 20), span(90, 120)]);
        assert_eq!(list.get(SlotId::new(3)).unwrap().span(), span(0, 120));
    }

    #[test]
    fn remove_region_misses_cleanly() {
        let mut list = SlotList::from_slots(vec![slot(0, 0, 0, 30)]).unwrap();
        assert!(list.remove_region(NodeId::new(0), span(30, 50)).is_empty());
        assert!(list.remove_region(NodeId::new(7), span(0, 50)).is_empty());
        assert_eq!(list.len(), 1);
    }

    #[test]
    fn coalesce_merges_touching_same_attribute_runs() {
        let mut list = SlotList::from_slots(vec![
            slot(0, 0, 0, 30),
            slot(1, 0, 30, 60),
            slot(2, 0, 60, 100),
            slot(3, 1, 0, 50), // other node: left alone
        ])
        .unwrap();
        let before = list.total_vacant_time();
        assert_eq!(list.coalesce(), 2);
        list.validate().unwrap();
        assert_eq!(list.len(), 2);
        // The run head keeps its id and absorbs the whole run.
        let merged = list.get(SlotId::new(0)).unwrap();
        assert_eq!(merged.span(), span(0, 100));
        assert_eq!(list.total_vacant_time(), before);
        assert!(list.get(SlotId::new(1)).is_none());
        assert!(list.get(SlotId::new(2)).is_none());
        assert_eq!(list.get(SlotId::new(3)).unwrap().span(), span(0, 50));
        // Idempotent: a second pass finds nothing.
        assert_eq!(list.coalesce(), 0);
    }

    #[test]
    fn coalesce_respects_gaps_and_attribute_changes() {
        let cheap = slot(0, 0, 0, 30);
        let pricey = Slot::new(
            SlotId::new(1),
            NodeId::new(0),
            Perf::UNIT,
            Price::from_credits(9),
            span(30, 60),
        )
        .unwrap();
        let fast = Slot::new(
            SlotId::new(2),
            NodeId::new(0),
            Perf::from_f64(2.0),
            Price::from_credits(2),
            span(60, 90),
        )
        .unwrap();
        let gapped = slot(3, 0, 95, 120);
        let mut list = SlotList::from_slots(vec![cheap, pricey, fast, gapped]).unwrap();
        assert_eq!(list.coalesce(), 0);
        assert_eq!(list.len(), 4);
        list.validate().unwrap();
    }

    #[test]
    fn coalesce_never_reuses_retired_ids() {
        let mut list = SlotList::from_slots(vec![slot(0, 0, 0, 30), slot(1, 0, 30, 60)]).unwrap();
        assert_eq!(list.coalesce(), 1);
        // Id 1 is retired, not recycled: fresh mints start past it.
        assert_eq!(list.mint_id(), SlotId::new(2));
    }

    #[test]
    fn iteration_conveniences() {
        let list = SlotList::from_slots(vec![slot(0, 0, 10, 40)]).unwrap();
        assert_eq!((&list).into_iter().count(), 1);
        assert_eq!(list.clone().into_iter().count(), 1);
        assert!(format!("{list}").contains("1 slots"));
    }
}
