//! Node performance rates and runtime scaling.
//!
//! The paper expresses a job's wall time `t` relative to the *minimum
//! acceptable* node performance `P`. A node with rate `P(s) ≥ P` executes
//! the task faster: its runtime is `t · P / P(s)` (see DESIGN.md note R1 —
//! the paper's printed inequality has the ratio inverted; Sec. 6's
//! discussion of `t/P` fixes the intent).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::TimeDelta;

/// Fixed-point scale: 1000 [`Perf`] units per 1.0 relative rate.
pub const PERF_SCALE: i64 = 1000;

/// A relative node performance rate (the paper's `P`), fixed-point with
/// 10⁻³ resolution. The "etalon" node has rate 1.0.
///
/// # Examples
///
/// ```
/// use ecosched_core::{Perf, TimeDelta};
///
/// let requested = Perf::from_f64(1.0);
/// let node = Perf::from_f64(2.0);
/// // A job asking for 100 ticks at rate 1.0 finishes in 50 on a rate-2 node.
/// assert_eq!(node.runtime_for(TimeDelta::new(100), requested), TimeDelta::new(50));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Perf(i64);

impl Perf {
    /// The etalon performance rate 1.0.
    pub const UNIT: Perf = Perf(PERF_SCALE);

    /// Creates a rate from raw milli-units.
    ///
    /// # Panics
    ///
    /// Panics if `milli` is not strictly positive — a node with
    /// non-positive speed can never finish a task.
    #[must_use]
    pub fn from_milli(milli: i64) -> Self {
        assert!(milli > 0, "performance rate must be positive, got {milli}");
        Perf(milli)
    }

    /// Creates a rate from a floating-point value, rounding to milli-units.
    ///
    /// # Panics
    ///
    /// Panics if the rounded rate is not strictly positive.
    #[must_use]
    pub fn from_f64(rate: f64) -> Self {
        Self::from_milli((rate * PERF_SCALE as f64).round() as i64)
    }

    /// Returns the raw milli-unit count.
    #[must_use]
    pub const fn milli(self) -> i64 {
        self.0
    }

    /// Returns the rate as a floating-point value.
    #[must_use]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / PERF_SCALE as f64
    }

    /// Returns `true` if this node satisfies a minimum-performance
    /// requirement (condition 2°a of both ALP and AMP).
    #[must_use]
    pub fn satisfies(self, minimum: Perf) -> bool {
        self.0 >= minimum.0
    }

    /// Runtime of a task on this node, where `wall_time` is the task's
    /// duration on a node of rate `requested`: `ceil(t · P_req / P_node)`.
    ///
    /// Faster nodes shrink the runtime; the ceiling keeps durations integral
    /// while never under-reserving.
    ///
    /// # Panics
    ///
    /// Panics if `wall_time` is negative.
    #[must_use]
    pub fn runtime_for(self, wall_time: TimeDelta, requested: Perf) -> TimeDelta {
        let t = wall_time.ticks();
        assert!(t >= 0, "wall time must be non-negative, got {t}");
        TimeDelta::new(div_ceil(t * requested.0, self.0))
    }

    /// The paper's *literal* condition 2°b runtime, `ceil(t · P_node /
    /// P_req)` — kept for the R1 ablation (see DESIGN.md). Under this rule
    /// faster nodes need *longer* slots.
    ///
    /// # Panics
    ///
    /// Panics if `wall_time` is negative.
    #[must_use]
    pub fn runtime_for_paper_literal(self, wall_time: TimeDelta, requested: Perf) -> TimeDelta {
        let t = wall_time.ticks();
        assert!(t >= 0, "wall time must be non-negative, got {t}");
        TimeDelta::new(div_ceil(t * self.0, requested.0))
    }
}

impl Default for Perf {
    fn default() -> Self {
        Perf::UNIT
    }
}

impl fmt::Display for Perf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}x", self.to_f64())
    }
}

/// Integer division rounding toward positive infinity (operands must be
/// positive, which `Perf` guarantees for the divisor).
fn div_ceil(num: i64, den: i64) -> i64 {
    debug_assert!(den > 0);
    if num <= 0 {
        0
    } else {
        (num + den - 1) / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_rate_is_identity() {
        let t = TimeDelta::new(123);
        assert_eq!(Perf::UNIT.runtime_for(t, Perf::UNIT), t);
    }

    #[test]
    fn faster_node_shrinks_runtime() {
        let t = TimeDelta::new(100);
        let req = Perf::from_f64(1.0);
        assert_eq!(Perf::from_f64(2.0).runtime_for(t, req), TimeDelta::new(50));
        assert_eq!(Perf::from_f64(4.0).runtime_for(t, req), TimeDelta::new(25));
    }

    #[test]
    fn runtime_uses_ceiling() {
        let t = TimeDelta::new(100);
        let req = Perf::from_f64(1.0);
        // 100 / 3 = 33.33… → 34
        assert_eq!(Perf::from_f64(3.0).runtime_for(t, req), TimeDelta::new(34));
    }

    #[test]
    fn requested_rate_scales_up() {
        // Requesting a rate-2 baseline doubles the work relative to etalon.
        let t = TimeDelta::new(50);
        let req = Perf::from_f64(2.0);
        assert_eq!(Perf::from_f64(1.0).runtime_for(t, req), TimeDelta::new(100));
        assert_eq!(Perf::from_f64(2.0).runtime_for(t, req), TimeDelta::new(50));
    }

    #[test]
    fn literal_rule_is_inverted() {
        let t = TimeDelta::new(100);
        let req = Perf::from_f64(1.0);
        assert_eq!(
            Perf::from_f64(2.0).runtime_for_paper_literal(t, req),
            TimeDelta::new(200)
        );
    }

    #[test]
    fn satisfies_is_inclusive() {
        let min = Perf::from_f64(1.5);
        assert!(Perf::from_f64(1.5).satisfies(min));
        assert!(Perf::from_f64(2.0).satisfies(min));
        assert!(!Perf::from_f64(1.499).satisfies(min));
    }

    #[test]
    fn zero_wall_time_runs_instantly() {
        assert_eq!(
            Perf::from_f64(1.5).runtime_for(TimeDelta::ZERO, Perf::UNIT),
            TimeDelta::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "performance rate must be positive")]
    fn zero_rate_panics() {
        let _ = Perf::from_milli(0);
    }

    #[test]
    fn display_shows_three_decimals() {
        assert_eq!(format!("{}", Perf::from_f64(1.5)), "1.500x");
    }

    #[test]
    fn div_ceil_edge_cases() {
        assert_eq!(div_ceil(0, 3), 0);
        assert_eq!(div_ceil(1, 3), 1);
        assert_eq!(div_ceil(3, 3), 1);
        assert_eq!(div_ceil(4, 3), 2);
        assert_eq!(div_ceil(-5, 3), 0);
    }
}
