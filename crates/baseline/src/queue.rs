//! Job queues and schedules for the homogeneous baseline schedulers.

use std::fmt;

use ecosched_core::{JobId, TimeDelta, TimePoint};
use serde::{Deserialize, Serialize};

/// A rigid parallel job for the classic cluster model: `nodes` identical
/// nodes for `duration` ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueuedJob {
    /// Job identifier.
    pub id: JobId,
    /// Number of nodes required.
    pub nodes: usize,
    /// Requested runtime.
    pub duration: TimeDelta,
}

impl QueuedJob {
    /// Creates a queued job.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or `duration` is not positive.
    #[must_use]
    pub fn new(id: JobId, nodes: usize, duration: TimeDelta) -> Self {
        assert!(nodes > 0, "a job needs at least one node");
        assert!(duration.is_positive(), "duration must be positive");
        QueuedJob {
            id,
            nodes,
            duration,
        }
    }
}

impl fmt::Display for QueuedJob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({}n × {})", self.id, self.nodes, self.duration)
    }
}

/// One scheduled job: where and when it runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// The job.
    pub job: JobId,
    /// Node count occupied.
    pub nodes: usize,
    /// Start time.
    pub start: TimePoint,
    /// End time (start + duration).
    pub end: TimePoint,
}

/// A complete schedule produced by a baseline scheduler.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    placements: Vec<Placement>,
}

impl Schedule {
    /// Creates a schedule from placements in queue order.
    #[must_use]
    pub fn new(placements: Vec<Placement>) -> Self {
        Schedule { placements }
    }

    /// The placements in queue order.
    #[must_use]
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// Looks up a job's placement.
    #[must_use]
    pub fn get(&self, job: JobId) -> Option<&Placement> {
        self.placements.iter().find(|p| p.job == job)
    }

    /// The latest completion time, or the epoch for an empty schedule.
    #[must_use]
    pub fn makespan(&self) -> TimePoint {
        self.placements
            .iter()
            .map(|p| p.end)
            .max()
            .unwrap_or(TimePoint::ZERO)
    }

    /// Mean job start time (a waiting-time proxy; all queues arrive at 0).
    #[must_use]
    pub fn mean_start(&self) -> f64 {
        if self.placements.is_empty() {
            0.0
        } else {
            self.placements
                .iter()
                .map(|p| p.start.ticks() as f64)
                .sum::<f64>()
                / self.placements.len() as f64
        }
    }

    /// Node-time utilization over `[0, makespan)` for a cluster of `total`
    /// nodes.
    #[must_use]
    pub fn utilization(&self, total: usize) -> f64 {
        let horizon = self.makespan().ticks();
        if horizon == 0 || total == 0 {
            return 0.0;
        }
        let used: i64 = self
            .placements
            .iter()
            .map(|p| (p.end - p.start).ticks() * p.nodes as i64)
            .sum();
        used as f64 / (horizon * total as i64) as f64
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "schedule ({} jobs):", self.placements.len())?;
        for p in &self.placements {
            writeln!(
                f,
                "  {} on {} nodes [{}, {})",
                p.job, p.nodes, p.start, p.end
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn placement(job: u32, nodes: usize, start: i64, end: i64) -> Placement {
        Placement {
            job: JobId::new(job),
            nodes,
            start: TimePoint::new(start),
            end: TimePoint::new(end),
        }
    }

    #[test]
    fn makespan_is_latest_end() {
        let s = Schedule::new(vec![placement(0, 1, 0, 10), placement(1, 1, 5, 30)]);
        assert_eq!(s.makespan(), TimePoint::new(30));
        assert_eq!(Schedule::default().makespan(), TimePoint::ZERO);
    }

    #[test]
    fn utilization_counts_node_ticks() {
        // 2 nodes, horizon 20: job uses 1 node × 20 → 50 %.
        let s = Schedule::new(vec![placement(0, 1, 0, 20)]);
        assert!((s.utilization(2) - 0.5).abs() < 1e-12);
        assert_eq!(Schedule::default().utilization(2), 0.0);
    }

    #[test]
    fn mean_start_averages() {
        let s = Schedule::new(vec![placement(0, 1, 0, 10), placement(1, 1, 10, 20)]);
        assert!((s.mean_start() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn get_finds_placements() {
        let s = Schedule::new(vec![placement(7, 2, 0, 10)]);
        assert_eq!(s.get(JobId::new(7)).unwrap().nodes, 2);
        assert!(s.get(JobId::new(8)).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_node_job_panics() {
        let _ = QueuedJob::new(JobId::new(0), 0, TimeDelta::new(1));
    }

    #[test]
    fn display_formats() {
        let j = QueuedJob::new(JobId::new(1), 2, TimeDelta::new(30));
        assert!(format!("{j}").contains("2n"));
        let s = Schedule::new(vec![placement(0, 1, 0, 10)]);
        assert!(format!("{s}").contains("job0"));
    }
}
