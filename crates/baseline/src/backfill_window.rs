//! A backfill-style window finder over a slot list — the paper's
//! complexity comparator.
//!
//! Sec. 3 of the paper argues that backfilling, adapted to the slot-list
//! setting, costs `O(m²)`: it enumerates candidate anchor times (each
//! slot's start) and, for every anchor, re-scans the whole list for slots
//! covering `[anchor, anchor + t)`. This module implements exactly that
//! strategy behind the common [`SlotSelector`] interface so the scaling
//! experiment (E7) can run all three algorithms on identical inputs.
//!
//! Like its ancestors, it is economics-blind: prices are ignored. It keeps
//! the minimum-performance requirement and per-node runtime scaling so its
//! windows are comparable to ALP/AMP's.

use ecosched_core::{ResourceRequest, SlotList, TimePoint, Window, WindowSlot};
use ecosched_select::{ScanStats, SlotSelector};

/// The quadratic anchor-enumeration window search.
///
/// # Examples
///
/// ```
/// use ecosched_baseline::BackfillWindow;
/// use ecosched_core::{
///     NodeId, Perf, Price, ResourceRequest, Slot, SlotId, SlotList, Span, TimeDelta, TimePoint,
/// };
/// use ecosched_select::{ScanStats, SlotSelector};
///
/// let slots = (0..2)
///     .map(|i| {
///         Slot::new(
///             SlotId::new(i),
///             NodeId::new(i as u32),
///             Perf::UNIT,
///             Price::from_credits(99), // ignored: backfill is economics-blind
///             Span::new(TimePoint::new(0), TimePoint::new(200)).unwrap(),
///         )
///     })
///     .collect::<Result<Vec<_>, _>>()?;
/// let list = SlotList::from_slots(slots)?;
/// let request = ResourceRequest::new(2, TimeDelta::new(100), Perf::UNIT, Price::from_credits(1))?;
///
/// let mut stats = ScanStats::new();
/// let window = BackfillWindow::new().find_window(&list, &request, &mut stats).unwrap();
/// assert_eq!(window.start(), TimePoint::new(0));
/// # Ok::<(), ecosched_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackfillWindow {
    _private: (),
}

impl BackfillWindow {
    /// Creates the baseline window search.
    #[must_use]
    pub fn new() -> Self {
        BackfillWindow::default()
    }
}

impl SlotSelector for BackfillWindow {
    fn name(&self) -> &'static str {
        "backfill"
    }

    fn find_window(
        &self,
        list: &SlotList,
        request: &ResourceRequest,
        stats: &mut ScanStats,
    ) -> Option<Window> {
        let n = request.nodes();
        // Candidate anchors: every slot start, in list (time) order, so the
        // first hit is the earliest window.
        for anchor_slot in list {
            let anchor: TimePoint = anchor_slot.start();
            stats.acceptance_tests += 1;
            // Full rescan of the list for this anchor — the O(m) inner loop.
            let mut members: Vec<WindowSlot> = Vec::with_capacity(n);
            for slot in list {
                stats.slots_examined += 1;
                if !slot.perf().satisfies(request.min_perf()) {
                    continue;
                }
                if slot.start() > anchor {
                    break; // list is start-ordered: nothing later can cover the anchor
                }
                let runtime = request.runtime_on(slot.perf());
                if !runtime.is_positive() || anchor + runtime > slot.end() {
                    continue;
                }
                if members.iter().any(|m| m.node() == slot.node()) {
                    continue;
                }
                members.push(
                    WindowSlot::from_slot(slot, runtime)
                        .expect("positive runtimes construct valid members"),
                );
                if members.len() == n {
                    stats.windows_found += 1;
                    return Some(
                        Window::new(anchor, members)
                            .expect("distinct nodes with positive runtimes form a window"),
                    );
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecosched_core::{NodeId, Perf, Price, Slot, SlotId, Span, TimeDelta};
    use ecosched_select::Alp;

    fn slot(id: u64, node: u32, perf: f64, a: i64, b: i64) -> Slot {
        Slot::new(
            SlotId::new(id),
            NodeId::new(node),
            Perf::from_f64(perf),
            Price::from_credits(1),
            Span::new(TimePoint::new(a), TimePoint::new(b)).unwrap(),
        )
        .unwrap()
    }

    fn req(n: usize, t: i64, p: f64) -> ResourceRequest {
        ResourceRequest::new(
            n,
            TimeDelta::new(t),
            Perf::from_f64(p),
            Price::from_credits(1_000_000),
        )
        .unwrap()
    }

    #[test]
    fn finds_earliest_concurrent_window() {
        let list = SlotList::from_slots(vec![
            slot(0, 0, 1.0, 0, 60),
            slot(1, 1, 1.0, 100, 300),
            slot(2, 2, 1.0, 120, 300),
        ])
        .unwrap();
        let mut stats = ScanStats::new();
        let w = BackfillWindow::new()
            .find_window(&list, &req(2, 50, 1.0), &mut stats)
            .unwrap();
        assert_eq!(w.start(), TimePoint::new(120));
    }

    #[test]
    fn work_is_quadratic_in_failure_case() {
        // All slots too short: every anchor rescans its prefix.
        let slots: Vec<Slot> = (0..40)
            .map(|i| slot(i, i as u32, 1.0, i as i64 * 10, i as i64 * 10 + 30))
            .collect();
        let list = SlotList::from_slots(slots).unwrap();
        let mut stats = ScanStats::new();
        assert!(BackfillWindow::new()
            .find_window(&list, &req(2, 50, 1.0), &mut stats)
            .is_none());
        // Strictly more than one pass over the list — the paper's point.
        assert!(
            stats.slots_examined > 40,
            "examined {} slots",
            stats.slots_examined
        );
    }

    #[test]
    fn agrees_with_alp_on_homogeneous_unpriced_input() {
        // With uniform prices within the cap and uniform performance, ALP
        // and the backfill search must find windows with the same start.
        let list = SlotList::from_slots(vec![
            slot(0, 0, 1.0, 0, 500),
            slot(1, 1, 1.0, 40, 500),
            slot(2, 2, 1.0, 90, 500),
        ])
        .unwrap();
        let request = req(2, 100, 1.0);
        let mut s1 = ScanStats::new();
        let mut s2 = ScanStats::new();
        let b = BackfillWindow::new()
            .find_window(&list, &request, &mut s1)
            .unwrap();
        let a = Alp::new().find_window(&list, &request, &mut s2).unwrap();
        assert_eq!(a.start(), b.start());
    }

    #[test]
    fn respects_min_performance() {
        let list =
            SlotList::from_slots(vec![slot(0, 0, 1.0, 0, 500), slot(1, 1, 2.0, 0, 500)]).unwrap();
        let mut stats = ScanStats::new();
        let w = BackfillWindow::new()
            .find_window(&list, &req(1, 50, 1.5), &mut stats)
            .unwrap();
        assert!(w.uses_node(NodeId::new(1)));
    }

    #[test]
    fn ignores_prices_entirely() {
        let expensive = Slot::new(
            SlotId::new(0),
            NodeId::new(0),
            Perf::UNIT,
            Price::from_credits(1_000),
            Span::new(TimePoint::new(0), TimePoint::new(100)).unwrap(),
        )
        .unwrap();
        let list = SlotList::from_slots(vec![expensive]).unwrap();
        let request =
            ResourceRequest::new(1, TimeDelta::new(50), Perf::UNIT, Price::from_credits(1))
                .unwrap();
        let mut stats = ScanStats::new();
        assert!(BackfillWindow::new()
            .find_window(&list, &request, &mut stats)
            .is_some());
    }

    #[test]
    fn fails_cleanly_when_nothing_fits() {
        let list = SlotList::from_slots(vec![slot(0, 0, 1.0, 0, 10)]).unwrap();
        let mut stats = ScanStats::new();
        assert!(BackfillWindow::new()
            .find_window(&list, &req(1, 50, 1.0), &mut stats)
            .is_none());
    }
}
