//! Baseline schedulers the paper compares against.
//!
//! Two families:
//!
//! * **Queue schedulers over a homogeneous cluster** — [`fcfs`],
//!   [`conservative_backfill`], and event-driven [`easy_backfill`]
//!   (Mu'alem & Feitelson / Maui, the paper's refs [11, 12]), built on a
//!   [`CapacityProfile`] step function.
//! * **[`BackfillWindow`]** — a backfill-style, economics-blind window
//!   finder over a vacant-slot list with the `O(m²)` anchor-enumeration
//!   structure the paper attributes to backfilling, exposed through the
//!   same [`ecosched_select::SlotSelector`] trait as ALP/AMP so the
//!   complexity experiment can run all three on identical inputs.
//!
//! # Example
//!
//! ```
//! use ecosched_baseline::{conservative_backfill, fcfs, QueuedJob};
//! use ecosched_core::{JobId, TimeDelta};
//!
//! let jobs = vec![
//!     QueuedJob::new(JobId::new(0), 3, TimeDelta::new(50)),
//!     QueuedJob::new(JobId::new(1), 4, TimeDelta::new(20)),
//!     QueuedJob::new(JobId::new(2), 1, TimeDelta::new(40)),
//! ];
//! let plain = fcfs(&jobs, 4);
//! let backfilled = conservative_backfill(&jobs, 4);
//! assert!(backfilled.makespan() <= plain.makespan());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod backfill_window;
mod profile;
mod queue;
mod schedulers;

pub use backfill_window::BackfillWindow;
pub use profile::CapacityProfile;
pub use queue::{Placement, QueuedJob, Schedule};
pub use schedulers::{conservative_backfill, easy_backfill, fcfs};
