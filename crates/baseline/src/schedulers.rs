//! The classic queue schedulers: FCFS, conservative backfilling, and a
//! single-shadow EASY approximation.
//!
//! These are the comparators the paper positions ALP/AMP against (refs
//! [11, 12]): they assume a homogeneous cluster, have no notion of price,
//! and reason about one job queue rather than a batch with alternatives.

use ecosched_core::TimePoint;

use crate::profile::CapacityProfile;
use crate::queue::{Placement, QueuedJob, Schedule};

/// Strict first-come-first-served: each job starts at its earliest fit, but
/// never before the previous job's start (no overtaking).
///
/// # Panics
///
/// Panics if any job requests more nodes than the cluster has.
///
/// # Examples
///
/// ```
/// use ecosched_baseline::{fcfs, QueuedJob};
/// use ecosched_core::{JobId, TimeDelta};
///
/// let jobs = vec![
///     QueuedJob::new(JobId::new(0), 2, TimeDelta::new(10)),
///     QueuedJob::new(JobId::new(1), 1, TimeDelta::new(10)),
/// ];
/// let schedule = fcfs(&jobs, 2);
/// assert_eq!(schedule.placements()[1].start.ticks(), 10);
/// ```
#[must_use]
pub fn fcfs(jobs: &[QueuedJob], nodes: usize) -> Schedule {
    let mut profile = CapacityProfile::new(nodes);
    let mut placements = Vec::with_capacity(jobs.len());
    let mut frontier = TimePoint::ZERO;
    for job in jobs {
        let start = profile.earliest_fit(frontier, job.nodes, job.duration);
        profile.reserve(start, job.duration, job.nodes);
        frontier = start;
        placements.push(Placement {
            job: job.id,
            nodes: job.nodes,
            start,
            end: start + job.duration,
        });
    }
    Schedule::new(placements)
}

/// Conservative backfilling: every job receives a reservation at its
/// earliest fit in queue order; later jobs may slide into earlier holes as
/// long as the profile (which includes all earlier reservations) admits
/// them — so no earlier-queued job is ever delayed.
///
/// # Examples
///
/// ```
/// use ecosched_baseline::{conservative_backfill, QueuedJob};
/// use ecosched_core::{JobId, TimeDelta};
///
/// let jobs = vec![
///     QueuedJob::new(JobId::new(0), 1, TimeDelta::new(100)), // long narrow job
///     QueuedJob::new(JobId::new(1), 2, TimeDelta::new(10)),  // wide job must wait
///     QueuedJob::new(JobId::new(2), 1, TimeDelta::new(5)),   // backfills beside job 0
/// ];
/// let schedule = conservative_backfill(&jobs, 2);
/// assert_eq!(schedule.get(JobId::new(2)).unwrap().start.ticks(), 0);
/// ```
///
/// # Panics
///
/// Panics if any job requests more nodes than the cluster has.
#[must_use]
pub fn conservative_backfill(jobs: &[QueuedJob], nodes: usize) -> Schedule {
    let mut profile = CapacityProfile::new(nodes);
    let mut placements = Vec::with_capacity(jobs.len());
    for job in jobs {
        let start = profile.earliest_fit(TimePoint::ZERO, job.nodes, job.duration);
        profile.reserve(start, job.duration, job.nodes);
        placements.push(Placement {
            job: job.id,
            nodes: job.nodes,
            start,
            end: start + job.duration,
        });
    }
    Schedule::new(placements)
}

/// EASY (aggressive) backfilling, event-driven as in Mu'alem & Feitelson:
/// only the head of the waiting queue holds a reservation (its *shadow
/// time*); any other waiting job may start immediately if it either
/// finishes before the shadow time or uses only the *extra* nodes the head
/// will not need — so the head is never delayed, but later-queued jobs may
/// be.
///
/// # Examples
///
/// ```
/// use ecosched_baseline::{easy_backfill, fcfs, QueuedJob};
/// use ecosched_core::{JobId, TimeDelta};
///
/// let jobs = vec![
///     QueuedJob::new(JobId::new(0), 3, TimeDelta::new(50)),
///     QueuedJob::new(JobId::new(1), 4, TimeDelta::new(20)), // blocked head
///     QueuedJob::new(JobId::new(2), 1, TimeDelta::new(45)), // backfills
/// ];
/// let schedule = easy_backfill(&jobs, 4);
/// // The backfill finishes before the head's shadow time, so it starts now.
/// assert_eq!(schedule.get(JobId::new(2)).unwrap().start.ticks(), 0);
/// assert!(schedule.makespan() <= fcfs(&jobs, 4).makespan());
/// ```
///
/// # Panics
///
/// Panics if any job requests more nodes than the cluster has.
#[must_use]
pub fn easy_backfill(jobs: &[QueuedJob], nodes: usize) -> Schedule {
    for job in jobs {
        assert!(
            job.nodes <= nodes,
            "{} requests {} nodes from a {nodes}-node cluster",
            job.id,
            job.nodes
        );
    }
    let mut placements: Vec<Placement> = Vec::with_capacity(jobs.len());
    let mut pending: std::collections::VecDeque<QueuedJob> = jobs.iter().copied().collect();
    // (end, nodes) of currently running jobs.
    let mut running: Vec<(TimePoint, usize)> = Vec::new();
    let mut now = TimePoint::ZERO;

    while !pending.is_empty() {
        running.retain(|&(end, _)| end > now);
        let used: usize = running.iter().map(|r| r.1).sum();
        let mut free = nodes - used;

        // Start queue heads while they fit.
        while let Some(&head) = pending.front() {
            if head.nodes > free {
                break;
            }
            free -= head.nodes;
            running.push((now + head.duration, head.nodes));
            placements.push(Placement {
                job: head.id,
                nodes: head.nodes,
                start: now,
                end: now + head.duration,
            });
            pending.pop_front();
        }
        let Some(&head) = pending.front() else { break };

        // Shadow time: when enough running jobs end for the head to start.
        let mut ends: Vec<(TimePoint, usize)> = running.clone();
        ends.sort_by_key(|&(end, _)| end);
        let mut avail = free;
        let mut shadow = now;
        for &(end, n) in &ends {
            if avail >= head.nodes {
                break;
            }
            avail += n;
            shadow = end;
        }
        debug_assert!(avail >= head.nodes, "head fits once everything ends");
        // Nodes the head leaves over at its shadow start.
        let mut extra = avail - head.nodes;

        // Backfill pass over the rest of the queue, in order.
        let mut i = 1;
        while i < pending.len() {
            let cand = pending[i];
            if cand.nodes <= free {
                let fits_before_shadow = now + cand.duration <= shadow;
                if fits_before_shadow || cand.nodes <= extra {
                    free -= cand.nodes;
                    if !fits_before_shadow {
                        extra -= cand.nodes;
                    }
                    running.push((now + cand.duration, cand.nodes));
                    placements.push(Placement {
                        job: cand.id,
                        nodes: cand.nodes,
                        start: now,
                        end: now + cand.duration,
                    });
                    pending.remove(i);
                    continue;
                }
            }
            i += 1;
        }

        // Advance to the next completion event.
        now = running
            .iter()
            .map(|r| r.0)
            .filter(|&e| e > now)
            .min()
            .expect("a blocked head implies something is running");
    }
    Schedule::new(placements)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecosched_core::{JobId, TimeDelta};

    fn job(id: u32, nodes: usize, duration: i64) -> QueuedJob {
        QueuedJob::new(JobId::new(id), nodes, TimeDelta::new(duration))
    }

    #[test]
    fn fcfs_never_overtakes() {
        // Wide job blocks the cluster; the small job after it must wait
        // even though a hole exists before.
        let jobs = vec![job(0, 1, 100), job(1, 2, 10), job(2, 1, 5)];
        let s = fcfs(&jobs, 2);
        let starts: Vec<i64> = s.placements().iter().map(|p| p.start.ticks()).collect();
        assert_eq!(starts[0], 0);
        assert_eq!(starts[1], 100); // needs both nodes → waits for job 0
        assert!(starts[2] >= starts[1]);
    }

    #[test]
    fn conservative_backfills_into_holes() {
        // Same queue: job 2 (1 node, 5 ticks) fits beside job 0 at t=0
        // without delaying job 1's reservation at t=100.
        let jobs = vec![job(0, 1, 100), job(1, 2, 10), job(2, 1, 5)];
        let s = conservative_backfill(&jobs, 2);
        assert_eq!(s.get(JobId::new(2)).unwrap().start.ticks(), 0);
        assert_eq!(s.get(JobId::new(1)).unwrap().start.ticks(), 100);
    }

    #[test]
    fn conservative_never_delays_earlier_jobs() {
        let jobs: Vec<QueuedJob> = (0..20)
            .map(|i| job(i, 1 + (i as usize % 3), 10 + i as i64))
            .collect();
        let alone: Vec<TimePoint> = jobs
            .iter()
            .scan(CapacityProfile::new(4), |p, j| {
                let s = p.earliest_fit(TimePoint::ZERO, j.nodes, j.duration);
                p.reserve(s, j.duration, j.nodes);
                Some(s)
            })
            .collect();
        let s = conservative_backfill(&jobs, 4);
        for (placement, expected) in s.placements().iter().zip(alone) {
            assert_eq!(placement.start, expected);
        }
    }

    #[test]
    fn easy_beats_or_matches_fcfs_makespan() {
        let jobs = vec![job(0, 3, 50), job(1, 4, 20), job(2, 1, 45), job(3, 1, 45)];
        let f = fcfs(&jobs, 4);
        let e = easy_backfill(&jobs, 4);
        assert!(e.makespan() <= f.makespan());
        // Jobs 2 and 3 backfill beside job 0.
        assert_eq!(e.get(JobId::new(2)).unwrap().start.ticks(), 0);
    }

    #[test]
    fn easy_does_not_delay_the_head_reservation() {
        // Head (job 1 after job 0 runs) wants the whole cluster at t=50;
        // a 60-tick backfill candidate must not start at 0 on the last
        // free node if that would push the head past 50. Our profile
        // encodes the head's reservation, so earliest_fit lands at 70.
        let jobs = vec![job(0, 3, 50), job(1, 4, 20), job(2, 1, 60)];
        let e = easy_backfill(&jobs, 4);
        assert_eq!(e.get(JobId::new(1)).unwrap().start.ticks(), 50);
        assert_eq!(e.get(JobId::new(2)).unwrap().start.ticks(), 70);
    }

    #[test]
    fn single_job_all_schedulers_agree() {
        let jobs = vec![job(0, 2, 30)];
        for schedule in [
            fcfs(&jobs, 4),
            conservative_backfill(&jobs, 4),
            easy_backfill(&jobs, 4),
        ] {
            assert_eq!(schedule.placements().len(), 1);
            assert_eq!(schedule.placements()[0].start, TimePoint::ZERO);
            assert_eq!(schedule.makespan().ticks(), 30);
        }
    }

    #[test]
    fn empty_queue_gives_empty_schedule() {
        assert!(fcfs(&[], 2).placements().is_empty());
        assert!(conservative_backfill(&[], 2).placements().is_empty());
        assert!(easy_backfill(&[], 2).placements().is_empty());
    }

    #[test]
    fn schedules_never_exceed_capacity() {
        let jobs: Vec<QueuedJob> = (0..30)
            .map(|i| job(i, 1 + (i as usize * 7 % 4), 5 + (i as i64 * 13) % 50))
            .collect();
        for schedule in [
            fcfs(&jobs, 4),
            conservative_backfill(&jobs, 4),
            easy_backfill(&jobs, 4),
        ] {
            // Re-play placements into a fresh profile; reserve() panics on
            // oversubscription.
            let mut p = CapacityProfile::new(4);
            let mut by_start = schedule.placements().to_vec();
            by_start.sort_by_key(|pl| pl.start);
            for pl in by_start {
                p.reserve(pl.start, pl.end - pl.start, pl.nodes);
            }
        }
    }
}
