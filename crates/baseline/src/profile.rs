//! Free-capacity profiles for the homogeneous cluster model.
//!
//! Classic backfilling (Mu'alem & Feitelson; the Maui scheduler) reasons
//! about a single cluster of identical nodes. A [`CapacityProfile`] tracks
//! how many nodes are free at every instant as a step function, supports
//! reservations, and answers "earliest time ≥ `from` where `n` nodes stay
//! free for `d` ticks" — the primitive all three baseline schedulers build
//! on.

use std::collections::BTreeMap;
use std::fmt;

use ecosched_core::{TimeDelta, TimePoint};

/// A step function of free node capacity over time, starting fully free.
///
/// # Examples
///
/// ```
/// use ecosched_baseline::CapacityProfile;
/// use ecosched_core::{TimeDelta, TimePoint};
///
/// let mut profile = CapacityProfile::new(4);
/// profile.reserve(TimePoint::new(0), TimeDelta::new(100), 3);
/// // A 2-node job must wait for the reservation to end.
/// assert_eq!(
///     profile.earliest_fit(TimePoint::new(0), 2, TimeDelta::new(10)),
///     TimePoint::new(100)
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapacityProfile {
    total: usize,
    /// Capacity deltas keyed by time; the running sum of deltas up to and
    /// including `t` gives the busy-node count at `t`.
    deltas: BTreeMap<TimePoint, i64>,
}

impl CapacityProfile {
    /// Creates a profile for a cluster of `total` identical nodes, all free.
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero.
    #[must_use]
    pub fn new(total: usize) -> Self {
        assert!(total > 0, "a cluster needs at least one node");
        CapacityProfile {
            total,
            deltas: BTreeMap::new(),
        }
    }

    /// Total node count.
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Free nodes at instant `t`.
    #[must_use]
    pub fn free_at(&self, t: TimePoint) -> usize {
        let busy: i64 = self.deltas.range(..=t).map(|(_, d)| *d).sum();
        debug_assert!(busy >= 0 && busy <= self.total as i64);
        self.total - busy as usize
    }

    /// Minimum free nodes over `[start, start + duration)`.
    #[must_use]
    pub fn min_free_over(&self, start: TimePoint, duration: TimeDelta) -> usize {
        let end = start + duration;
        let mut min_free = self.free_at(start);
        for (&t, _) in self.deltas.range((
            std::ops::Bound::Excluded(start),
            std::ops::Bound::Excluded(end),
        )) {
            min_free = min_free.min(self.free_at(t));
        }
        min_free
    }

    /// The earliest time ≥ `from` at which `nodes` stay free for
    /// `duration`. Always exists because the profile frees up completely
    /// after the last reservation.
    ///
    /// This is the quadratic heart of backfilling: each candidate anchor
    /// requires a scan over the change points it spans.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` exceeds the cluster size or `duration` is not
    /// positive.
    #[must_use]
    pub fn earliest_fit(&self, from: TimePoint, nodes: usize, duration: TimeDelta) -> TimePoint {
        assert!(
            nodes <= self.total,
            "requested {nodes} nodes from a {}-node cluster",
            self.total
        );
        assert!(duration.is_positive(), "duration must be positive");
        let mut candidates: Vec<TimePoint> = vec![from];
        candidates.extend(
            self.deltas
                .range((std::ops::Bound::Excluded(from), std::ops::Bound::Unbounded))
                .map(|(&t, _)| t),
        );
        for t in candidates {
            if self.min_free_over(t, duration) >= nodes {
                return t;
            }
        }
        unreachable!("after the last change point the whole cluster is free")
    }

    /// Reserves `nodes` nodes over `[start, start + duration)`.
    ///
    /// # Panics
    ///
    /// Panics if the reservation would exceed capacity anywhere in its
    /// span — callers must use [`CapacityProfile::earliest_fit`] first.
    pub fn reserve(&mut self, start: TimePoint, duration: TimeDelta, nodes: usize) {
        assert!(
            self.min_free_over(start, duration) >= nodes,
            "reservation exceeds free capacity"
        );
        *self.deltas.entry(start).or_insert(0) += nodes as i64;
        *self.deltas.entry(start + duration).or_insert(0) -= nodes as i64;
        // Keep the map minimal so scans stay proportional to reservations.
        self.deltas.retain(|_, d| *d != 0);
    }
}

impl fmt::Display for CapacityProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "profile({} nodes, {} change points)",
            self.total,
            self.deltas.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tp(t: i64) -> TimePoint {
        TimePoint::new(t)
    }

    fn td(t: i64) -> TimeDelta {
        TimeDelta::new(t)
    }

    #[test]
    fn fresh_profile_is_fully_free() {
        let p = CapacityProfile::new(4);
        assert_eq!(p.free_at(tp(0)), 4);
        assert_eq!(p.free_at(tp(1_000_000)), 4);
        assert_eq!(p.min_free_over(tp(0), td(100)), 4);
    }

    #[test]
    fn reserve_reduces_free_during_span_only() {
        let mut p = CapacityProfile::new(4);
        p.reserve(tp(10), td(20), 3);
        assert_eq!(p.free_at(tp(9)), 4);
        assert_eq!(p.free_at(tp(10)), 1);
        assert_eq!(p.free_at(tp(29)), 1);
        assert_eq!(p.free_at(tp(30)), 4);
    }

    #[test]
    fn min_free_sees_interior_dips() {
        let mut p = CapacityProfile::new(4);
        p.reserve(tp(50), td(10), 2);
        assert_eq!(p.min_free_over(tp(0), td(100)), 2);
        assert_eq!(p.min_free_over(tp(0), td(50)), 4);
        assert_eq!(p.min_free_over(tp(60), td(100)), 4);
    }

    #[test]
    fn earliest_fit_skips_congestion() {
        let mut p = CapacityProfile::new(4);
        p.reserve(tp(0), td(100), 3);
        // 2 nodes for 10 ticks can't fit before t=100.
        assert_eq!(p.earliest_fit(tp(0), 2, td(10)), tp(100));
        // 1 node fits immediately.
        assert_eq!(p.earliest_fit(tp(0), 1, td(10)), tp(0));
    }

    #[test]
    fn earliest_fit_respects_from() {
        let p = CapacityProfile::new(2);
        assert_eq!(p.earliest_fit(tp(42), 2, td(5)), tp(42));
    }

    #[test]
    fn earliest_fit_finds_gap_between_reservations() {
        let mut p = CapacityProfile::new(2);
        p.reserve(tp(0), td(10), 2);
        p.reserve(tp(50), td(10), 2);
        // A 40-tick 2-node job fits exactly in the gap [10, 50).
        assert_eq!(p.earliest_fit(tp(0), 2, td(40)), tp(10));
        // A 41-tick job must wait until after the second reservation.
        assert_eq!(p.earliest_fit(tp(0), 2, td(41)), tp(60));
    }

    #[test]
    fn stacked_reservations_accumulate() {
        let mut p = CapacityProfile::new(4);
        p.reserve(tp(0), td(50), 2);
        p.reserve(tp(0), td(50), 2);
        assert_eq!(p.free_at(tp(0)), 0);
        assert_eq!(p.earliest_fit(tp(0), 1, td(1)), tp(50));
    }

    #[test]
    #[should_panic(expected = "reservation exceeds free capacity")]
    fn over_reservation_panics() {
        let mut p = CapacityProfile::new(2);
        p.reserve(tp(0), td(10), 2);
        p.reserve(tp(5), td(10), 1);
    }

    #[test]
    #[should_panic(expected = "requested 3 nodes")]
    fn oversized_request_panics() {
        let p = CapacityProfile::new(2);
        let _ = p.earliest_fit(tp(0), 3, td(1));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", CapacityProfile::new(2)).is_empty());
    }
}
