//! Property tests for the baseline schedulers against brute-force oracles.

use ecosched_baseline::{conservative_backfill, easy_backfill, fcfs, BackfillWindow, QueuedJob};
use ecosched_core::{
    JobId, NodeId, Perf, Price, ResourceRequest, Slot, SlotId, SlotList, Span, TimeDelta, TimePoint,
};
use ecosched_select::{ScanStats, SlotSelector};
use proptest::prelude::*;

fn slot_list_strategy() -> impl Strategy<Value = SlotList> {
    prop::collection::vec((0i64..300, 30i64..250, 1000i64..3000), 1..25).prop_map(|entries| {
        let slots: Vec<Slot> = entries
            .into_iter()
            .enumerate()
            .map(|(i, (start, len, perf))| {
                Slot::new(
                    SlotId::new(i as u64),
                    NodeId::new(i as u32),
                    Perf::from_milli(perf),
                    Price::from_credits(1),
                    Span::new(TimePoint::new(start), TimePoint::new(start + len)).unwrap(),
                )
                .unwrap()
            })
            .collect();
        SlotList::from_slots(slots).unwrap()
    })
}

/// Oracle: the earliest anchor (over slot starts, ascending) at which `n`
/// distinct nodes can host the request, by exhaustive checking.
fn oracle_earliest(list: &SlotList, request: &ResourceRequest) -> Option<TimePoint> {
    for anchor_slot in list {
        let anchor = anchor_slot.start();
        let mut nodes = std::collections::HashSet::new();
        for s in list {
            if !s.perf().satisfies(request.min_perf()) {
                continue;
            }
            let runtime = request.runtime_on(s.perf());
            if !runtime.is_positive() {
                continue;
            }
            if s.start() <= anchor && anchor + runtime <= s.end() {
                nodes.insert(s.node());
            }
        }
        if nodes.len() >= request.nodes() {
            return Some(anchor);
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn backfill_window_matches_the_anchor_oracle(
        list in slot_list_strategy(),
        n in 1usize..4,
        t in 20i64..150,
        min_perf in 1000i64..2000,
    ) {
        let request = ResourceRequest::new(
            n,
            TimeDelta::new(t),
            Perf::from_milli(min_perf),
            Price::from_credits(1_000_000),
        )
        .unwrap();
        let mut stats = ScanStats::new();
        let found = BackfillWindow::new().find_window(&list, &request, &mut stats);
        match (found, oracle_earliest(&list, &request)) {
            (Some(w), Some(expected)) => prop_assert_eq!(w.start(), expected),
            (None, None) => {}
            (a, b) => prop_assert!(false, "oracle disagreement: {:?} vs {:?}", a.map(|w| w.start()), b),
        }
    }

    #[test]
    fn queue_scheduler_invariants(
        nodes in 2usize..8,
        specs in prop::collection::vec((1usize..8, 5i64..80), 1..20),
    ) {
        let jobs: Vec<QueuedJob> = specs
            .into_iter()
            .enumerate()
            .map(|(i, (n, d))| QueuedJob::new(JobId::new(i as u32), n.min(nodes), TimeDelta::new(d)))
            .collect();
        let f = fcfs(&jobs, nodes);
        let c = conservative_backfill(&jobs, nodes);
        let e = easy_backfill(&jobs, nodes);
        for schedule in [&f, &c, &e] {
            prop_assert_eq!(schedule.placements().len(), jobs.len());
            // Replaying placements into a profile panics on capacity
            // violations; do it manually.
            let mut profile = ecosched_baseline::CapacityProfile::new(nodes);
            let mut by_start = schedule.placements().to_vec();
            by_start.sort_by_key(|p| p.start);
            for p in by_start {
                prop_assert!(profile.min_free_over(p.start, p.end - p.start) >= p.nodes);
                profile.reserve(p.start, p.end - p.start, p.nodes);
            }
        }
        // Conservative never delays any job relative to FCFS.
        for job in &jobs {
            prop_assert!(c.get(job.id).unwrap().start <= f.get(job.id).unwrap().start);
        }
        // Conservative backfilling matches or beats FCFS's makespan (it
        // starts every job no later). EASY carries no such guarantee for
        // non-head jobs — a backfill may delay a later wide job — but the
        // queue head must never start later than under FCFS.
        prop_assert!(c.makespan() <= f.makespan());
        let head = jobs[0].id;
        prop_assert!(e.get(head).unwrap().start <= f.get(head).unwrap().start);
    }
}
