//! Histogram edge cases: empty histograms, out-of-range values,
//! saturation, and exact totals under concurrent recording
//! (loom-free: plain spawn + join + assert).

use ecosched_obs::{Buckets, Recorder, RegistryBuilder};

#[test]
fn zero_observations_render_cleanly() {
    let mut b = RegistryBuilder::new();
    let h = b.histogram("empty_us", "never observed", Buckets::pow2(1, 8));
    let reg = b.build();
    assert_eq!(reg.histogram_count(h), 0);
    assert_eq!(reg.histogram_sum(h), 0);
    assert!(reg.histogram_buckets(h).iter().all(|&c| c == 0));
    let text = reg.render_prometheus();
    assert!(text.contains("empty_us_bucket{le=\"+Inf\"} 0"));
    assert!(text.contains("empty_us_sum 0"));
    assert!(text.contains("empty_us_count 0"));
}

#[test]
fn value_below_first_bucket_lands_in_first() {
    let mut b = RegistryBuilder::new();
    let h = b.histogram("low_us", "low values", Buckets::explicit(&[10, 100]));
    let reg = b.build();
    reg.observe(h, 0);
    reg.observe(h, 3);
    let counts = reg.histogram_buckets(h);
    assert_eq!(counts, vec![2, 0, 0], "both land in the first bucket");
    assert_eq!(reg.histogram_sum(h), 3);
}

#[test]
fn value_above_last_bucket_lands_in_inf() {
    let mut b = RegistryBuilder::new();
    let h = b.histogram("high_us", "high values", Buckets::explicit(&[10, 100]));
    let reg = b.build();
    reg.observe(h, 100); // boundary: `le` is inclusive
    reg.observe(h, 101);
    reg.observe(h, u64::MAX);
    let counts = reg.histogram_buckets(h);
    assert_eq!(counts, vec![0, 1, 2], "over-range values go to +Inf");
    // Cumulative exposition still counts everything.
    let text = reg.render_prometheus();
    assert!(text.contains("high_us_bucket{le=\"100\"} 1"));
    assert!(text.contains("high_us_bucket{le=\"+Inf\"} 3"));
    assert!(text.contains("high_us_count 3"));
}

#[test]
fn sums_saturate_instead_of_wrapping() {
    let mut b = RegistryBuilder::new();
    let h = b.histogram("sat_us", "saturating sum", Buckets::explicit(&[1]));
    let reg = b.build();
    reg.observe(h, u64::MAX - 1);
    reg.observe(h, u64::MAX);
    assert_eq!(reg.histogram_sum(h), u64::MAX, "sum must pin, not wrap");
    assert_eq!(reg.histogram_count(h), 2, "count keeps counting");
    reg.observe(h, 5);
    assert_eq!(reg.histogram_sum(h), u64::MAX);
    assert_eq!(reg.histogram_count(h), 3);
}

#[test]
fn concurrent_recording_sums_exactly() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let mut b = RegistryBuilder::new();
    let h = b.histogram("conc_us", "concurrent", Buckets::pow2(1, 16));
    let c = b.counter("conc_total", "concurrent counter");
    let rec = Recorder::new(b.build());

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let rec = rec.clone();
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    // Deterministic per-thread values: thread t observes
                    // t+1 every time, so the exact total is known.
                    let _ = i;
                    rec.observe(h, t + 1);
                    rec.inc(c);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("worker thread must not panic");
    }

    let reg = rec.registry().expect("recorder is on");
    let expected_count = THREADS * PER_THREAD;
    // sum over t of (t+1) * PER_THREAD
    let expected_sum: u64 = (1..=THREADS).map(|v| v * PER_THREAD).sum();
    assert_eq!(reg.histogram_count(h), expected_count);
    assert_eq!(reg.histogram_sum(h), expected_sum);
    assert_eq!(reg.counter_value(c), expected_count);
    let bucket_total: u64 = reg.histogram_buckets(h).iter().sum();
    assert_eq!(bucket_total, expected_count, "no observation lost a bucket");
}
