//! Span tracing keyed on *virtual* time.
//!
//! Engine cycles emit one parent span per `CycleTick` with child spans
//! for the scan / optimize / commit phases (and one per repair pass);
//! every span carries the virtual tick it belongs to and an `items`
//! payload — never a wall-clock duration, so tracing stays a pure
//! observation of the deterministic run.
//!
//! Spans land in a bounded ring: once `capacity` spans are held, each
//! new span evicts the oldest. The ring lives behind a `Mutex` — the
//! recording side is the single engine thread (uncontended lock), and
//! the dump side is a scrape, so a lock-free MPSC would buy nothing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Monotone span id, unique within the tracer.
    pub id: u64,
    /// The enclosing span, if any.
    pub parent: Option<u64>,
    /// Virtual time (engine ticks) the span belongs to.
    pub time: i64,
    /// Phase name (`"cycle"`, `"scan"`, `"optimize"`, `"commit"`,
    /// `"repair"`, …).
    pub kind: &'static str,
    /// Phase-specific payload (slots examined, rows reused, leases
    /// committed, …).
    pub items: u64,
}

#[derive(Debug, Default)]
struct Ring {
    spans: Vec<SpanRecord>,
    /// Index of the oldest element once the ring has wrapped.
    head: usize,
    wrapped: bool,
}

/// The bounded span sink.
#[derive(Debug)]
pub struct Tracer {
    capacity: usize,
    next_id: AtomicU64,
    ring: Mutex<Ring>,
}

impl Tracer {
    /// A tracer holding at most `capacity` spans (oldest evicted first).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Tracer {
        Tracer {
            capacity: capacity.max(1),
            next_id: AtomicU64::new(0),
            ring: Mutex::new(Ring::default()),
        }
    }

    /// Records one completed span and returns its id (usable as the
    /// `parent` of children).
    pub fn span(&self, time: i64, kind: &'static str, parent: Option<u64>, items: u64) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let record = SpanRecord {
            id,
            parent,
            time,
            kind,
            items,
        };
        if let Ok(mut ring) = self.ring.lock() {
            if ring.spans.len() < self.capacity {
                ring.spans.push(record);
            } else {
                let head = ring.head;
                ring.spans[head] = record;
                ring.head = (head + 1) % self.capacity;
                ring.wrapped = true;
            }
        }
        id
    }

    /// Spans currently held, oldest first.
    #[must_use]
    pub fn spans(&self) -> Vec<SpanRecord> {
        let Ok(ring) = self.ring.lock() else {
            return Vec::new();
        };
        if !ring.wrapped {
            return ring.spans.clone();
        }
        let mut out = Vec::with_capacity(ring.spans.len());
        out.extend_from_slice(&ring.spans[ring.head..]);
        out.extend_from_slice(&ring.spans[..ring.head]);
        out
    }

    /// Number of spans currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.lock().map(|r| r.spans.len()).unwrap_or(0)
    }

    /// Whether the tracer holds no spans.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the held spans as NDJSON, one object per line, oldest
    /// first.
    #[must_use]
    pub fn dump_ndjson(&self) -> String {
        let mut out = String::new();
        for s in self.spans() {
            out.push_str("{\"span\":");
            out.push_str(&s.id.to_string());
            match s.parent {
                Some(p) => {
                    out.push_str(",\"parent\":");
                    out.push_str(&p.to_string());
                }
                None => out.push_str(",\"parent\":null"),
            }
            out.push_str(",\"time\":");
            out.push_str(&s.time.to_string());
            out.push_str(",\"kind\":\"");
            out.push_str(s.kind);
            out.push_str("\",\"items\":");
            out.push_str(&s.items.to_string());
            out.push_str("}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_link_parents_and_dump_in_order() {
        let t = Tracer::with_capacity(16);
        let cycle = t.span(100, "cycle", None, 0);
        t.span(100, "scan", Some(cycle), 42);
        assert_eq!(t.len(), 2);
        let spans = t.spans();
        assert_eq!(spans[0].id, cycle);
        assert_eq!(spans[1].parent, Some(cycle));
        let dump = t.dump_ndjson();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"cycle\""));
        assert!(lines[0].contains("\"parent\":null"));
        assert!(lines[1].contains(&format!("\"parent\":{cycle}")));
        assert!(lines[1].contains("\"items\":42"));
    }

    #[test]
    fn ring_evicts_oldest() {
        let t = Tracer::with_capacity(3);
        for i in 0..5 {
            t.span(i, "cycle", None, i as u64);
        }
        let spans = t.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(
            spans.iter().map(|s| s.time).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "oldest spans must be evicted first"
        );
    }
}
