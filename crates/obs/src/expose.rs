//! Rendering the frozen registry: Prometheus text exposition format
//! 0.0.4 for `GET /metrics`, and an ordered JSON tree for
//! `--metrics-dump` files and `GET /healthz` payloads.
//!
//! Rendering walks the atomic cells with relaxed loads — a scrape is a
//! point-in-time sample, not a consistent snapshot, and never blocks a
//! recording thread.

use std::fmt::Write as _;
use std::sync::atomic::Ordering;

use serde::Value;

use crate::registry::{MetricMeta, Registry};

/// Escapes a label value per the exposition format (backslash, quote,
/// newline).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Renders `{k="v",…}` (empty string when there are no labels), with an
/// optional extra label appended (the histogram `le`).
fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

fn render_f64(value: f64) -> String {
    if value == value.trunc() && value.abs() < 1e15 {
        format!("{value:.0}")
    } else {
        format!("{value}")
    }
}

/// Groups metrics by name so `# HELP`/`# TYPE` headers appear once per
/// family even when it has many label sets.
fn header_needed(prev: Option<&str>, name: &str) -> bool {
    prev != Some(name)
}

impl Registry {
    /// Renders every metric in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` headers per family, counter
    /// and gauge samples, and cumulative `_bucket{le=…}` / `_sum` /
    /// `_count` series per histogram.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut prev: Option<&str> = None;
        for c in &self.counters {
            if header_needed(prev, &c.meta.name) {
                let _ = writeln!(out, "# HELP {} {}", c.meta.name, c.meta.help);
                let _ = writeln!(out, "# TYPE {} counter", c.meta.name);
                prev = Some(&c.meta.name);
            }
            let _ = writeln!(
                out,
                "{}{} {}",
                c.meta.name,
                render_labels(&c.meta.labels, None),
                c.value.load(Ordering::Relaxed)
            );
        }
        prev = None;
        for g in &self.gauges {
            if header_needed(prev, &g.meta.name) {
                let _ = writeln!(out, "# HELP {} {}", g.meta.name, g.meta.help);
                let _ = writeln!(out, "# TYPE {} gauge", g.meta.name);
                prev = Some(&g.meta.name);
            }
            let _ = writeln!(
                out,
                "{}{} {}",
                g.meta.name,
                render_labels(&g.meta.labels, None),
                render_f64(f64::from_bits(g.value.load(Ordering::Relaxed)))
            );
        }
        prev = None;
        for h in &self.histograms {
            if header_needed(prev, &h.meta.name) {
                let _ = writeln!(out, "# HELP {} {}", h.meta.name, h.meta.help);
                let _ = writeln!(out, "# TYPE {} histogram", h.meta.name);
                prev = Some(&h.meta.name);
            }
            let mut cumulative: u64 = 0;
            for (i, bound) in h.bounds.iter().enumerate() {
                cumulative = cumulative.saturating_add(h.counts[i].load(Ordering::Relaxed));
                let le = bound.to_string();
                let _ = writeln!(
                    out,
                    "{}_bucket{} {cumulative}",
                    h.meta.name,
                    render_labels(&h.meta.labels, Some(("le", &le)))
                );
            }
            cumulative =
                cumulative.saturating_add(h.counts[h.bounds.len()].load(Ordering::Relaxed));
            let _ = writeln!(
                out,
                "{}_bucket{} {cumulative}",
                h.meta.name,
                render_labels(&h.meta.labels, Some(("le", "+Inf")))
            );
            let _ = writeln!(
                out,
                "{}_sum{} {}",
                h.meta.name,
                render_labels(&h.meta.labels, None),
                h.sum.load(Ordering::Relaxed)
            );
            let _ = writeln!(
                out,
                "{}_count{} {}",
                h.meta.name,
                render_labels(&h.meta.labels, None),
                h.observations.load(Ordering::Relaxed)
            );
        }
        out
    }

    /// Renders the registry as an ordered JSON [`Value`] tree:
    /// `{"counters": [...], "gauges": [...], "histograms": [...]}` with
    /// one `{name, labels, value}` object per metric.
    #[must_use]
    pub fn snapshot_value(&self) -> Value {
        fn labels_value(meta: &MetricMeta) -> Value {
            Value::Map(
                meta.labels
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                    .collect(),
            )
        }
        let counters: Vec<Value> = self
            .counters
            .iter()
            .map(|c| {
                Value::Map(vec![
                    ("name".into(), Value::Str(c.meta.name.clone())),
                    ("labels".into(), labels_value(&c.meta)),
                    ("value".into(), Value::UInt(c.value.load(Ordering::Relaxed))),
                ])
            })
            .collect();
        let gauges: Vec<Value> = self
            .gauges
            .iter()
            .map(|g| {
                Value::Map(vec![
                    ("name".into(), Value::Str(g.meta.name.clone())),
                    ("labels".into(), labels_value(&g.meta)),
                    (
                        "value".into(),
                        Value::Float(f64::from_bits(g.value.load(Ordering::Relaxed))),
                    ),
                ])
            })
            .collect();
        let histograms: Vec<Value> = self
            .histograms
            .iter()
            .map(|h| {
                let buckets: Vec<Value> = h.bounds.iter().map(|b| Value::UInt(*b)).collect();
                let counts: Vec<Value> = h
                    .counts
                    .iter()
                    .map(|c| Value::UInt(c.load(Ordering::Relaxed)))
                    .collect();
                Value::Map(vec![
                    ("name".into(), Value::Str(h.meta.name.clone())),
                    ("labels".into(), labels_value(&h.meta)),
                    ("bounds".into(), Value::Seq(buckets)),
                    ("counts".into(), Value::Seq(counts)),
                    ("sum".into(), Value::UInt(h.sum.load(Ordering::Relaxed))),
                    (
                        "count".into(),
                        Value::UInt(h.observations.load(Ordering::Relaxed)),
                    ),
                ])
            })
            .collect();
        Value::Map(vec![
            ("counters".into(), Value::Seq(counters)),
            ("gauges".into(), Value::Seq(gauges)),
            ("histograms".into(), Value::Seq(histograms)),
        ])
    }

    /// The JSON snapshot as a pretty-printed string.
    #[must_use]
    pub fn render_json(&self) -> String {
        serde_json::to_string_pretty(&self.snapshot_value()).unwrap_or_else(|_| "{}".to_string())
    }
}

#[cfg(test)]
mod tests {
    use crate::registry::{Buckets, RegistryBuilder};

    #[test]
    fn prometheus_text_covers_every_kind() {
        let mut b = RegistryBuilder::new();
        let c = b.counter_with("jobs_total", "Jobs seen", &[("shard", "0")]);
        let g = b.gauge("backlog", "Live backlog");
        let h = b.histogram("lat_us", "Latency (µs)", Buckets::explicit(&[1, 10, 100]));
        let reg = b.build();
        reg.counter_add(c, 7);
        reg.gauge_set(g, 3.0);
        reg.observe(h, 5);
        reg.observe(h, 5000);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE jobs_total counter"));
        assert!(text.contains("jobs_total{shard=\"0\"} 7"));
        assert!(text.contains("# TYPE backlog gauge"));
        assert!(text.contains("backlog 3"));
        assert!(text.contains("# TYPE lat_us histogram"));
        assert!(text.contains("lat_us_bucket{le=\"1\"} 0"));
        assert!(text.contains("lat_us_bucket{le=\"10\"} 1"));
        assert!(text.contains("lat_us_bucket{le=\"100\"} 1"));
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("lat_us_sum 5005"));
        assert!(text.contains("lat_us_count 2"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut b = RegistryBuilder::new();
        let c = b.counter_with("esc_total", "escaping", &[("p", "a\"b\\c\nd")]);
        let reg = b.build();
        reg.counter_inc(c);
        let text = reg.render_prometheus();
        assert!(text.contains("esc_total{p=\"a\\\"b\\\\c\\nd\"} 1"));
    }

    #[test]
    fn json_snapshot_round_trips_through_serde_json() {
        let mut b = RegistryBuilder::new();
        let c = b.counter("n_total", "n");
        b.histogram("h", "h", Buckets::pow2(1, 3));
        let reg = b.build();
        reg.counter_add(c, 3);
        let json = reg.render_json();
        let parsed: serde::Value = serde_json::from_str(&json).expect("valid JSON");
        let top = parsed.as_map().expect("top-level map");
        assert!(top.iter().any(|(k, _)| k == "counters"));
        assert!(top.iter().any(|(k, _)| k == "histograms"));
    }
}
