//! Deterministic observability for the ecosched stack: a lock-free
//! metrics registry, a virtual-time span tracer, and render paths for
//! Prometheus text exposition and JSON dumps.
//!
//! # Design contract
//!
//! Instrumentation must never change what a run does. Three rules
//! enforce that:
//!
//! * **Observe-only**: recording reads nothing an engine decision
//!   depends on — no RNG draws, no event-queue access, no wall-clock
//!   reads on hot paths. Values are pushed in by the instrumented
//!   layer; time keys are *virtual* ticks.
//! * **Runtime state, never serialized**: the [`Recorder`] handle is
//!   threaded like the engine's `Parallelism` budget — absent from
//!   configurations, fingerprints, checkpoints, and snapshots. A
//!   recorder-on run and a recorder-off run are byte-identical
//!   (pinned by engine/federation A/B tests downstream).
//! * **Registration before recording**: every metric is registered at
//!   startup through [`RegistryBuilder`], which hands out dense index
//!   ids; the frozen [`Registry`] records through those ids with one
//!   atomic per operation — no locks, no allocation, no name hashing.
//!
//! See `DESIGN.md` §17 for the registry layout and the exposition
//! format.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod expose;
mod recorder;
mod registry;
mod trace;

pub use recorder::{Recorder, DEFAULT_TRACE_CAPACITY};
pub use registry::{Buckets, CounterId, GaugeId, HistogramId, Registry, RegistryBuilder};
pub use trace::{SpanRecord, Tracer};
