//! The [`Recorder`] handle: the one observability object threaded
//! through the stack.
//!
//! A `Recorder` is either **off** (the default — every operation is a
//! no-op behind one branch on an `Option`) or **on**, wrapping an
//! `Arc<Registry>` plus a span [`Tracer`]. It is runtime state in the
//! same sense as the engine's `Parallelism` worker budget: cloned and
//! passed by value, never serialized, absent from every configuration
//! fingerprint and checkpoint. Turning it on or off must therefore be
//! invisible to any run's event log — the engine A/B tests pin exactly
//! that.

use std::sync::Arc;

use crate::registry::{CounterId, GaugeId, HistogramId, Registry};
use crate::trace::Tracer;

/// Default span-ring capacity when none is given.
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

#[derive(Debug)]
struct Inner {
    registry: Registry,
    tracer: Tracer,
}

/// A cheap, cloneable handle to the frozen registry and tracer — or a
/// no-op when observability is off.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// The disabled recorder: every operation is a no-op.
    #[must_use]
    pub fn off() -> Recorder {
        Recorder { inner: None }
    }

    /// Wraps a frozen registry with the default trace capacity.
    #[must_use]
    pub fn new(registry: Registry) -> Recorder {
        Recorder::with_trace_capacity(registry, DEFAULT_TRACE_CAPACITY)
    }

    /// Wraps a frozen registry with an explicit span-ring capacity.
    #[must_use]
    pub fn with_trace_capacity(registry: Registry, capacity: usize) -> Recorder {
        Recorder {
            inner: Some(Arc::new(Inner {
                registry,
                tracer: Tracer::with_capacity(capacity),
            })),
        }
    }

    /// Whether recording is enabled.
    #[must_use]
    pub fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    /// The registry, when on — for rendering and tests.
    #[must_use]
    pub fn registry(&self) -> Option<&Registry> {
        self.inner.as_deref().map(|i| &i.registry)
    }

    /// The tracer, when on.
    #[must_use]
    pub fn tracer(&self) -> Option<&Tracer> {
        self.inner.as_deref().map(|i| &i.tracer)
    }

    /// Adds to a counter (no-op when off).
    pub fn add(&self, id: CounterId, delta: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.counter_add(id, delta);
        }
    }

    /// Increments a counter (no-op when off).
    pub fn inc(&self, id: CounterId) {
        self.add(id, 1);
    }

    /// Raises a counter to at least `value` (no-op when off).
    pub fn raise_to(&self, id: CounterId, value: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.counter_raise_to(id, value);
        }
    }

    /// Sets a gauge (no-op when off).
    pub fn set(&self, id: GaugeId, value: f64) {
        if let Some(inner) = &self.inner {
            inner.registry.gauge_set(id, value);
        }
    }

    /// Observes a histogram value (no-op when off).
    pub fn observe(&self, id: HistogramId, value: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.observe(id, value);
        }
    }

    /// Records a span keyed on virtual time; returns its id, or `None`
    /// when off.
    pub fn span(
        &self,
        time: i64,
        kind: &'static str,
        parent: Option<u64>,
        items: u64,
    ) -> Option<u64> {
        self.inner
            .as_deref()
            .map(|i| i.tracer.span(time, kind, parent, items))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Buckets, RegistryBuilder};

    #[test]
    fn off_recorder_is_inert() {
        let rec = Recorder::off();
        assert!(!rec.is_on());
        assert!(rec.registry().is_none());
        assert!(rec.span(0, "cycle", None, 1).is_none());
        // No panic on any op with arbitrary ids.
        rec.inc(CounterId(7));
        rec.set(GaugeId(7), 1.0);
        rec.observe(HistogramId(7), 1);
    }

    #[test]
    fn on_recorder_records_and_shares() {
        let mut b = RegistryBuilder::new();
        let c = b.counter("c_total", "c");
        let h = b.histogram("h", "h", Buckets::pow2(1, 4));
        let rec = Recorder::new(b.build());
        let clone = rec.clone();
        rec.inc(c);
        clone.add(c, 2);
        clone.observe(h, 3);
        let reg = rec.registry().expect("on");
        assert_eq!(reg.counter_value(c), 3);
        assert_eq!(reg.histogram_count(h), 1);
        let parent = rec.span(10, "cycle", None, 0);
        assert_eq!(parent, Some(0));
        assert_eq!(rec.tracer().expect("on").len(), 1);
    }
}
