//! The metrics registry: counters, gauges, and log-scale histograms.
//!
//! Two phases, by design:
//!
//! 1. **Registration** (startup, single-threaded): a [`RegistryBuilder`]
//!    hands out typed index ids ([`CounterId`], [`GaugeId`],
//!    [`HistogramId`]) for every metric the process will ever record.
//! 2. **Recording** (hot path, any thread): the frozen [`Registry`] is
//!    addressed by those ids only — every operation is a single atomic
//!    on a pre-allocated cell. No locks, no allocation, no hashing, no
//!    wall-clock reads.
//!
//! Counters saturate at `u64::MAX` instead of wrapping, so a scrape can
//! never observe a monotonic series going backwards. Gauges store `f64`
//! bits in an `AtomicU64`. Histograms use caller-chosen fixed bucket
//! bounds (typically [`Buckets::pow2`], log-scale) plus an implicit
//! `+Inf` bucket, and expose cumulative counts in the Prometheus text
//! format.

use std::sync::atomic::{AtomicU64, Ordering};

/// Index of a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(pub(crate) u32);

/// Index of a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(pub(crate) u32);

/// Index of a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(pub(crate) u32);

/// Immutable metadata shared by every metric kind.
#[derive(Debug, Clone)]
pub(crate) struct MetricMeta {
    pub(crate) name: String,
    pub(crate) help: String,
    /// Label pairs, already rendered in registration order.
    pub(crate) labels: Vec<(String, String)>,
}

impl MetricMeta {
    fn new(name: &str, help: &str, labels: &[(&str, &str)]) -> MetricMeta {
        MetricMeta {
            name: name.to_string(),
            help: help.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }
}

#[derive(Debug)]
pub(crate) struct CounterCell {
    pub(crate) meta: MetricMeta,
    pub(crate) value: AtomicU64,
}

#[derive(Debug)]
pub(crate) struct GaugeCell {
    pub(crate) meta: MetricMeta,
    /// `f64` bits.
    pub(crate) value: AtomicU64,
}

#[derive(Debug)]
pub(crate) struct HistogramCell {
    pub(crate) meta: MetricMeta,
    /// Upper bounds of the finite buckets, strictly increasing.
    pub(crate) bounds: Vec<u64>,
    /// One count per finite bucket plus the trailing `+Inf` bucket.
    pub(crate) counts: Vec<AtomicU64>,
    /// Saturating sum of every observed value.
    pub(crate) sum: AtomicU64,
    /// Total number of observations (saturating).
    pub(crate) observations: AtomicU64,
}

/// Fixed histogram bucket bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Buckets {
    bounds: Vec<u64>,
}

impl Buckets {
    /// Explicit upper bounds; must be non-empty and strictly increasing.
    ///
    /// # Panics
    ///
    /// Panics (at registration time, never on the hot path) when the
    /// bounds are empty or not strictly increasing.
    #[must_use]
    pub fn explicit(bounds: &[u64]) -> Buckets {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Buckets {
            bounds: bounds.to_vec(),
        }
    }

    /// Power-of-two bounds `first, 2·first, 4·first, …` — `count` finite
    /// buckets of log-scale resolution (the usual latency shape).
    ///
    /// # Panics
    ///
    /// Panics when `first` is zero, `count` is zero, or the series would
    /// overflow `u64`.
    #[must_use]
    pub fn pow2(first: u64, count: usize) -> Buckets {
        assert!(first > 0 && count > 0, "pow2 buckets need first>0, count>0");
        let mut bounds = Vec::with_capacity(count);
        let mut bound = first;
        for i in 0..count {
            bounds.push(bound);
            if i + 1 < count {
                bound = bound.checked_mul(2).expect("pow2 bucket bound overflow");
            }
        }
        Buckets { bounds }
    }

    /// The finite upper bounds.
    #[must_use]
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }
}

/// The startup-time, mutable half of the registry.
#[derive(Debug, Default)]
pub struct RegistryBuilder {
    counters: Vec<CounterCell>,
    gauges: Vec<GaugeCell>,
    histograms: Vec<HistogramCell>,
}

impl RegistryBuilder {
    /// An empty builder.
    #[must_use]
    pub fn new() -> RegistryBuilder {
        RegistryBuilder::default()
    }

    /// Registers a monotonic counter without labels.
    pub fn counter(&mut self, name: &str, help: &str) -> CounterId {
        self.counter_with(name, help, &[])
    }

    /// Registers a monotonic counter with labels. Registering the same
    /// `(name, labels)` twice returns the existing id.
    pub fn counter_with(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) -> CounterId {
        let meta = MetricMeta::new(name, help, labels);
        if let Some(i) = self
            .counters
            .iter()
            .position(|c| c.meta.name == meta.name && c.meta.labels == meta.labels)
        {
            return CounterId(i as u32);
        }
        self.counters.push(CounterCell {
            meta,
            value: AtomicU64::new(0),
        });
        CounterId((self.counters.len() - 1) as u32)
    }

    /// Registers a gauge without labels.
    pub fn gauge(&mut self, name: &str, help: &str) -> GaugeId {
        self.gauge_with(name, help, &[])
    }

    /// Registers a gauge with labels. Registering the same
    /// `(name, labels)` twice returns the existing id.
    pub fn gauge_with(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) -> GaugeId {
        let meta = MetricMeta::new(name, help, labels);
        if let Some(i) = self
            .gauges
            .iter()
            .position(|g| g.meta.name == meta.name && g.meta.labels == meta.labels)
        {
            return GaugeId(i as u32);
        }
        self.gauges.push(GaugeCell {
            meta,
            value: AtomicU64::new(0f64.to_bits()),
        });
        GaugeId((self.gauges.len() - 1) as u32)
    }

    /// Registers a histogram without labels.
    pub fn histogram(&mut self, name: &str, help: &str, buckets: Buckets) -> HistogramId {
        self.histogram_with(name, help, buckets, &[])
    }

    /// Registers a histogram with labels. Registering the same
    /// `(name, labels)` twice returns the existing id (the first
    /// registration's buckets win).
    pub fn histogram_with(
        &mut self,
        name: &str,
        help: &str,
        buckets: Buckets,
        labels: &[(&str, &str)],
    ) -> HistogramId {
        let meta = MetricMeta::new(name, help, labels);
        if let Some(i) = self
            .histograms
            .iter()
            .position(|h| h.meta.name == meta.name && h.meta.labels == meta.labels)
        {
            return HistogramId(i as u32);
        }
        let finite = buckets.bounds.len();
        self.histograms.push(HistogramCell {
            meta,
            bounds: buckets.bounds,
            counts: (0..=finite).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            observations: AtomicU64::new(0),
        });
        HistogramId((self.histograms.len() - 1) as u32)
    }

    /// Freezes the builder into an index-addressed [`Registry`].
    #[must_use]
    pub fn build(self) -> Registry {
        Registry {
            counters: self.counters,
            gauges: self.gauges,
            histograms: self.histograms,
        }
    }
}

/// The frozen, lock-free registry. Recording is index-addressed: every
/// operation is one atomic on a cell allocated at registration time.
#[derive(Debug, Default)]
pub struct Registry {
    pub(crate) counters: Vec<CounterCell>,
    pub(crate) gauges: Vec<GaugeCell>,
    pub(crate) histograms: Vec<HistogramCell>,
}

fn saturating_fetch_add(cell: &AtomicU64, delta: u64) {
    if delta == 0 {
        return;
    }
    // fetch_update never fails with a `Some`-returning closure; the
    // saturation keeps monotonic series monotonic under any overflow.
    let _ = cell.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
        Some(v.saturating_add(delta))
    });
}

impl Registry {
    /// Adds `delta` to a counter (saturating).
    pub fn counter_add(&self, id: CounterId, delta: u64) {
        saturating_fetch_add(&self.counters[id.0 as usize].value, delta);
    }

    /// Increments a counter by one.
    pub fn counter_inc(&self, id: CounterId) {
        self.counter_add(id, 1);
    }

    /// Raises a counter to `value` if it is currently lower — the mirror
    /// operation for monotone sources of truth kept elsewhere (e.g. the
    /// federation's checkpointed routing counters).
    pub fn counter_raise_to(&self, id: CounterId, value: u64) {
        self.counters[id.0 as usize]
            .value
            .fetch_max(value, Ordering::Relaxed);
    }

    /// The current counter value.
    #[must_use]
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0 as usize].value.load(Ordering::Relaxed)
    }

    /// Sets a gauge.
    pub fn gauge_set(&self, id: GaugeId, value: f64) {
        self.gauges[id.0 as usize]
            .value
            .store(value.to_bits(), Ordering::Relaxed);
    }

    /// Adds to a gauge (compare-and-swap loop over the `f64` bits).
    pub fn gauge_add(&self, id: GaugeId, delta: f64) {
        let _ = self.gauges[id.0 as usize].value.fetch_update(
            Ordering::Relaxed,
            Ordering::Relaxed,
            |bits| Some((f64::from_bits(bits) + delta).to_bits()),
        );
    }

    /// The current gauge value.
    #[must_use]
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        f64::from_bits(self.gauges[id.0 as usize].value.load(Ordering::Relaxed))
    }

    /// Records one observation. Values above the last finite bound land
    /// in the `+Inf` bucket; values at or below the first bound land in
    /// the first.
    pub fn observe(&self, id: HistogramId, value: u64) {
        let h = &self.histograms[id.0 as usize];
        // Linear probe: bucket counts are small (≤ a few dozen) and the
        // branch predictor does better than a binary search here.
        let idx = h
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(h.bounds.len());
        saturating_fetch_add(&h.counts[idx], 1);
        saturating_fetch_add(&h.sum, value);
        saturating_fetch_add(&h.observations, 1);
    }

    /// Total observations recorded into a histogram.
    #[must_use]
    pub fn histogram_count(&self, id: HistogramId) -> u64 {
        self.histograms[id.0 as usize]
            .observations
            .load(Ordering::Relaxed)
    }

    /// Saturating sum of every value observed into a histogram.
    #[must_use]
    pub fn histogram_sum(&self, id: HistogramId) -> u64 {
        self.histograms[id.0 as usize].sum.load(Ordering::Relaxed)
    }

    /// Per-bucket (non-cumulative) counts, `+Inf` last.
    #[must_use]
    pub fn histogram_buckets(&self, id: HistogramId) -> Vec<u64> {
        self.histograms[id.0 as usize]
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Looks a counter up by `(name, labels)` — registration-time and
    /// test convenience, not a hot path.
    #[must_use]
    pub fn find_counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<CounterId> {
        self.counters
            .iter()
            .position(|c| meta_matches(&c.meta, name, labels))
            .map(|i| CounterId(i as u32))
    }

    /// Looks a gauge up by `(name, labels)`.
    #[must_use]
    pub fn find_gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<GaugeId> {
        self.gauges
            .iter()
            .position(|g| meta_matches(&g.meta, name, labels))
            .map(|i| GaugeId(i as u32))
    }

    /// Looks a histogram up by `(name, labels)`.
    #[must_use]
    pub fn find_histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<HistogramId> {
        self.histograms
            .iter()
            .position(|h| meta_matches(&h.meta, name, labels))
            .map(|i| HistogramId(i as u32))
    }
}

fn meta_matches(meta: &MetricMeta, name: &str, labels: &[(&str, &str)]) -> bool {
    meta.name == name
        && meta.labels.len() == labels.len()
        && meta
            .labels
            .iter()
            .zip(labels)
            .all(|((k, v), (lk, lv))| k == lk && v == lv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let mut b = RegistryBuilder::new();
        let a = b.counter("x_total", "x");
        let c = b.counter("x_total", "x");
        assert_eq!(a, c);
        let l1 = b.counter_with("y_total", "y", &[("shard", "0")]);
        let l2 = b.counter_with("y_total", "y", &[("shard", "1")]);
        assert_ne!(l1, l2);
        assert_eq!(l1, b.counter_with("y_total", "y", &[("shard", "0")]));
    }

    #[test]
    fn counters_saturate() {
        let mut b = RegistryBuilder::new();
        let id = b.counter("sat_total", "saturating");
        let reg = b.build();
        reg.counter_add(id, u64::MAX - 1);
        reg.counter_add(id, 5);
        assert_eq!(reg.counter_value(id), u64::MAX);
        reg.counter_inc(id);
        assert_eq!(reg.counter_value(id), u64::MAX);
    }

    #[test]
    fn counter_raise_to_is_monotone() {
        let mut b = RegistryBuilder::new();
        let id = b.counter("mono_total", "monotone mirror");
        let reg = b.build();
        reg.counter_raise_to(id, 10);
        reg.counter_raise_to(id, 7);
        assert_eq!(reg.counter_value(id), 10);
        reg.counter_raise_to(id, 12);
        assert_eq!(reg.counter_value(id), 12);
    }

    #[test]
    fn gauges_hold_floats() {
        let mut b = RegistryBuilder::new();
        let id = b.gauge("g", "gauge");
        let reg = b.build();
        reg.gauge_set(id, 1.5);
        reg.gauge_add(id, -0.25);
        assert!((reg.gauge_value(id) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn lookup_by_name_and_labels() {
        let mut b = RegistryBuilder::new();
        let c = b.counter_with("a_total", "a", &[("k", "v")]);
        let g = b.gauge("b", "b");
        let h = b.histogram("c", "c", Buckets::pow2(1, 4));
        let reg = b.build();
        assert_eq!(reg.find_counter("a_total", &[("k", "v")]), Some(c));
        assert_eq!(reg.find_counter("a_total", &[]), None);
        assert_eq!(reg.find_gauge("b", &[]), Some(g));
        assert_eq!(reg.find_histogram("c", &[]), Some(h));
    }
}
