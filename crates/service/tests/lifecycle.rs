//! Daemon lifecycle crash harness: spawns the real `ecosched-serve`
//! binary, drives it over a Unix socket, kills it with SIGKILL at
//! varied points under load, restarts it on the same data directory,
//! and asserts the durability contract — **no acknowledged job is ever
//! lost**, and the write-ahead log replays to a byte-identical event
//! log (`--verify`).

#![cfg(unix)]

use std::io::{BufRead as _, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use ecosched_service::{Client, Endpoint, JobSpec, Response};

const SERVE: &str = env!("CARGO_BIN_EXE_ecosched-serve");

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ecosched-lifecycle-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn easy_spec() -> JobSpec {
    JobSpec {
        nodes: 2,
        wall_ticks: 30,
        min_perf_milli: 1000,
        price_cap_micro: 10_000_000,
        deadline_tick: None,
    }
}

struct Daemon {
    child: Child,
    endpoint: Endpoint,
}

/// Spawns the daemon on `data_dir` and blocks until its READY line
/// (boot replay finished, socket accepting).
fn spawn_daemon(data_dir: &Path, socket: &Path) -> Daemon {
    let mut child = Command::new(SERVE)
        .arg("--data-dir")
        .arg(data_dir)
        .arg("--listen")
        .arg(format!("unix:{}", socket.display()))
        // Slow virtual clock so the horizon far outlasts every kill
        // point, and a short run with a bounded backlog so each
        // generation's resume replay and the final offline `--verify`
        // stay fast (durability semantics don't depend on scale).
        .args([
            "--ticks-per-sec",
            "200",
            "--cycles",
            "32",
            "--max-backlog",
            "32",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn ecosched-serve");
    let stdout = child.stdout.take().expect("daemon stdout");
    let mut lines = BufReader::new(stdout).lines();
    let ready = lines
        .next()
        .expect("daemon exited before READY")
        .expect("read READY line");
    assert!(ready.starts_with("READY "), "unexpected boot line: {ready}");
    // Drain any further stdout in the background so the pipe never fills.
    std::thread::spawn(move || for _ in lines {});
    let endpoint =
        Endpoint::parse(ready.trim_start_matches("READY ").trim()).expect("parse READY endpoint");
    Daemon { child, endpoint }
}

fn connect(endpoint: &Endpoint) -> Client {
    Client::connect(
        endpoint,
        Duration::from_millis(2000),
        20,
        Duration::from_millis(10),
    )
    .expect("connect to daemon")
}

/// Submits until `want` acks are recorded (retrying early market-empty
/// rejections), returning the acked `(shard, job, time)` triples.
fn submit_until(client: &mut Client, want: usize) -> Vec<(u32, u32, i64)> {
    let mut acked = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(10);
    while acked.len() < want {
        assert!(Instant::now() < deadline, "timed out collecting acks");
        match client.submit(easy_spec()) {
            Ok(Response::Accepted { shard, job, time }) => acked.push((shard, job, time)),
            Ok(Response::Rejected { .. }) => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Ok(other) => panic!("unexpected response: {other:?}"),
            Err(e) => panic!("submit failed: {e}"),
        }
    }
    acked
}

fn status(client: &mut Client) -> ecosched_service::DaemonStatus {
    match client.status().expect("status request") {
        Response::Status { status } => status,
        other => panic!("unexpected status response: {other:?}"),
    }
}

fn verify(data_dir: &Path) -> String {
    let out = Command::new(SERVE)
        .arg("--data-dir")
        .arg(data_dir)
        .arg("--verify")
        .output()
        .expect("run --verify");
    assert!(
        out.status.success(),
        "--verify failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).trim().to_owned()
}

#[test]
fn graceful_shutdown_and_resume() {
    let data_dir = scratch_dir("graceful");
    let socket = data_dir.join("sock");

    let mut daemon = spawn_daemon(&data_dir, &socket);
    let mut client = connect(&daemon.endpoint);
    let acked = submit_until(&mut client, 5);
    match client.shutdown().expect("shutdown request") {
        Response::ShuttingDown => {}
        other => panic!("unexpected shutdown response: {other:?}"),
    }
    let code = daemon.child.wait().expect("daemon exit");
    assert!(code.success(), "graceful exit should be clean: {code}");

    let mut daemon = spawn_daemon(&data_dir, &socket);
    let mut client = connect(&daemon.endpoint);
    let st = status(&mut client);
    assert_eq!(st.arrivals as usize, acked.len(), "all acked jobs resumed");
    let _ = client.shutdown();
    let _ = daemon.child.wait();

    let report = verify(&data_dir);
    assert!(report.starts_with("VERIFIED"), "{report}");
    assert!(report.contains("wal_entries=5"), "{report}");
}

#[test]
// The three-generation harness replays real multi-cycle scheduling
// histories four times over; debug binaries stretch that into many
// minutes. CI's service-smoke job runs this under --release.
#[cfg_attr(
    debug_assertions,
    ignore = "slow under the debug profile; run with --release"
)]
fn sigkill_under_load_never_loses_an_acked_job() {
    let data_dir = scratch_dir("sigkill");
    let socket = data_dir.join("sock");

    // Three crash-resume generations on one data directory, each killed
    // at a different point in the run (before the first cadence
    // snapshot, after it, and later still), each adding more load.
    let mut all_acked: Vec<(u32, u32, i64)> = Vec::new();
    for (generation, kill_after_ms) in [300u64, 900, 1800].into_iter().enumerate() {
        let mut daemon = spawn_daemon(&data_dir, &socket);
        let endpoint = daemon.endpoint.clone();

        // Resume check first: every previously acked job must be there.
        let mut client = connect(&endpoint);
        let st = status(&mut client);
        assert!(
            (st.arrivals as usize) >= all_acked.len(),
            "generation {generation}: resumed with {} arrivals, {} were acked",
            st.arrivals,
            all_acked.len()
        );

        // Load from a worker thread while the main thread aims the kill.
        let handle = std::thread::spawn(move || {
            let mut client = connect(&endpoint);
            let mut acked = Vec::new();
            loop {
                match client.submit(easy_spec()) {
                    Ok(Response::Accepted { shard, job, time }) => acked.push((shard, job, time)),
                    Ok(Response::Rejected { .. }) => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    // Daemon died mid-request (expected) or said
                    // something unexpected — either way the run is over.
                    _ => return acked,
                }
            }
        });

        std::thread::sleep(Duration::from_millis(kill_after_ms));
        daemon.child.kill().expect("SIGKILL daemon");
        let _ = daemon.child.wait();
        let acked = handle.join().expect("load thread");
        assert!(
            !acked.is_empty(),
            "generation {generation}: load thread never got an ack"
        );
        all_acked.extend(acked);
    }

    // Final restart: every ack from every generation must be present.
    let mut daemon = spawn_daemon(&data_dir, &socket);
    let mut client = connect(&daemon.endpoint);
    let st = status(&mut client);
    let highest = all_acked
        .iter()
        .map(|&(_, job, _)| job)
        .max()
        .expect("acks");
    assert!(
        st.arrivals > u64::from(highest),
        "job {highest} was acked but only {} arrivals survived",
        st.arrivals
    );
    assert!(
        (st.arrivals as usize) >= all_acked.len(),
        "{} acked in total, only {} arrivals survived",
        all_acked.len(),
        st.arrivals
    );
    let _ = client.shutdown();
    let _ = daemon.child.wait();

    // Byte-identical offline replay of the whole crash-scarred history.
    let report = verify(&data_dir);
    assert!(report.starts_with("VERIFIED"), "{report}");
    assert!(
        report.contains("dropped_lines=0") || report.contains("dropped_lines=1"),
        "{report}"
    );
}

#[test]
fn verify_rejects_a_tampered_wal() {
    let data_dir = scratch_dir("tamper");
    let socket = data_dir.join("sock");

    let mut daemon = spawn_daemon(&data_dir, &socket);
    let mut client = connect(&daemon.endpoint);
    let _ = submit_until(&mut client, 3);
    let _ = client.shutdown();
    let _ = daemon.child.wait();

    // Flip one digit inside the middle WAL entry's payload. The line
    // checksum catches it, trust stops there, and verification fails
    // because the shutdown snapshot now claims arrivals the truncated
    // WAL no longer vouches for.
    let wal = data_dir.join("wal.ndjson");
    let text = std::fs::read_to_string(&wal).expect("read wal");
    let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
    assert!(lines.len() >= 3);
    lines[1] = lines[1].replace("\"nodes\":2", "\"nodes\":9");
    std::fs::write(&wal, lines.join("\n") + "\n").expect("tamper wal");

    let out = Command::new(SERVE)
        .arg("--data-dir")
        .arg(&data_dir)
        .arg("--verify")
        .output()
        .expect("run --verify");
    assert!(
        !out.status.success(),
        "--verify must fail on a tampered WAL: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}
