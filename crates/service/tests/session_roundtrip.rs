//! In-process durability tests for [`ecosched_service::Session`]:
//! fresh boot, staged-then-committed submissions, crash-replay from the
//! WAL alone, snapshot+suffix resume, and offline verification — all
//! without sockets or child processes (the lifecycle harness covers
//! those).

use std::path::{Path, PathBuf};

use ecosched_select::Amp;
use ecosched_service::{
    verify_data_dir, BootMode, JobSpec, RejectReason, ServiceManifest, Session,
};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ecosched-session-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A spec virtually every generated node satisfies: minimum performance
/// at the generator floor, price cap above the generator ceiling
/// (`1.7^3 * 1.25 ≈ 6.1`), no deadline.
fn easy_spec() -> JobSpec {
    JobSpec {
        nodes: 2,
        wall_ticks: 30,
        min_perf_milli: 1000,
        price_cap_micro: 10_000_000,
        deadline_tick: None,
    }
}

fn open(dir: &Path) -> Session<Amp> {
    Session::open(dir, ServiceManifest::default(), Amp::new()).expect("session open")
}

#[test]
fn fresh_boot_submit_commit_advance_verify() {
    let dir = scratch_dir("fresh");
    let mut session = open(&dir);
    assert_eq!(*session.boot_mode(), BootMode::Fresh { replayed: 0 });

    // The market is empty until the first publication event runs.
    let rejected = session.submit(&easy_spec(), 0).unwrap_err();
    assert!(
        matches!(rejected, RejectReason::BudgetInfeasible { .. }),
        "pre-publication market should reject: {rejected}"
    );
    session.advance_to(0).expect("advance to t=0");

    let a = session.submit(&easy_spec(), 0).expect("first accept");
    let b = session.submit(&easy_spec(), 0).expect("second accept");
    assert_eq!((a.job, b.job), (0, 1), "job ids are arrival indices");

    // Staged-but-uncommitted submissions block advancement: an ack
    // could otherwise be lost between injection and fsync.
    assert!(session.advance_to(60).is_err());

    let acks = session.commit().expect("group commit");
    assert_eq!(acks, vec![a, b]);
    assert!(session.commit().expect("empty commit").is_empty());

    session
        .advance_to(250)
        .expect("advance past snapshot cadence");
    let c = session.submit(&easy_spec(), 250).expect("third accept");
    assert_eq!(c.job, 2);
    session.commit().expect("commit third");

    let status = session.status();
    assert_eq!(status.accepted_total, 3);
    assert_eq!(status.rejected_total, 1);

    let report = verify_data_dir(&dir).expect("offline verification");
    assert_eq!(report.wal_entries, 3);
    assert_eq!(report.wal_dropped_lines, 0);
    assert!(
        report.snapshot_events > 0,
        "default cadence (every 4 cycles) should have snapshotted by t=250"
    );
}

#[test]
fn crash_without_snapshot_replays_the_wal_exactly() {
    let dir = scratch_dir("wal-only");
    let (hash, accepted) = {
        let mut session = Session::open(
            &dir,
            ServiceManifest {
                // Cadence off: the WAL is the only durable record.
                snapshot_every_cycles: 0,
                ..ServiceManifest::default()
            },
            Amp::new(),
        )
        .expect("first open");
        session.advance_to(0).expect("advance");
        session.submit(&easy_spec(), 0).expect("accept 0");
        session.submit(&easy_spec(), 0).expect("accept 1");
        session.commit().expect("commit");
        let status = session.status();
        (status.log_hash, status.accepted_total)
        // Dropped here without shutdown: a crash after the acks.
    };

    let session = Session::open(
        &dir,
        ServiceManifest {
            snapshot_every_cycles: 0,
            ..ServiceManifest::default()
        },
        Amp::new(),
    )
    .expect("reopen after crash");
    assert_eq!(*session.boot_mode(), BootMode::Fresh { replayed: accepted });
    let status = session.status();
    assert_eq!(status.accepted_total, accepted, "no acked job lost");
    assert_eq!(
        status.log_hash, hash,
        "byte-identical event log after replay"
    );
}

#[test]
fn crash_after_snapshot_resumes_from_snapshot_plus_wal_suffix() {
    let dir = scratch_dir("snap-suffix");
    let hash = {
        let mut session = open(&dir);
        session.advance_to(0).expect("advance");
        session.submit(&easy_spec(), 0).expect("accept 0");
        session.commit().expect("commit");
        // Past t=180 the 4-cycle cadence has taken a snapshot; the next
        // submission exists only in the WAL suffix.
        let taken = session.advance_to(250).expect("advance");
        assert!(taken > 0, "cadence snapshot expected before t=250");
        session.submit(&easy_spec(), 250).expect("accept 1");
        session.commit().expect("commit");
        session.status().log_hash
    };

    let session = open(&dir);
    match session.boot_mode() {
        BootMode::Resumed {
            snapshot_events,
            replayed,
            snapshots_skipped,
            ..
        } => {
            assert!(*snapshot_events > 0);
            assert_eq!(*replayed, 1, "exactly the post-snapshot submission");
            assert_eq!(*snapshots_skipped, 0);
        }
        other => panic!("expected snapshot resume, got {other:?}"),
    }
    assert_eq!(session.status().accepted_total, 2);
    assert_eq!(session.status().log_hash, hash);

    let report = verify_data_dir(&dir).expect("offline verification");
    assert_eq!(report.wal_entries, 2);
    assert_eq!(report.acked_in_snapshot, 1);
}

#[test]
fn graceful_shutdown_then_reopen_is_clean_resume() {
    let dir = scratch_dir("graceful");
    let hash = {
        let mut session = open(&dir);
        session.advance_to(100).expect("advance");
        session.submit(&easy_spec(), 100).expect("accept");
        session.shutdown().expect("graceful shutdown");
        // Draining: everything after shutdown is refused.
        assert!(matches!(
            session.submit(&easy_spec(), 100),
            Err(RejectReason::ShuttingDown)
        ));
        session.status().log_hash
    };

    let session = open(&dir);
    match session.boot_mode() {
        BootMode::Resumed { replayed, .. } => {
            assert_eq!(*replayed, 0, "shutdown snapshot already held every arrival");
        }
        other => panic!("expected snapshot resume, got {other:?}"),
    }
    assert_eq!(session.status().log_hash, hash);
}

#[test]
fn sharded_session_routes_commits_and_crash_resumes_exactly() {
    let dir = scratch_dir("sharded");
    let sharded = ServiceManifest {
        shards: 2,
        route: ecosched_federation::RoutePolicy::RoundRobin,
        ..ServiceManifest::default()
    };
    let (hash, acks) = {
        let mut session = Session::open(&dir, sharded.clone(), Amp::new()).expect("sharded open");
        session.advance_to(0).expect("advance");
        let a = session.submit(&easy_spec(), 0).expect("accept 0");
        let b = session.submit(&easy_spec(), 0).expect("accept 1");
        // Round-robin spreads consecutive submissions; job ids are
        // shard-local arrival indices, so both are job 0 on their shard.
        assert_eq!((a.shard, a.job), (0, 0));
        assert_eq!((b.shard, b.job), (1, 0));
        session.commit().expect("commit");
        let taken = session.advance_to(250).expect("advance");
        assert!(taken > 0, "cadence snapshot expected before t=250");
        let c = session.submit(&easy_spec(), 250).expect("accept 2");
        assert_eq!((c.shard, c.job), (0, 1));
        session.commit().expect("commit suffix");
        (session.status().log_hash, vec![a, b, c])
        // Dropped without shutdown: a crash after the acks.
    };

    let session = Session::open(&dir, sharded, Amp::new()).expect("reopen after crash");
    match session.boot_mode() {
        BootMode::Resumed { replayed, .. } => {
            assert_eq!(*replayed, 1, "exactly the post-snapshot submission");
        }
        other => panic!("expected snapshot resume, got {other:?}"),
    }
    let status = session.status();
    assert_eq!(
        status.accepted_total,
        acks.len() as u64,
        "no acked job lost"
    );
    assert_eq!(
        status.log_hash, hash,
        "byte-identical merged log after sharded replay"
    );

    let report = verify_data_dir(&dir).expect("offline verification");
    assert_eq!(report.wal_entries, 3);
    assert_eq!(report.acked_in_snapshot, 2);
}

#[test]
fn torn_wal_tail_loses_only_unacked_work() {
    let dir = scratch_dir("torn");
    {
        let mut session = Session::open(
            &dir,
            ServiceManifest {
                snapshot_every_cycles: 0,
                ..ServiceManifest::default()
            },
            Amp::new(),
        )
        .expect("open");
        session.advance_to(0).expect("advance");
        session.submit(&easy_spec(), 0).expect("accept 0");
        session.submit(&easy_spec(), 0).expect("accept 1");
        session.commit().expect("commit");
    }

    // Simulate a torn final write: chop bytes off the last WAL line.
    let wal = ecosched_service::session::wal_path(&dir);
    let text = std::fs::read_to_string(&wal).expect("read wal");
    let keep = text.len() - 9;
    std::fs::write(&wal, &text.as_bytes()[..keep]).expect("tear wal");

    let mut session = Session::open(
        &dir,
        ServiceManifest {
            snapshot_every_cycles: 0,
            ..ServiceManifest::default()
        },
        Amp::new(),
    )
    .expect("reopen with torn tail");
    // The torn entry was never durable, so it was never acked; only the
    // intact prefix must survive.
    assert_eq!(*session.boot_mode(), BootMode::Fresh { replayed: 1 });
    assert_eq!(session.status().accepted_total, 1);

    // Regression: boot must have truncated the tear, so a new accepted
    // submission lands on the trusted prefix — not behind garbage that
    // would make the next load drop it.
    session.advance_to(0).expect("advance");
    session.submit(&easy_spec(), 0).expect("accept after tear");
    session.commit().expect("commit after tear");
    drop(session);

    let session = Session::open(
        &dir,
        ServiceManifest {
            snapshot_every_cycles: 0,
            ..ServiceManifest::default()
        },
        Amp::new(),
    )
    .expect("reopen again");
    assert_eq!(*session.boot_mode(), BootMode::Fresh { replayed: 2 });
    assert_eq!(session.status().accepted_total, 2);
}
