//! Admission control: typed accept/reject decisions against the live
//! run state, in the spirit of Libra's deadline/budget feasibility
//! screen.
//!
//! The daemon calls [`decide`] before injecting a submission. Checks run
//! cheapest-first and each rejection names its cause (see
//! [`RejectReason`]):
//!
//! 1. **validity** — the spec must convert to a well-formed request;
//! 2. **backpressure** — the scheduling backlog (pending jobs plus
//!    not-yet-processed arrivals) must stay under the configured bound,
//!    counting submissions already accepted in the current group-commit
//!    batch;
//! 3. **horizon** — virtual time must not be past the final cycle tick
//!    (a later submission could never be scheduled);
//! 4. **deadline feasibility** — if the spec carries a deadline, the
//!    earliest achievable completion (next cycle tick + wall time) must
//!    not overshoot it;
//! 5. **budget feasibility** — the current market must offer at least
//!    `nodes` distinct nodes with a live slot that satisfies the
//!    performance floor within the price cap. Under the AMP budget
//!    `S = C·t·N`, per-slot cap eligibility *is* affordability, so this
//!    single screen covers both. Optional (`admit_market`), because the
//!    market refreshes every cycle and a strict screen also sheds jobs a
//!    future publication could have hosted.
//!
//! Admission reads state but never mutates it and never draws
//! randomness, so it cannot perturb engine determinism.

use std::collections::BTreeSet;

use ecosched_core::{ResourceRequest, SlotList, TimePoint};
use serde::{Deserialize, Serialize};

use crate::protocol::{JobSpec, RejectReason};

/// The admission-control policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionPolicy {
    /// Reject submissions while the backlog is at or above this bound.
    /// The default (256) sits just above the saturation knee measured by
    /// `exp_online --saturate` (E15): halving the mean arrival gap from
    /// 2.5 to 1.25 ticks moves ALP's end-of-run backlog from 84 to 206,
    /// and the next halving explodes it to 595 while completions stall —
    /// past ~250 pending jobs, extra backlog only adds wait time, it
    /// does not add throughput.
    pub max_backlog: u64,
    /// Whether to run the market (budget-feasibility) screen.
    pub admit_market: bool,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            max_backlog: 256,
            admit_market: true,
        }
    }
}

/// The slice of run state admission reads.
#[derive(Debug)]
pub struct MarketView<'a> {
    /// Jobs waiting to be scheduled, summed across shards (see
    /// `RunState::backlog`).
    pub backlog: u64,
    /// The live vacant-slot market of every shard, in shard order.
    /// Service mode places each job on exactly one shard, so the
    /// budget screen asks whether *some* shard's market suffices — node
    /// and slot ids are shard-local and must not be pooled.
    pub markets: &'a [&'a SlotList],
    /// Current virtual time in ticks.
    pub now: i64,
    /// Ticks between cycle ticks.
    pub cycle_length: i64,
    /// The final cycle tick's time.
    pub horizon: i64,
}

impl MarketView<'_> {
    /// The next cycle tick at or after `now` (the earliest moment a new
    /// submission can be scheduled), saturating at the horizon.
    #[must_use]
    pub fn next_tick(&self) -> i64 {
        if self.now <= 0 {
            return 0;
        }
        let len = self.cycle_length.max(1);
        let ticks = ((self.now + len - 1) / len) * len;
        ticks.min(self.horizon)
    }
}

/// Decides one submission. `staged` is how many submissions were already
/// accepted into the current (not yet committed) batch — they count
/// against the backlog bound so a single burst cannot overshoot it.
///
/// # Errors
///
/// The typed [`RejectReason`]; nothing was persisted or mutated.
pub fn decide(
    policy: &AdmissionPolicy,
    view: &MarketView<'_>,
    spec: &JobSpec,
    staged: u64,
) -> Result<ResourceRequest, RejectReason> {
    let request = spec
        .to_request()
        .map_err(|detail| RejectReason::Malformed { detail })?;

    let backlog = view.backlog + staged;
    if backlog >= policy.max_backlog {
        return Err(RejectReason::BacklogFull {
            backlog,
            limit: policy.max_backlog,
        });
    }

    if view.now > view.horizon {
        return Err(RejectReason::BeyondHorizon {
            time: view.now,
            horizon: view.horizon,
        });
    }

    if let Some(deadline) = spec.deadline_tick {
        let earliest_finish = view.next_tick() + spec.wall_ticks;
        if deadline < earliest_finish {
            return Err(RejectReason::DeadlineInfeasible {
                deadline,
                earliest_finish,
            });
        }
    }

    if policy.admit_market {
        // Best single shard: the job lands on one shard, so the screen
        // passes iff some shard's market could host it.
        let eligible = view
            .markets
            .iter()
            .map(|vacant| eligible_nodes(vacant, &request, view.now))
            .max()
            .unwrap_or(0);
        if eligible < request.nodes() as u64 {
            return Err(RejectReason::BudgetInfeasible {
                needed_nodes: request.nodes() as u64,
                eligible_nodes: eligible,
            });
        }
    }

    Ok(request)
}

/// Distinct nodes offering a live (not yet expired) slot that satisfies
/// the request's performance floor within its price cap.
fn eligible_nodes(vacant: &SlotList, request: &ResourceRequest, now: i64) -> u64 {
    let now = TimePoint::new(now);
    let nodes: BTreeSet<_> = vacant
        .iter()
        .filter(|slot| slot.end() > now && request.perf_ok(slot) && request.price_ok(slot))
        .map(|slot| slot.node())
        .collect();
    nodes.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecosched_core::{NodeId, Perf, Price, Slot, SlotId, Span, TimePoint};

    fn market() -> SlotList {
        let mut slots = Vec::new();
        for n in 0..4u32 {
            let span = Span::new(TimePoint::new(0), TimePoint::new(100)).expect("span");
            slots.push(
                Slot::new(
                    SlotId::new(u64::from(n)),
                    NodeId::new(n),
                    Perf::UNIT,
                    Price::from_credits(2),
                    span,
                )
                .expect("slot"),
            );
        }
        SlotList::from_slots(slots).expect("list")
    }

    fn spec() -> JobSpec {
        JobSpec {
            nodes: 2,
            wall_ticks: 30,
            min_perf_milli: 1000,
            price_cap_micro: 3_000_000,
            deadline_tick: None,
        }
    }

    fn view<'a>(markets: &'a [&'a SlotList]) -> MarketView<'a> {
        MarketView {
            backlog: 0,
            markets,
            now: 10,
            cycle_length: 60,
            horizon: 600,
        }
    }

    #[test]
    fn accepts_feasible_spec() {
        let vacant = market();
        let markets = [&vacant];
        let policy = AdmissionPolicy::default();
        let request = decide(&policy, &view(&markets), &spec(), 0).expect("accepted");
        assert_eq!(request.nodes(), 2);
    }

    #[test]
    fn rejects_over_backlog_counting_staged() {
        let vacant = market();
        let markets = [&vacant];
        let policy = AdmissionPolicy {
            max_backlog: 4,
            ..AdmissionPolicy::default()
        };
        let mut v = view(&markets);
        v.backlog = 3;
        assert!(decide(&policy, &v, &spec(), 0).is_ok());
        let denied = decide(&policy, &v, &spec(), 1).unwrap_err();
        assert_eq!(
            denied,
            RejectReason::BacklogFull {
                backlog: 4,
                limit: 4
            }
        );
    }

    #[test]
    fn rejects_past_horizon() {
        let vacant = market();
        let markets = [&vacant];
        let mut v = view(&markets);
        v.now = 601;
        assert!(matches!(
            decide(&AdmissionPolicy::default(), &v, &spec(), 0),
            Err(RejectReason::BeyondHorizon { .. })
        ));
    }

    #[test]
    fn rejects_impossible_deadline() {
        let vacant = market();
        let markets = [&vacant];
        let v = view(&markets);
        // Next tick is 60; earliest finish 60 + 30 = 90.
        let tight = JobSpec {
            deadline_tick: Some(89),
            ..spec()
        };
        assert_eq!(
            decide(&AdmissionPolicy::default(), &v, &tight, 0).unwrap_err(),
            RejectReason::DeadlineInfeasible {
                deadline: 89,
                earliest_finish: 90
            }
        );
        let loose = JobSpec {
            deadline_tick: Some(90),
            ..spec()
        };
        assert!(decide(&AdmissionPolicy::default(), &v, &loose, 0).is_ok());
    }

    #[test]
    fn rejects_unaffordable_market() {
        let vacant = market();
        let markets = [&vacant];
        let v = view(&markets);
        let priced_out = JobSpec {
            price_cap_micro: 1_000_000, // every slot costs 2 credits
            ..spec()
        };
        assert_eq!(
            decide(&AdmissionPolicy::default(), &v, &priced_out, 0).unwrap_err(),
            RejectReason::BudgetInfeasible {
                needed_nodes: 2,
                eligible_nodes: 0
            }
        );
        // The market screen is optional.
        let lax = AdmissionPolicy {
            admit_market: false,
            ..AdmissionPolicy::default()
        };
        assert!(decide(&lax, &v, &priced_out, 0).is_ok());
    }

    #[test]
    fn rejects_more_nodes_than_market_offers() {
        let vacant = market();
        let markets = [&vacant];
        let v = view(&markets);
        let wide = JobSpec { nodes: 5, ..spec() };
        assert!(matches!(
            decide(&AdmissionPolicy::default(), &v, &wide, 0),
            Err(RejectReason::BudgetInfeasible {
                needed_nodes: 5,
                eligible_nodes: 4
            })
        ));
    }

    #[test]
    fn the_screen_passes_on_the_best_single_shard_not_the_pool() {
        // Two shards of 4 nodes each: a 5-node job fits neither alone,
        // and pooling shard-local node ids would double-count them.
        let (a, b) = (market(), market());
        let markets = [&a, &b];
        let v = view(&markets);
        let wide = JobSpec { nodes: 5, ..spec() };
        assert!(matches!(
            decide(&AdmissionPolicy::default(), &v, &wide, 0),
            Err(RejectReason::BudgetInfeasible {
                needed_nodes: 5,
                eligible_nodes: 4
            })
        ));
        let fits_one = JobSpec { nodes: 4, ..spec() };
        assert!(decide(&AdmissionPolicy::default(), &v, &fits_one, 0).is_ok());
    }

    #[test]
    fn malformed_specs_never_reach_the_market() {
        let vacant = market();
        let markets = [&vacant];
        let v = view(&markets);
        let bad = JobSpec { nodes: 0, ..spec() };
        assert!(matches!(
            decide(&AdmissionPolicy::default(), &v, &bad, 0),
            Err(RejectReason::Malformed { .. })
        ));
    }
}
