//! The write-ahead log: the durable record of every accepted
//! submission, sufficient to reproduce the daemon's event log exactly.
//!
//! Service mode sharpens the engine's determinism contract to: a run is
//! a pure function of `(config, seed, accepted-submission sequence)`,
//! where each accepted submission is identified by the number of events
//! the engine had processed when it was injected, its (clamped) arrival
//! time, and the spec. That triple is exactly one [`WalEntry`]. Replaying
//! the WAL through a fresh engine — stepping to each entry's injection
//! point, then injecting — reproduces a byte-identical event log; see
//! [`crate::replay`].
//!
//! On disk the WAL is append-only newline-delimited text. Each line is
//! `<16-hex FNV-1a 64 of payload> <payload JSON>`. Loading stops at the
//! first unparsable or checksum-failing line: a torn final line is an
//! interrupted append whose submission was never acknowledged (acks
//! happen only after fsync), so dropping it loses nothing a client was
//! promised. [`LoadedWal::trusted_bytes`] marks where trust ends; on
//! boot the session truncates the file there, so appends from the new
//! process extend the trusted prefix instead of hiding behind the torn
//! garbage (where the *next* load would refuse to read past them).

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read as _, Write as _};
use std::path::{Path, PathBuf};

use ecosched_engine::event::fnv1a_64;
use serde::{Deserialize, Serialize};

use crate::protocol::JobSpec;

/// One accepted submission, as recorded before its ack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalEntry {
    /// The shard the router placed this job on. Recovery replays the
    /// recorded decision verbatim instead of re-running the policy, so
    /// the replayed run cannot diverge even if shard state during replay
    /// transits orders the policy would decide differently on.
    pub shard: u32,
    /// The shard-local job id assigned at injection (the shard's
    /// arrival-stream index).
    pub job: u32,
    /// Merged-log events the federation had processed when this job was
    /// injected. The replayer steps to exactly this count before
    /// re-injecting, reproducing the live interleaving.
    pub injected_after: u64,
    /// The effective (clamped) virtual arrival time.
    pub time: i64,
    /// The submitted job.
    pub spec: JobSpec,
}

/// The result of loading a WAL from disk.
#[derive(Debug)]
pub struct LoadedWal {
    /// Entries in append order.
    pub entries: Vec<WalEntry>,
    /// Trailing lines dropped as torn or corrupt. Anything beyond 1 (a
    /// single interrupted append) indicates external damage.
    pub dropped_lines: usize,
    /// Byte length of the trusted prefix: every entry in `entries` lies
    /// below it, everything at or past it is torn or corrupt. A booting
    /// session truncates the file to this length before appending.
    pub trusted_bytes: u64,
}

/// An append-only WAL writer with group commit.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
}

impl Wal {
    /// Opens the WAL for appending, creating it if absent.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O failure.
    pub fn open_append(path: impl Into<PathBuf>) -> std::io::Result<Self> {
        let path = path.into();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Wal { file, path })
    }

    /// The file this WAL appends to.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends a batch of entries and fsyncs once (group commit). Only
    /// after this returns may the daemon acknowledge any entry in the
    /// batch.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O failure; on error the batch must
    /// not be acknowledged (the tail may be torn, which load tolerates).
    pub fn append_batch(&mut self, entries: &[WalEntry]) -> std::io::Result<()> {
        if entries.is_empty() {
            return Ok(());
        }
        let mut out = BufWriter::new(&self.file);
        for entry in entries {
            out.write_all(encode_entry(entry).as_bytes())?;
        }
        out.flush()?;
        drop(out);
        self.file.sync_data()
    }
}

/// Encodes one entry as its checksummed wire line (with newline).
fn encode_entry(entry: &WalEntry) -> String {
    let payload = serde_json::to_string(entry).unwrap_or_default();
    format!("{:016x} {payload}\n", fnv1a_64(payload.as_bytes()))
}

/// Parses one line; `None` for torn/corrupt lines.
fn decode_entry(line: &str) -> Option<WalEntry> {
    let (checksum, payload) = line.split_once(' ')?;
    let expected = u64::from_str_radix(checksum, 16).ok()?;
    if fnv1a_64(payload.as_bytes()) != expected {
        return None;
    }
    serde_json::from_str(payload).ok()
}

/// Loads a WAL, tolerating a torn tail. A missing file is an empty WAL.
///
/// # Errors
///
/// Propagates I/O failures other than the file not existing.
pub fn load_wal(path: &Path) -> std::io::Result<LoadedWal> {
    let mut text = String::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_string(&mut text)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(LoadedWal {
                entries: Vec::new(),
                dropped_lines: 0,
                trusted_bytes: 0,
            })
        }
        Err(e) => return Err(e),
    }
    let mut entries = Vec::new();
    let mut dropped = 0usize;
    let mut trusted_bytes = 0u64;
    for piece in text.split_inclusive('\n') {
        // A line without its newline is an interrupted append even when
        // the content happens to parse — the next append would fuse
        // with it, so it is not trusted.
        let complete = piece.ends_with('\n');
        let line = piece.trim_end_matches(['\n', '\r']);
        if line.is_empty() {
            if dropped == 0 && complete {
                trusted_bytes += piece.len() as u64;
            }
            continue;
        }
        match decode_entry(line) {
            // Entries are only trusted up to the first bad line: a torn
            // append means everything after it postdates the crash point.
            Some(entry) if dropped == 0 && complete => {
                entries.push(entry);
                trusted_bytes += piece.len() as u64;
            }
            _ => dropped += 1,
        }
    }
    Ok(LoadedWal {
        entries,
        dropped_lines: dropped,
        trusted_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(job: u32) -> WalEntry {
        WalEntry {
            shard: job % 2,
            job,
            injected_after: u64::from(job) * 3,
            time: i64::from(job) * 7,
            spec: JobSpec {
                nodes: 2,
                wall_ticks: 30,
                min_perf_milli: 1000,
                price_cap_micro: 1_500_000,
                deadline_tick: None,
            },
        }
    }

    fn scratch(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ecosched-wal-{tag}-{}.ndjson", std::process::id()))
    }

    #[test]
    fn round_trips_batches() {
        let path = scratch("roundtrip");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open_append(&path).unwrap();
        wal.append_batch(&[entry(0), entry(1)]).unwrap();
        wal.append_batch(&[]).unwrap();
        wal.append_batch(&[entry(2)]).unwrap();
        let loaded = load_wal(&path).unwrap();
        assert_eq!(loaded.entries, vec![entry(0), entry(1), entry(2)]);
        assert_eq!(loaded.dropped_lines, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let path = scratch("torn");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open_append(&path).unwrap();
        wal.append_batch(&[entry(0), entry(1)]).unwrap();
        // Simulate a crash mid-append: half a line at the tail.
        let mut text = std::fs::read_to_string(&path).unwrap();
        let intact = text.len() as u64;
        text.push_str("0123456789abcdef {\"job\":2,\"injected_aft");
        std::fs::write(&path, &text).unwrap();
        let loaded = load_wal(&path).unwrap();
        assert_eq!(loaded.entries, vec![entry(0), entry(1)]);
        assert_eq!(loaded.dropped_lines, 1);
        assert_eq!(loaded.trusted_bytes, intact, "trust ends at the tear");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_middle_line_stops_trust() {
        let path = scratch("middle");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open_append(&path).unwrap();
        wal.append_batch(&[entry(0), entry(1), entry(2)]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
        lines[1] = lines[1].replace("\"job\":1", "\"job\":9");
        std::fs::write(&path, lines.join("\n")).unwrap();
        let loaded = load_wal(&path).unwrap();
        assert_eq!(loaded.entries, vec![entry(0)]);
        assert_eq!(loaded.dropped_lines, 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_empty() {
        let loaded = load_wal(Path::new("/nonexistent/ecosched.wal")).unwrap();
        assert!(loaded.entries.is_empty());
    }
}
