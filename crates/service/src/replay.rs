//! Offline replay: reconstruct a daemon's run from `(manifest, WAL)`
//! alone and check it against the durable snapshots.
//!
//! Service-mode determinism says a run is a pure function of
//! `(config, seed, accepted-submission sequence)`. The WAL records that
//! sequence exactly — each entry's routed shard, merged-log injection
//! point, clamped arrival time, and spec — so a fresh federation
//! stepped through the same injections MUST reproduce the daemon's
//! merged event log byte-for-byte. [`verify_data_dir`] asserts
//! precisely that: the offline merged log's prefix equals the newest
//! snapshot's merged log (serialized JSON, hence hash), and every WAL
//! entry is reachable and re-injectable on its recorded shard. It is
//! the acceptance check the crash harness and the CI `service-smoke`
//! and `federation-smoke` jobs run after every kill.

use std::path::Path;

use ecosched_federation::{Federation, FederationState};
use ecosched_persist::FederatedSnapshotStore;
use ecosched_select::{Alp, Amp, SlotSelector};

use crate::error::ServiceError;
use crate::manifest::{load_manifest, SelectorChoice, ServiceManifest};
use crate::session::{reinject, snapshot_dir, wal_path};
use crate::wal::{load_wal, WalEntry};

/// The outcome of an offline verification pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// WAL entries replayed.
    pub wal_entries: u64,
    /// Trailing WAL lines dropped as torn (at most 1 after a crash).
    pub wal_dropped_lines: u64,
    /// Merged-log events in the newest usable snapshot (0 when none
    /// exists).
    pub snapshot_events: u64,
    /// Arrivals the snapshot already contained (summed over shards).
    pub acked_in_snapshot: u64,
    /// FNV-1a 64 hash of the offline merged log at the snapshot's event
    /// count (equal to the snapshot's own log hash — that is the
    /// assertion).
    pub log_hash: String,
}

/// Replays a WAL through a fresh federation: steps to each entry's
/// recorded merged-log injection point, re-injects on its recorded
/// shard, and returns the state positioned just after the last
/// injection.
///
/// # Errors
///
/// [`ServiceError::Diverged`] when an injection point is unreachable or
/// an entry re-injects differently than recorded.
pub fn replay_wal<S: SlotSelector + Copy>(
    fed: &Federation<S>,
    seed: u64,
    entries: &[WalEntry],
) -> Result<FederationState, ServiceError> {
    let mut state = fed.start(seed);
    for entry in entries {
        reinject(fed, &mut state, entry)?;
    }
    Ok(state)
}

/// Verifies a data directory: offline-replays the WAL from the seed and
/// checks byte-identity against the newest usable snapshot.
///
/// # Errors
///
/// [`ServiceError::Diverged`] on any mismatch; otherwise the underlying
/// manifest/persist/federation error.
pub fn verify_data_dir(data_dir: &Path) -> Result<VerifyReport, ServiceError> {
    let manifest = load_manifest(data_dir)?.ok_or_else(|| {
        ServiceError::Config(format!("{} has no manifest.json", data_dir.display()))
    })?;
    match manifest.selector {
        SelectorChoice::Amp => verify_with(data_dir, &manifest, Amp::new()),
        SelectorChoice::Alp => verify_with(data_dir, &manifest, Alp::new()),
    }
}

fn verify_with<S: SlotSelector + Copy>(
    data_dir: &Path,
    manifest: &ServiceManifest,
    selector: S,
) -> Result<VerifyReport, ServiceError> {
    let fed = Federation::new(manifest.fed_config(), selector)
        .map_err(|e| ServiceError::Config(e.to_string()))?;
    let loaded = load_wal(&wal_path(data_dir))?;
    let mut offline = replay_wal(&fed, manifest.seed, &loaded.entries)?;

    let store =
        FederatedSnapshotStore::open(snapshot_dir(data_dir), manifest.keep_snapshots.max(1))?;
    let Some(latest) = store.load_latest()? else {
        return Ok(VerifyReport {
            wal_entries: loaded.entries.len() as u64,
            wal_dropped_lines: loaded.dropped_lines as u64,
            snapshot_events: 0,
            acked_in_snapshot: 0,
            log_hash: offline.merged().fnv1a_hash(),
        });
    };

    // Step the offline run to the snapshot's merged-event count. The
    // snapshot may be *behind* the last injection (offline already past
    // it) or *ahead* (the daemon stepped on after its last accepted
    // job).
    let snapshot_events = latest.checkpoint.merged.len();
    while offline.merged().len() < snapshot_events {
        if fed.step(&mut offline)?.is_none() {
            return Err(ServiceError::Diverged(format!(
                "offline replay drained at {} merged events; snapshot has {snapshot_events}",
                offline.merged().len()
            )));
        }
    }

    // Byte-identity of the common prefix. Serialized JSON comparison ==
    // hash comparison, but diffing entries gives a better error.
    let offline_prefix = &offline.merged().entries[..snapshot_events.min(offline.merged().len())];
    if offline_prefix != latest.checkpoint.merged.entries.as_slice() {
        let first_bad = offline_prefix
            .iter()
            .zip(&latest.checkpoint.merged.entries)
            .position(|(a, b)| a != b);
        return Err(ServiceError::Diverged(format!(
            "offline merged log diverges from snapshot {} at event index {first_bad:?}",
            latest.path.display()
        )));
    }

    // Every snapshot arrival must be WAL-recorded (no phantom acks).
    let acked_in_snapshot: usize = latest
        .checkpoint
        .shards
        .iter()
        .map(|cp| cp.arrivals.len())
        .sum();
    if acked_in_snapshot > loaded.entries.len() {
        return Err(ServiceError::Diverged(format!(
            "snapshot holds {acked_in_snapshot} arrivals, WAL records only {}",
            loaded.entries.len()
        )));
    }

    Ok(VerifyReport {
        wal_entries: loaded.entries.len() as u64,
        wal_dropped_lines: loaded.dropped_lines as u64,
        snapshot_events: snapshot_events as u64,
        acked_in_snapshot: acked_in_snapshot as u64,
        log_hash: latest.checkpoint.merged.fnv1a_hash(),
    })
}
