//! Offline replay: reconstruct a daemon's run from `(manifest, WAL)`
//! alone and check it against the durable snapshots.
//!
//! Service-mode determinism says a run is a pure function of
//! `(config, seed, accepted-submission sequence)`. The WAL records that
//! sequence exactly — each entry's injection point, clamped arrival
//! time, and spec — so a fresh engine stepped through the same
//! injections MUST reproduce the daemon's event log byte-for-byte.
//! [`verify_data_dir`] asserts precisely that: the offline log's prefix
//! equals the newest snapshot's log (serialized JSON, hence hash), and
//! every WAL entry is reachable and re-injectable. It is the
//! acceptance check the crash harness and the CI `service-smoke` job
//! run after every kill.

use std::path::Path;

use ecosched_engine::{Engine, RunState};
use ecosched_persist::SnapshotStore;
use ecosched_select::{Alp, Amp, SlotSelector};

use crate::error::ServiceError;
use crate::manifest::{load_manifest, SelectorChoice, ServiceManifest};
use crate::session::{reinject, snapshot_dir, wal_path};
use crate::wal::{load_wal, WalEntry};

/// The outcome of an offline verification pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// WAL entries replayed.
    pub wal_entries: u64,
    /// Trailing WAL lines dropped as torn (at most 1 after a crash).
    pub wal_dropped_lines: u64,
    /// Events in the newest usable snapshot (0 when none exists).
    pub snapshot_events: u64,
    /// Arrivals the snapshot already contained.
    pub acked_in_snapshot: u64,
    /// FNV-1a 64 hash of the offline log at the snapshot's event count
    /// (equal to the snapshot's own log hash — that is the assertion).
    pub log_hash: String,
}

/// Replays a WAL through a fresh engine: steps to each entry's recorded
/// injection point, injects, and returns the state positioned just
/// after the last injection.
///
/// # Errors
///
/// [`ServiceError::Diverged`] when an injection point is unreachable or
/// an entry re-injects differently than recorded.
pub fn replay_wal<S: SlotSelector + Copy>(
    engine: &Engine<S>,
    seed: u64,
    entries: &[WalEntry],
) -> Result<RunState, ServiceError> {
    let mut state = engine.start(seed);
    for entry in entries {
        reinject(engine, &mut state, entry)?;
    }
    Ok(state)
}

/// Verifies a data directory: offline-replays the WAL from the seed and
/// checks byte-identity against the newest usable snapshot.
///
/// # Errors
///
/// [`ServiceError::Diverged`] on any mismatch; otherwise the underlying
/// manifest/persist/engine error.
pub fn verify_data_dir(data_dir: &Path) -> Result<VerifyReport, ServiceError> {
    let manifest = load_manifest(data_dir)?.ok_or_else(|| {
        ServiceError::Config(format!("{} has no manifest.json", data_dir.display()))
    })?;
    match manifest.selector {
        SelectorChoice::Amp => verify_with(data_dir, &manifest, Amp::new()),
        SelectorChoice::Alp => verify_with(data_dir, &manifest, Alp::new()),
    }
}

fn verify_with<S: SlotSelector + Copy>(
    data_dir: &Path,
    manifest: &ServiceManifest,
    selector: S,
) -> Result<VerifyReport, ServiceError> {
    let engine = Engine::new(manifest.config.clone(), selector)
        .map_err(|e| ServiceError::Config(e.to_string()))?;
    let loaded = load_wal(&wal_path(data_dir))?;
    let mut offline = replay_wal(&engine, manifest.seed, &loaded.entries)?;

    let store = SnapshotStore::open(snapshot_dir(data_dir), manifest.keep_snapshots.max(1))?;
    let Some(latest) = store.load_latest()? else {
        return Ok(VerifyReport {
            wal_entries: loaded.entries.len() as u64,
            wal_dropped_lines: loaded.dropped_lines as u64,
            snapshot_events: 0,
            acked_in_snapshot: 0,
            log_hash: offline.log().fnv1a_hash(),
        });
    };

    // Step the offline run to the snapshot's event count. The snapshot
    // may be *behind* the last injection (offline already past it) or
    // *ahead* (the daemon stepped on after its last accepted job).
    let snapshot_events = latest.checkpoint.log.len();
    while offline.events_processed() < snapshot_events {
        if engine.step(&mut offline)?.is_none() {
            return Err(ServiceError::Diverged(format!(
                "offline replay drained at {} events; snapshot has {snapshot_events}",
                offline.events_processed()
            )));
        }
    }

    // Byte-identity of the common prefix. Serialized JSON comparison ==
    // hash comparison, but diffing entries gives a better error.
    let offline_prefix = &offline.log().entries[..snapshot_events.min(offline.events_processed())];
    if offline_prefix != latest.checkpoint.log.entries.as_slice() {
        let first_bad = offline_prefix
            .iter()
            .zip(&latest.checkpoint.log.entries)
            .position(|(a, b)| a != b);
        return Err(ServiceError::Diverged(format!(
            "offline log diverges from snapshot {} at event index {first_bad:?}",
            latest.path.display()
        )));
    }

    // Every snapshot arrival must be WAL-recorded (no phantom acks).
    let acked_in_snapshot = latest.checkpoint.arrivals.len();
    if acked_in_snapshot > loaded.entries.len() {
        return Err(ServiceError::Diverged(format!(
            "snapshot holds {acked_in_snapshot} arrivals, WAL records only {}",
            loaded.entries.len()
        )));
    }

    Ok(VerifyReport {
        wal_entries: loaded.entries.len() as u64,
        wal_dropped_lines: loaded.dropped_lines as u64,
        snapshot_events: snapshot_events as u64,
        acked_in_snapshot: acked_in_snapshot as u64,
        log_hash: latest.checkpoint.log.fnv1a_hash(),
    })
}
