//! Minimal SIGTERM/SIGINT latching without a libc dependency.
//!
//! The daemon needs exactly one bit from the OS: "a termination signal
//! arrived". The handler only stores to an atomic (async-signal-safe);
//! the serve loop polls [`term_requested`] between batches and performs
//! the graceful snapshot-and-exit itself. `SIGKILL` is, by design,
//! unhandleable — that path is covered by the write-ahead log and the
//! crash-resume tests instead.

use std::sync::atomic::{AtomicBool, Ordering};

static TERM_FLAG: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    /// POSIX `signal(2)`. The vendored dependency set has no libc
    /// crate, so the one symbol needed is declared directly; it is part
    /// of every libc this workspace builds against.
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn latch_term(_signum: i32) {
    TERM_FLAG.store(true, Ordering::SeqCst);
}

/// Installs the latching handler for SIGTERM and SIGINT. Idempotent.
pub fn install_term_handler() {
    let handler = latch_term as extern "C" fn(i32);
    // SAFETY: `signal` is the POSIX API; the handler is a plain
    // `extern "C" fn(i32)` that only stores to a static atomic, which
    // is async-signal-safe.
    unsafe {
        signal(SIGTERM, handler as usize);
        signal(SIGINT, handler as usize);
    }
}

/// Whether a termination signal has arrived since startup.
#[must_use]
pub fn term_requested() -> bool {
    TERM_FLAG.load(Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_latches() {
        install_term_handler();
        assert!(!term_requested());
        latch_term(SIGTERM);
        assert!(term_requested());
    }
}
