//! `ecosched-serve`: the scheduling daemon.
//!
//! ```text
//! ecosched-serve --data-dir DIR --listen tcp:127.0.0.1:0
//!     [--seed N] [--cycles N] [--cycle-length T] [--algo amp|alp]
//!     [--shards S] [--route round-robin|least-backlog|cheapest-probe]
//!     [--churn P] [--ticks-per-sec F] [--snapshot-every N]
//!     [--keep-snapshots K] [--max-backlog N] [--no-market-admission]
//! ecosched-serve --data-dir DIR --verify
//! ```
//!
//! Scheduling flags configure a *fresh* data directory; an existing
//! directory's stored manifest pins the engine identity and the flags
//! are ignored. `--verify` replays the write-ahead log offline and
//! checks byte-identity against the newest snapshot, then exits.

use std::path::PathBuf;
use std::process::ExitCode;

use ecosched_engine::ArrivalConfig;
use ecosched_federation::RoutePolicy;
use ecosched_service::{
    serve, verify_data_dir, Endpoint, SelectorChoice, ServeOptions, ServiceManifest,
};
use ecosched_sim::RevocationConfig;

struct Args {
    data_dir: PathBuf,
    listen: Option<Endpoint>,
    metrics: Option<Endpoint>,
    verify: bool,
    manifest: ServiceManifest,
    ticks_per_sec: f64,
}

fn usage(detail: &str) -> String {
    format!(
        "{detail}\nusage: ecosched-serve --data-dir DIR (--listen tcp:ADDR|unix:PATH | --verify)\n\
         \x20  [--metrics tcp:ADDR|unix:PATH] [--seed N] [--cycles N] [--cycle-length T]\n\
         \x20  [--algo amp|alp] [--churn P]\n\
         \x20  [--shards S] [--route round-robin|least-backlog|cheapest-probe]\n\
         \x20  [--ticks-per-sec F] [--snapshot-every N] [--keep-snapshots K]\n\
         \x20  [--max-backlog N] [--no-market-admission]"
    )
}

fn parse_args() -> Result<Args, String> {
    let mut data_dir: Option<PathBuf> = None;
    let mut listen: Option<Endpoint> = None;
    let mut metrics: Option<Endpoint> = None;
    let mut verify = false;
    let mut manifest = ServiceManifest::default();
    let mut ticks_per_sec = 1000.0f64;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| -> Result<String, String> {
            args.next()
                .ok_or_else(|| usage(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--data-dir" => data_dir = Some(PathBuf::from(value("--data-dir")?)),
            "--listen" => {
                listen = Some(Endpoint::parse(&value("--listen")?).map_err(|e| usage(&e))?)
            }
            "--metrics" => {
                metrics = Some(Endpoint::parse(&value("--metrics")?).map_err(|e| usage(&e))?)
            }
            "--verify" => verify = true,
            "--seed" => {
                manifest.seed = value("--seed")?.parse().map_err(|_| usage("bad --seed"))?;
            }
            "--cycles" => {
                manifest.config.cycles = value("--cycles")?
                    .parse()
                    .map_err(|_| usage("bad --cycles"))?;
            }
            "--cycle-length" => {
                manifest.config.cycle_length = value("--cycle-length")?
                    .parse()
                    .map_err(|_| usage("bad --cycle-length"))?;
            }
            "--algo" => {
                manifest.selector = match value("--algo")?.as_str() {
                    "amp" => SelectorChoice::Amp,
                    "alp" => SelectorChoice::Alp,
                    other => return Err(usage(&format!("unknown --algo {other}"))),
                };
            }
            "--shards" => {
                manifest.shards = value("--shards")?
                    .parse()
                    .map_err(|_| usage("bad --shards"))?;
            }
            "--route" => {
                let name = value("--route")?;
                manifest.route = RoutePolicy::parse(&name)
                    .ok_or_else(|| usage(&format!("unknown --route {name}")))?;
            }
            "--churn" => {
                let p: f64 = value("--churn")?
                    .parse()
                    .map_err(|_| usage("bad --churn"))?;
                manifest.config.revocation = if p > 0.0 {
                    RevocationConfig::per_slot(p)
                } else {
                    RevocationConfig::none()
                };
            }
            "--ticks-per-sec" => {
                ticks_per_sec = value("--ticks-per-sec")?
                    .parse()
                    .map_err(|_| usage("bad --ticks-per-sec"))?;
            }
            "--snapshot-every" => {
                manifest.snapshot_every_cycles = value("--snapshot-every")?
                    .parse()
                    .map_err(|_| usage("bad --snapshot-every"))?;
            }
            "--keep-snapshots" => {
                manifest.keep_snapshots = value("--keep-snapshots")?
                    .parse()
                    .map_err(|_| usage("bad --keep-snapshots"))?;
            }
            "--max-backlog" => {
                manifest.admission.max_backlog = value("--max-backlog")?
                    .parse()
                    .map_err(|_| usage("bad --max-backlog"))?;
            }
            "--no-market-admission" => manifest.admission.admit_market = false,
            other => return Err(usage(&format!("unknown flag {other}"))),
        }
    }

    let data_dir = data_dir.ok_or_else(|| usage("--data-dir is required"))?;
    if !verify && listen.is_none() {
        return Err(usage("--listen is required (or pass --verify)"));
    }
    // Service mode owns the job stream.
    manifest.config.arrivals = ArrivalConfig::External;
    Ok(Args {
        data_dir,
        listen,
        metrics,
        verify,
        manifest,
        ticks_per_sec,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };

    if args.verify {
        return match verify_data_dir(&args.data_dir) {
            Ok(report) => {
                println!(
                    "VERIFIED wal_entries={} dropped_lines={} snapshot_events={} \
                     acked_in_snapshot={} log_hash={}",
                    report.wal_entries,
                    report.wal_dropped_lines,
                    report.snapshot_events,
                    report.acked_in_snapshot,
                    report.log_hash
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("verification failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let options = ServeOptions {
        data_dir: args.data_dir,
        listen: args.listen.unwrap_or(Endpoint::Tcp("127.0.0.1:0".into())),
        ticks_per_sec: args.ticks_per_sec,
        manifest: Some(args.manifest),
        metrics: args.metrics,
    };
    match serve(&options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ecosched-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
