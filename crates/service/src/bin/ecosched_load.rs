//! `ecosched-load`: a closed-loop load generator for `ecosched-serve`.
//!
//! ```text
//! ecosched-load --connect tcp:HOST:PORT|unix:PATH --jobs N
//!     [--threads T] [--timeout-ms MS] [--acked-out FILE]
//!     [--nodes N] [--wall T] [--price-cap-micro P] [--deadline-slack T]
//!     [--json]
//! ```
//!
//! Each worker thread keeps exactly one request in flight (closed
//! loop): connect with bounded exponential backoff, submit, await the
//! ack, repeat. Per-request outcomes are bucketed as accepted,
//! rejected-by-reason, or **lost** — an I/O error or timeout after the
//! request was written, meaning the client cannot know whether the
//! daemon acked (exactly the window the crash harness SIGKILLs in).
//! The summary line reports counts and p50/p99/max ack latency;
//! `--json` emits the same summary as one machine-readable JSON line
//! instead.
//!
//! `--acked-out FILE` appends one `shard job_id time` line per accepted
//! job —
//! the ground truth the zero-acked-loss check compares a resumed
//! daemon against.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ecosched_service::{Client, Endpoint, JobSpec, Response};

struct Args {
    connect: Endpoint,
    jobs: u64,
    threads: u64,
    timeout: Duration,
    acked_out: Option<PathBuf>,
    spec: JobSpec,
    deadline_slack: Option<i64>,
    json: bool,
}

fn usage(detail: &str) -> String {
    format!(
        "{detail}\nusage: ecosched-load --connect tcp:ADDR|unix:PATH --jobs N [--threads T]\n\
         \x20  [--timeout-ms MS] [--acked-out FILE] [--nodes N] [--wall T]\n\
         \x20  [--price-cap-micro P] [--deadline-slack T] [--json]"
    )
}

fn parse_args() -> Result<Args, String> {
    let mut connect = None;
    let mut jobs = 100u64;
    let mut threads = 4u64;
    let mut timeout = Duration::from_millis(2000);
    let mut acked_out = None;
    let mut deadline_slack = None;
    let mut json = false;
    let mut spec = JobSpec {
        nodes: 2,
        wall_ticks: 30,
        min_perf_milli: 1000,
        price_cap_micro: 5_000_000,
        deadline_tick: None,
    };

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| -> Result<String, String> {
            args.next()
                .ok_or_else(|| usage(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--connect" => {
                connect = Some(Endpoint::parse(&value("--connect")?).map_err(|e| usage(&e))?)
            }
            "--jobs" => jobs = value("--jobs")?.parse().map_err(|_| usage("bad --jobs"))?,
            "--threads" => {
                threads = value("--threads")?
                    .parse()
                    .map_err(|_| usage("bad --threads"))?
            }
            "--timeout-ms" => {
                let ms: u64 = value("--timeout-ms")?
                    .parse()
                    .map_err(|_| usage("bad --timeout-ms"))?;
                timeout = Duration::from_millis(ms.max(1));
            }
            "--acked-out" => acked_out = Some(PathBuf::from(value("--acked-out")?)),
            "--nodes" => {
                spec.nodes = value("--nodes")?
                    .parse()
                    .map_err(|_| usage("bad --nodes"))?
            }
            "--wall" => {
                spec.wall_ticks = value("--wall")?.parse().map_err(|_| usage("bad --wall"))?
            }
            "--price-cap-micro" => {
                spec.price_cap_micro = value("--price-cap-micro")?
                    .parse()
                    .map_err(|_| usage("bad --price-cap-micro"))?;
            }
            "--deadline-slack" => {
                deadline_slack = Some(
                    value("--deadline-slack")?
                        .parse()
                        .map_err(|_| usage("bad --deadline-slack"))?,
                );
            }
            "--json" => json = true,
            other => return Err(usage(&format!("unknown flag {other}"))),
        }
    }
    let connect = connect.ok_or_else(|| usage("--connect is required"))?;
    Ok(Args {
        connect,
        jobs,
        threads: threads.clamp(1, 64),
        timeout,
        acked_out,
        spec,
        deadline_slack,
        json,
    })
}

#[derive(Default)]
struct Tally {
    accepted: u64,
    rejected_backlog: u64,
    rejected_budget: u64,
    rejected_deadline: u64,
    rejected_horizon: u64,
    rejected_other: u64,
    lost: u64,
    latencies_us: Vec<u64>,
    acked: Vec<(u32, u32, i64)>,
}

impl Tally {
    fn merge(&mut self, other: Tally) {
        self.accepted += other.accepted;
        self.rejected_backlog += other.rejected_backlog;
        self.rejected_budget += other.rejected_budget;
        self.rejected_deadline += other.rejected_deadline;
        self.rejected_horizon += other.rejected_horizon;
        self.rejected_other += other.rejected_other;
        self.lost += other.lost;
        self.latencies_us.extend(other.latencies_us);
        self.acked.extend(other.acked);
    }

    fn rejected(&self) -> u64 {
        self.rejected_backlog
            + self.rejected_budget
            + self.rejected_deadline
            + self.rejected_horizon
            + self.rejected_other
    }
}

fn percentile(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)] as f64 / 1000.0
}

fn worker(
    endpoint: &Endpoint,
    spec: JobSpec,
    deadline_slack: Option<i64>,
    timeout: Duration,
    remaining: &AtomicU64,
) -> Tally {
    let mut tally = Tally::default();
    let mut client: Option<Client> = None;
    loop {
        // Claim one unit of work; stop when the budget is gone.
        if remaining
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_err()
        {
            return tally;
        }
        if client.is_none() {
            client = Client::connect(endpoint, timeout, 6, Duration::from_millis(10)).ok();
        }
        let Some(c) = client.as_mut() else {
            tally.lost += 1;
            continue;
        };
        let mut spec = spec;
        if let Some(slack) = deadline_slack {
            // A deadline relative to "now": ask for status-free slack by
            // leaving it absolute and generous; admission uses its own
            // virtual clock.
            spec.deadline_tick = Some(slack);
        }
        let started = Instant::now();
        match c.submit(spec) {
            Ok(Response::Accepted { shard, job, time }) => {
                tally.accepted += 1;
                tally
                    .latencies_us
                    .push(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
                tally.acked.push((shard, job, time));
            }
            Ok(Response::Rejected { reason }) => {
                use ecosched_service::RejectReason as R;
                tally
                    .latencies_us
                    .push(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
                match reason {
                    R::BacklogFull { .. } => tally.rejected_backlog += 1,
                    R::BudgetInfeasible { .. } => tally.rejected_budget += 1,
                    R::DeadlineInfeasible { .. } => tally.rejected_deadline += 1,
                    R::BeyondHorizon { .. } => tally.rejected_horizon += 1,
                    R::Malformed { .. } | R::ShuttingDown => tally.rejected_other += 1,
                }
            }
            Ok(_) => tally.rejected_other += 1,
            Err(_) => {
                // Timeout or connection loss after the write: the ack is
                // unknown — count as lost and reconnect.
                tally.lost += 1;
                client = None;
            }
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };

    let remaining = Arc::new(AtomicU64::new(args.jobs));
    let total = Arc::new(Mutex::new(Tally::default()));
    let started = Instant::now();
    let mut handles = Vec::new();
    for _ in 0..args.threads {
        let endpoint = args.connect.clone();
        let remaining = Arc::clone(&remaining);
        let total = Arc::clone(&total);
        let spec = args.spec;
        let slack = args.deadline_slack;
        let timeout = args.timeout;
        handles.push(std::thread::spawn(move || {
            let tally = worker(&endpoint, spec, slack, timeout, &remaining);
            if let Ok(mut t) = total.lock() {
                t.merge(tally);
            }
        }));
    }
    for handle in handles {
        let _ = handle.join();
    }
    let elapsed = started.elapsed();

    let Ok(mut tally) = total.lock() else {
        eprintln!("worker panicked");
        return ExitCode::FAILURE;
    };
    tally.latencies_us.sort_unstable();

    if let Some(path) = &args.acked_out {
        let mut lines = String::new();
        let mut acked = tally.acked.clone();
        acked.sort_unstable();
        for (shard, job, time) in acked {
            lines.push_str(&format!("{shard} {job} {time}\n"));
        }
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = file.write_all(lines.as_bytes());
            let _ = file.sync_data();
        }
    }

    let throughput = tally.accepted as f64 / elapsed.as_secs_f64().max(1e-9);
    if args.json {
        // One machine-readable line, schema-stable for CI assertions.
        println!(
            "{{\"accepted\":{},\"rejected\":{{\"total\":{},\"backlog\":{},\"budget\":{},\
             \"deadline\":{},\"horizon\":{},\"other\":{}}},\"lost\":{},\
             \"ack_latency_ms\":{{\"p50\":{:.3},\"p99\":{:.3},\"max\":{:.3}}},\
             \"throughput_jobs_per_sec\":{:.1},\"elapsed_ms\":{}}}",
            tally.accepted,
            tally.rejected(),
            tally.rejected_backlog,
            tally.rejected_budget,
            tally.rejected_deadline,
            tally.rejected_horizon,
            tally.rejected_other,
            tally.lost,
            percentile(&tally.latencies_us, 0.50),
            percentile(&tally.latencies_us, 0.99),
            tally
                .latencies_us
                .last()
                .map_or(0.0, |&us| us as f64 / 1000.0),
            throughput,
            elapsed.as_millis()
        );
        return ExitCode::SUCCESS;
    }
    println!(
        "LOAD accepted={} rejected={} (backlog={} budget={} deadline={} horizon={} other={}) \
         lost={} p50_ms={:.3} p99_ms={:.3} max_ms={:.3} throughput_jobs_per_sec={:.0} \
         elapsed_ms={}",
        tally.accepted,
        tally.rejected(),
        tally.rejected_backlog,
        tally.rejected_budget,
        tally.rejected_deadline,
        tally.rejected_horizon,
        tally.rejected_other,
        tally.lost,
        percentile(&tally.latencies_us, 0.50),
        percentile(&tally.latencies_us, 0.99),
        tally
            .latencies_us
            .last()
            .map_or(0.0, |&us| us as f64 / 1000.0),
        throughput,
        elapsed.as_millis()
    );
    ExitCode::SUCCESS
}
