//! The daemon's core state machine, socket-free and fully testable
//! in-process: boot (fresh or crash-resume), admission, injection,
//! group commit, virtual-time advancement, snapshot cadence, and
//! graceful shutdown.
//!
//! # Durability and ordering
//!
//! A submission moves through exactly this sequence:
//!
//! 1. [`Session::submit`] — admission check, then [`Engine::submit`]
//!    injects the arrival into live state and the entry is *staged*;
//! 2. [`Session::commit`] — every staged entry is appended to the
//!    write-ahead log and fsynced **once** (group commit), then handed
//!    back as acknowledgements;
//! 3. only now does the daemon send `Accepted` to the client.
//!
//! Snapshots are only taken with an empty stage ([`Session::advance_to`]
//! and [`Session::shutdown`] both commit first), so every snapshot's
//! arrival set is a prefix of the WAL — the invariant crash recovery
//! rests on. Losing the process at any point therefore loses only
//! unacknowledged submissions.
//!
//! # Resume
//!
//! [`Session::open`] loads the newest usable snapshot (walking past
//! corrupt ones), verifies that every WAL entry the snapshot claims to
//! contain matches it, rebuilds the run with [`Engine::resume`], and
//! re-injects the WAL suffix by stepping the engine to each entry's
//! recorded injection point — reproducing the crashed process's event
//! log byte-for-byte.

use std::path::{Path, PathBuf};

use ecosched_core::TimePoint;
use ecosched_engine::{Engine, Event, RunState};
use ecosched_persist::SnapshotStore;
use ecosched_select::SlotSelector;

use crate::admission::{decide, MarketView};
use crate::error::ServiceError;
use crate::manifest::ServiceManifest;
use crate::protocol::{DaemonStatus, JobSpec, RejectReason};
use crate::wal::{load_wal, Wal, WalEntry};

/// An acknowledgement owed to a client after a commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ack {
    /// The engine job id.
    pub job: u32,
    /// The effective arrival time.
    pub time: i64,
}

/// How a session came up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BootMode {
    /// No usable snapshot: fresh run, whole WAL replayed from the seed.
    Fresh {
        /// WAL entries re-injected during boot.
        replayed: u64,
    },
    /// Resumed from a snapshot, WAL suffix re-injected.
    Resumed {
        /// The snapshot file used.
        snapshot: PathBuf,
        /// Events the snapshot contained.
        snapshot_events: u64,
        /// WAL entries re-injected past the snapshot.
        replayed: u64,
        /// Newer snapshot files skipped as corrupt or truncated.
        snapshots_skipped: usize,
    },
}

/// The live daemon state: engine run + durability apparatus.
#[derive(Debug)]
pub struct Session<S> {
    engine: Engine<S>,
    state: RunState,
    manifest: ServiceManifest,
    store: SnapshotStore,
    wal: Wal,
    staged: Vec<WalEntry>,
    rejected_total: u64,
    draining: bool,
    boot_mode: BootMode,
}

/// WAL file name inside a data directory.
#[must_use]
pub fn wal_path(data_dir: &Path) -> PathBuf {
    data_dir.join("wal.ndjson")
}

/// Snapshot directory inside a data directory.
#[must_use]
pub fn snapshot_dir(data_dir: &Path) -> PathBuf {
    data_dir.join("snapshots")
}

impl<S: SlotSelector + Copy> Session<S> {
    /// Boots a session from a data directory: fresh when it holds no
    /// snapshot, crash-resume otherwise. The WAL (or its suffix) is
    /// re-injected; on return the state is exactly what the previous
    /// process would have reached, and every previously acknowledged
    /// job is present.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Diverged`] when the durable record is internally
    /// inconsistent (snapshot and WAL disagree); otherwise the
    /// underlying engine/persist/io error.
    pub fn open(
        data_dir: &Path,
        manifest: ServiceManifest,
        selector: S,
    ) -> Result<Self, ServiceError> {
        manifest.validate()?;
        std::fs::create_dir_all(data_dir)?;
        // Every bootable data directory self-describes: offline
        // verification needs the manifest even if the daemon never
        // wrote one.
        if crate::manifest::load_manifest(data_dir)?.is_none() {
            crate::manifest::save_manifest(data_dir, &manifest)?;
        }
        let engine = Engine::new(manifest.config.clone(), selector)
            .map_err(|e| ServiceError::Config(e.to_string()))?;
        let store = SnapshotStore::open(snapshot_dir(data_dir), manifest.keep_snapshots)?;
        let loaded = load_wal(&wal_path(data_dir))?;

        let (mut state, boot_mode) = match store.load_latest()? {
            Some(latest) => {
                let snapshot_events = latest.checkpoint.log.len() as u64;
                let acked_in_snapshot = latest.checkpoint.arrivals.len();
                // Every arrival the snapshot carries must be the WAL's
                // prefix — same job ids, same times, same requests.
                if loaded.entries.len() < acked_in_snapshot {
                    return Err(ServiceError::Diverged(format!(
                        "snapshot holds {acked_in_snapshot} arrivals but the WAL only \
                         records {}",
                        loaded.entries.len()
                    )));
                }
                for (i, entry) in loaded.entries[..acked_in_snapshot].iter().enumerate() {
                    let arrival = &latest.checkpoint.arrivals[i];
                    let request = entry
                        .spec
                        .to_request()
                        .map_err(|e| ServiceError::Diverged(format!("WAL entry {i}: {e}")))?;
                    if entry.job as usize != i
                        || arrival.time != entry.time
                        || arrival.request != request
                    {
                        return Err(ServiceError::Diverged(format!(
                            "snapshot arrival {i} does not match WAL entry \
                             (job {}, time {} vs {})",
                            entry.job, arrival.time, entry.time
                        )));
                    }
                }
                let state = engine.resume(&latest.checkpoint)?;
                (
                    state,
                    BootMode::Resumed {
                        snapshot: latest.path,
                        snapshot_events,
                        replayed: (loaded.entries.len() - acked_in_snapshot) as u64,
                        snapshots_skipped: latest.skipped.len(),
                    },
                )
            }
            None => (
                engine.start(manifest.seed),
                BootMode::Fresh {
                    replayed: loaded.entries.len() as u64,
                },
            ),
        };

        // Re-inject the WAL suffix at its recorded injection points.
        let already = state.arrivals_len();
        for entry in &loaded.entries[already.min(loaded.entries.len())..] {
            reinject(&engine, &mut state, entry)?;
        }
        if state.arrivals_len() != loaded.entries.len() {
            return Err(ServiceError::Diverged(format!(
                "replay produced {} arrivals for {} WAL entries",
                state.arrivals_len(),
                loaded.entries.len()
            )));
        }

        // Cut a torn/corrupt tail (never acknowledged — acks follow
        // fsync of intact lines) so this process's appends extend the
        // trusted prefix instead of hiding behind garbage the next load
        // would refuse to read past. Runs after the snapshot checks:
        // a tail the snapshot vouches for is a divergence, not a tear.
        if loaded.dropped_lines > 0 {
            let file = std::fs::OpenOptions::new()
                .write(true)
                .open(wal_path(data_dir))?;
            file.set_len(loaded.trusted_bytes)?;
            file.sync_data()?;
        }
        let wal = Wal::open_append(wal_path(data_dir))?;
        Ok(Session {
            engine,
            state,
            manifest,
            store,
            wal,
            staged: Vec::new(),
            rejected_total: 0,
            draining: false,
            boot_mode,
        })
    }

    /// How this session booted.
    #[must_use]
    pub fn boot_mode(&self) -> &BootMode {
        &self.boot_mode
    }

    /// The manifest in force.
    #[must_use]
    pub fn manifest(&self) -> &ServiceManifest {
        &self.manifest
    }

    /// The live run state (read-only).
    #[must_use]
    pub fn state(&self) -> &RunState {
        &self.state
    }

    /// Virtual time the session has advanced to so far.
    #[must_use]
    pub fn virtual_time(&self) -> i64 {
        self.state.last_time().ticks()
    }

    /// Wall-clock time until the next queued event is due, given the
    /// current virtual time and the pacing rate; zero when it is already
    /// due, `None` when the queue is drained. The serve loop uses this
    /// to sleep exactly as long as pacing allows instead of polling.
    #[must_use]
    pub fn next_event_in(&self, now: i64, ticks_per_sec: f64) -> Option<std::time::Duration> {
        let next = self.state.next_event_time()?.ticks();
        let ticks = (next - now).max(0) as f64;
        Some(std::time::Duration::from_secs_f64(
            ticks / ticks_per_sec.max(1e-9),
        ))
    }

    /// Admits and injects one submission at virtual time `now`. On
    /// acceptance the entry is staged — it is durable (and may be
    /// acknowledged) only after the next [`Self::commit`].
    ///
    /// # Errors
    ///
    /// The typed rejection; nothing was staged or mutated.
    pub fn submit(&mut self, spec: &JobSpec, now: i64) -> Result<Ack, RejectReason> {
        if self.draining {
            self.rejected_total += 1;
            return Err(RejectReason::ShuttingDown);
        }
        let view = MarketView {
            backlog: self.state.backlog() as u64,
            vacant: self.state.vacant(),
            now,
            cycle_length: self.manifest.config.cycle_length,
            horizon: self.manifest.horizon(),
        };
        let request = match decide(
            &self.manifest.admission,
            &view,
            spec,
            self.staged.len() as u64,
        ) {
            Ok(request) => request,
            Err(reason) => {
                self.rejected_total += 1;
                return Err(reason);
            }
        };
        let injected_after = self.state.events_processed() as u64;
        let (job, time) = self
            .engine
            .submit(&mut self.state, request, TimePoint::new(now));
        self.staged.push(WalEntry {
            job,
            injected_after,
            time: time.ticks(),
            spec: *spec,
        });
        Ok(Ack {
            job,
            time: time.ticks(),
        })
    }

    /// Makes every staged submission durable with one fsync and returns
    /// the acknowledgements now safe to send.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Io`] — **fatal**: the staged injections are
    /// already in live state but not durable, so the daemon must exit
    /// (clients were never acked; the restart recovers consistently).
    pub fn commit(&mut self) -> Result<Vec<Ack>, ServiceError> {
        self.wal.append_batch(&self.staged)?;
        let acks = self
            .staged
            .drain(..)
            .map(|e| Ack {
                job: e.job,
                time: e.time,
            })
            .collect();
        Ok(acks)
    }

    /// Processes every queued event at or before virtual time `target`,
    /// taking cadence snapshots after cycle ticks. Commits first so no
    /// snapshot can outrun the WAL. Returns snapshots taken.
    ///
    /// # Errors
    ///
    /// Engine or snapshot failures.
    pub fn advance_to(&mut self, target: i64) -> Result<u32, ServiceError> {
        if !self.staged.is_empty() {
            return Err(ServiceError::Diverged(
                "advance_to with uncommitted staged submissions (acks would be lost)".into(),
            ));
        }
        let mut snapshots = 0u32;
        while let Some(next) = self.state.next_event_time() {
            if next.ticks() > target {
                break;
            }
            let Some(entry) = self.engine.step(&mut self.state)? else {
                break;
            };
            if let Event::CycleTick { cycle } = entry.event {
                let every = self.manifest.snapshot_every_cycles;
                if every > 0 && (cycle + 1) % every == 0 {
                    self.snapshot()?;
                    snapshots += 1;
                }
            }
        }
        Ok(snapshots)
    }

    /// Captures a rotated snapshot now.
    ///
    /// # Errors
    ///
    /// Snapshot write failures.
    pub fn snapshot(&mut self) -> Result<PathBuf, ServiceError> {
        Ok(self.store.save(&self.engine.checkpoint(&self.state))?)
    }

    /// Commits, snapshots, and switches to draining: all later submits
    /// are rejected with [`RejectReason::ShuttingDown`]. Returns the
    /// final acks to deliver before exit.
    ///
    /// # Errors
    ///
    /// Commit or snapshot failures.
    pub fn shutdown(&mut self) -> Result<Vec<Ack>, ServiceError> {
        let acks = self.commit()?;
        self.snapshot()?;
        self.draining = true;
        Ok(acks)
    }

    /// The status answer, with the log hash computed on demand.
    #[must_use]
    pub fn status(&self) -> DaemonStatus {
        DaemonStatus {
            virtual_time: self.virtual_time(),
            events_processed: self.state.events_processed() as u64,
            arrivals: self.state.arrivals_len() as u64,
            backlog: self.state.backlog() as u64,
            active_leases: self.state.active_leases() as u64,
            accepted_total: self.state.arrivals_len() as u64,
            rejected_total: self.rejected_total,
            log_hash: self.state.log().fnv1a_hash(),
        }
    }
}

/// Steps `state` to `entry`'s recorded injection point and re-injects
/// it, checking the reconstruction matches the record.
pub(crate) fn reinject<S: SlotSelector + Copy>(
    engine: &Engine<S>,
    state: &mut RunState,
    entry: &WalEntry,
) -> Result<(), ServiceError> {
    while (state.events_processed() as u64) < entry.injected_after {
        if engine.step(state)?.is_none() {
            return Err(ServiceError::Diverged(format!(
                "event queue drained at {} events, before WAL entry {}'s \
                 injection point {}",
                state.events_processed(),
                entry.job,
                entry.injected_after
            )));
        }
    }
    if state.events_processed() as u64 != entry.injected_after {
        return Err(ServiceError::Diverged(format!(
            "stepped past WAL entry {}'s injection point ({} > {})",
            entry.job,
            state.events_processed(),
            entry.injected_after
        )));
    }
    let request = entry
        .spec
        .to_request()
        .map_err(|e| ServiceError::Diverged(format!("WAL entry {}: {e}", entry.job)))?;
    let (job, time) = engine.submit(state, request, TimePoint::new(entry.time));
    if job != entry.job || time.ticks() != entry.time {
        return Err(ServiceError::Diverged(format!(
            "re-injection of WAL entry {} produced (job {job}, time {}), \
             recorded (job {}, time {})",
            entry.job,
            time.ticks(),
            entry.job,
            entry.time
        )));
    }
    Ok(())
}
