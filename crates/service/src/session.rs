//! The daemon's core state machine, socket-free and fully testable
//! in-process: boot (fresh or crash-resume), admission, routing,
//! injection, group commit, virtual-time advancement, snapshot cadence,
//! and graceful shutdown.
//!
//! Since the federation refactor the session always runs a
//! [`Federation`] — at one shard it is byte-identical to the classic
//! single-engine daemon (the federation's S=1 identity theorem), at
//! more shards the router spreads submissions and the WAL records the
//! decision per job. Cross-shard co-allocation stays off in service
//! mode (see [`ServiceManifest::fed_config`]), so every accepted
//! submission is exactly one single-shard injection and recovery never
//! re-runs a two-phase protocol.
//!
//! # Durability and ordering
//!
//! A submission moves through exactly this sequence:
//!
//! 1. [`Session::submit`] — admission check, then [`Federation::submit`]
//!    routes and injects the arrival into live state and the entry —
//!    including the chosen shard — is *staged*;
//! 2. [`Session::commit`] — every staged entry is appended to the
//!    write-ahead log and fsynced **once** (group commit), then handed
//!    back as acknowledgements;
//! 3. only now does the daemon send `Accepted` to the client.
//!
//! Snapshots are only taken with an empty stage ([`Session::advance_to`]
//! and [`Session::shutdown`] both commit first), so every snapshot's
//! arrival set is a prefix of the WAL — the invariant crash recovery
//! rests on. Losing the process at any point therefore loses only
//! unacknowledged submissions.
//!
//! # Resume
//!
//! [`Session::open`] loads the newest usable federated snapshot
//! (walking past corrupt ones), verifies that every arrival each shard's
//! checkpoint carries matches the WAL's record for that shard, rebuilds
//! the run with [`Federation::resume`], and re-injects the WAL suffix by
//! stepping the federation to each entry's recorded merged-log injection
//! point and replaying its routing decision verbatim — reproducing the
//! crashed process's merged event log byte-for-byte.

use std::path::{Path, PathBuf};

use ecosched_core::TimePoint;
use ecosched_engine::Event;
use ecosched_federation::{Federation, FederationState, Placement};
use ecosched_persist::FederatedSnapshotStore;
use ecosched_select::SlotSelector;

use crate::admission::{decide, MarketView};
use crate::error::ServiceError;
use crate::manifest::ServiceManifest;
use crate::obs::{ServiceObs, ServiceObsBundle};
use crate::protocol::{DaemonStatus, JobSpec, RejectReason};
use crate::wal::{load_wal, Wal, WalEntry};

/// An acknowledgement owed to a client after a commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ack {
    /// The shard the job was routed to.
    pub shard: u32,
    /// The shard-local job id.
    pub job: u32,
    /// The effective arrival time.
    pub time: i64,
}

/// How a session came up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BootMode {
    /// No usable snapshot: fresh run, whole WAL replayed from the seed.
    Fresh {
        /// WAL entries re-injected during boot.
        replayed: u64,
    },
    /// Resumed from a snapshot, WAL suffix re-injected.
    Resumed {
        /// The snapshot file used.
        snapshot: PathBuf,
        /// Merged-log events the snapshot contained.
        snapshot_events: u64,
        /// WAL entries re-injected past the snapshot.
        replayed: u64,
        /// Newer snapshot files skipped as corrupt or truncated.
        snapshots_skipped: usize,
    },
}

/// The live daemon state: federated run + durability apparatus.
#[derive(Debug)]
pub struct Session<S> {
    fed: Federation<S>,
    state: FederationState,
    manifest: ServiceManifest,
    store: FederatedSnapshotStore,
    wal: Wal,
    staged: Vec<WalEntry>,
    rejected_total: u64,
    draining: bool,
    boot_mode: BootMode,
    /// Observability handle — runtime state, never serialized, off by
    /// default (attach with [`Session::set_obs`] after boot so recovery
    /// replay is not counted as live traffic).
    obs: ServiceObs,
}

/// WAL file name inside a data directory.
#[must_use]
pub fn wal_path(data_dir: &Path) -> PathBuf {
    data_dir.join("wal.ndjson")
}

/// Snapshot directory inside a data directory.
#[must_use]
pub fn snapshot_dir(data_dir: &Path) -> PathBuf {
    data_dir.join("snapshots")
}

impl<S: SlotSelector + Copy> Session<S> {
    /// Boots a session from a data directory: fresh when it holds no
    /// snapshot, crash-resume otherwise. The WAL (or its suffix) is
    /// re-injected; on return the state is exactly what the previous
    /// process would have reached, and every previously acknowledged
    /// job is present.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Diverged`] when the durable record is internally
    /// inconsistent (snapshot and WAL disagree); otherwise the
    /// underlying federation/persist/io error.
    pub fn open(
        data_dir: &Path,
        manifest: ServiceManifest,
        selector: S,
    ) -> Result<Self, ServiceError> {
        manifest.validate()?;
        std::fs::create_dir_all(data_dir)?;
        // Every bootable data directory self-describes: offline
        // verification needs the manifest even if the daemon never
        // wrote one.
        if crate::manifest::load_manifest(data_dir)?.is_none() {
            crate::manifest::save_manifest(data_dir, &manifest)?;
        }
        let fed = Federation::new(manifest.fed_config(), selector)
            .map_err(|e| ServiceError::Config(e.to_string()))?;
        let store = FederatedSnapshotStore::open(snapshot_dir(data_dir), manifest.keep_snapshots)?;
        let loaded = load_wal(&wal_path(data_dir))?;

        let (mut state, boot_mode) = match store.load_latest()? {
            Some(latest) => {
                let snapshot_events = latest.checkpoint.merged.len() as u64;
                let acked_in_snapshot: usize = latest
                    .checkpoint
                    .shards
                    .iter()
                    .map(|cp| cp.arrivals.len())
                    .sum();
                // Every arrival the snapshot carries must be the WAL's
                // prefix — same shards, same job ids, same times, same
                // requests. Walk the WAL in order, keeping a per-shard
                // cursor: entry i of shard s must be that shard's i-th
                // checkpointed arrival.
                if loaded.entries.len() < acked_in_snapshot {
                    return Err(ServiceError::Diverged(format!(
                        "snapshot holds {acked_in_snapshot} arrivals but the WAL only \
                         records {}",
                        loaded.entries.len()
                    )));
                }
                let mut cursor = vec![0usize; latest.checkpoint.shards.len()];
                for (i, entry) in loaded.entries[..acked_in_snapshot].iter().enumerate() {
                    let shard = entry.shard as usize;
                    let Some(shard_cp) = latest.checkpoint.shards.get(shard) else {
                        return Err(ServiceError::Diverged(format!(
                            "WAL entry {i} names shard {shard}, snapshot has {}",
                            latest.checkpoint.shards.len()
                        )));
                    };
                    let idx = cursor[shard];
                    let Some(arrival) = shard_cp.arrivals.get(idx) else {
                        return Err(ServiceError::Diverged(format!(
                            "WAL entry {i} is shard {shard}'s arrival {idx}, but its \
                             snapshot only holds {}",
                            shard_cp.arrivals.len()
                        )));
                    };
                    let request = entry
                        .spec
                        .to_request()
                        .map_err(|e| ServiceError::Diverged(format!("WAL entry {i}: {e}")))?;
                    if entry.job as usize != idx
                        || arrival.time != entry.time
                        || arrival.request != request
                    {
                        return Err(ServiceError::Diverged(format!(
                            "snapshot arrival {idx} of shard {shard} does not match WAL \
                             entry {i} (job {}, time {} vs {})",
                            entry.job, arrival.time, entry.time
                        )));
                    }
                    cursor[shard] = idx + 1;
                }
                let state = fed.resume(&latest.checkpoint)?;
                (
                    state,
                    BootMode::Resumed {
                        snapshot: latest.path,
                        snapshot_events,
                        replayed: (loaded.entries.len() - acked_in_snapshot) as u64,
                        snapshots_skipped: latest.skipped.len(),
                    },
                )
            }
            None => (
                fed.start(manifest.seed),
                BootMode::Fresh {
                    replayed: loaded.entries.len() as u64,
                },
            ),
        };

        // Re-inject the WAL suffix at its recorded injection points.
        let already = arrivals_total(&state);
        for entry in &loaded.entries[already.min(loaded.entries.len())..] {
            reinject(&fed, &mut state, entry)?;
        }
        if arrivals_total(&state) != loaded.entries.len() {
            return Err(ServiceError::Diverged(format!(
                "replay produced {} arrivals for {} WAL entries",
                arrivals_total(&state),
                loaded.entries.len()
            )));
        }

        // Cut a torn/corrupt tail (never acknowledged — acks follow
        // fsync of intact lines) so this process's appends extend the
        // trusted prefix instead of hiding behind garbage the next load
        // would refuse to read past. Runs after the snapshot checks:
        // a tail the snapshot vouches for is a divergence, not a tear.
        if loaded.dropped_lines > 0 {
            let file = std::fs::OpenOptions::new()
                .write(true)
                .open(wal_path(data_dir))?;
            file.set_len(loaded.trusted_bytes)?;
            file.sync_data()?;
        }
        let wal = Wal::open_append(wal_path(data_dir))?;
        Ok(Session {
            fed,
            state,
            manifest,
            store,
            wal,
            staged: Vec::new(),
            rejected_total: 0,
            draining: false,
            boot_mode,
            obs: ServiceObs::off(),
        })
    }

    /// Attaches a full observability bundle: the service handle here,
    /// the federation and per-shard engine handles on the live
    /// federation. Call after [`Self::open`] so boot replay is not
    /// recorded as live traffic.
    pub fn set_obs(&mut self, bundle: ServiceObsBundle) {
        self.obs = bundle.service;
        self.fed.set_obs(bundle.federation, bundle.shards);
        self.obs
            .set_progress(self.state.backlog(), self.virtual_time());
    }

    /// The service-layer observability handle.
    #[must_use]
    pub fn obs(&self) -> &ServiceObs {
        &self.obs
    }

    /// How this session booted.
    #[must_use]
    pub fn boot_mode(&self) -> &BootMode {
        &self.boot_mode
    }

    /// The manifest in force.
    #[must_use]
    pub fn manifest(&self) -> &ServiceManifest {
        &self.manifest
    }

    /// The live federated run state (read-only).
    #[must_use]
    pub fn state(&self) -> &FederationState {
        &self.state
    }

    /// Virtual time the session has advanced to so far (the latest
    /// merged-log tick).
    #[must_use]
    pub fn virtual_time(&self) -> i64 {
        self.state.last_time().ticks()
    }

    /// Wall-clock time until the next queued event is due, given the
    /// current virtual time and the pacing rate; zero when it is already
    /// due, `None` when every shard's queue is drained. The serve loop
    /// uses this to sleep exactly as long as pacing allows instead of
    /// polling.
    #[must_use]
    pub fn next_event_in(&self, now: i64, ticks_per_sec: f64) -> Option<std::time::Duration> {
        let next = self.state.next_time()?.ticks();
        let ticks = (next - now).max(0) as f64;
        Some(std::time::Duration::from_secs_f64(
            ticks / ticks_per_sec.max(1e-9),
        ))
    }

    /// Admits, routes, and injects one submission at virtual time `now`.
    /// On acceptance the entry is staged — it is durable (and may be
    /// acknowledged) only after the next [`Self::commit`].
    ///
    /// # Errors
    ///
    /// The typed rejection; nothing was staged or mutated.
    pub fn submit(&mut self, spec: &JobSpec, now: i64) -> Result<Ack, RejectReason> {
        self.obs.on_submission();
        if self.draining {
            self.rejected_total += 1;
            self.obs.on_reject(&RejectReason::ShuttingDown);
            return Err(RejectReason::ShuttingDown);
        }
        let markets: Vec<_> = (0..self.state.shard_count())
            .map(|s| self.state.shard(s).vacant())
            .collect();
        let view = MarketView {
            backlog: self.state.backlog() as u64,
            markets: &markets,
            now,
            cycle_length: self.manifest.config.cycle_length,
            horizon: self.manifest.horizon(),
        };
        let request = match decide(
            &self.manifest.admission,
            &view,
            spec,
            self.staged.len() as u64,
        ) {
            Ok(request) => request,
            Err(reason) => {
                self.rejected_total += 1;
                self.obs.on_reject(&reason);
                return Err(reason);
            }
        };
        let injected_after = self.state.merged().len() as u64;
        // With cross-shard co-allocation off (service invariant, see the
        // manifest) routing cannot fail and always places on one shard.
        let placed = self
            .fed
            .submit(&mut self.state, request, TimePoint::new(now));
        let (shard, job, time) = match placed {
            Ok((_, Placement::Single { shard, job, time })) => (shard, job, time),
            Ok((_, Placement::Cross(_))) | Err(_) => {
                self.rejected_total += 1;
                let reason = RejectReason::Malformed {
                    detail: "internal routing failure (cross-shard placement in service mode)"
                        .into(),
                };
                self.obs.on_reject(&reason);
                return Err(reason);
            }
        };
        self.obs.on_accept();
        self.staged.push(WalEntry {
            shard,
            job,
            injected_after,
            time: time.ticks(),
            spec: *spec,
        });
        Ok(Ack {
            shard,
            job,
            time: time.ticks(),
        })
    }

    /// Makes every staged submission durable with one fsync and returns
    /// the acknowledgements now safe to send.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Io`] — **fatal**: the staged injections are
    /// already in live state but not durable, so the daemon must exit
    /// (clients were never acked; the restart recovers consistently).
    pub fn commit(&mut self) -> Result<Vec<Ack>, ServiceError> {
        let fsync_start =
            (!self.staged.is_empty() && self.obs.is_on()).then(std::time::Instant::now);
        self.wal.append_batch(&self.staged)?;
        if let Some(start) = fsync_start {
            self.obs.on_commit(self.staged.len(), start.elapsed());
        }
        let acks = self
            .staged
            .drain(..)
            .map(|e| Ack {
                shard: e.shard,
                job: e.job,
                time: e.time,
            })
            .collect();
        Ok(acks)
    }

    /// Processes every queued event at or before virtual time `target`,
    /// taking cadence snapshots after shard 0's cycle ticks (each shard
    /// ticks every cycle, so shard 0 is the cadence clock). Commits
    /// first so no snapshot can outrun the WAL. Returns snapshots taken.
    ///
    /// # Errors
    ///
    /// Federation or snapshot failures.
    pub fn advance_to(&mut self, target: i64) -> Result<u32, ServiceError> {
        if !self.staged.is_empty() {
            return Err(ServiceError::Diverged(
                "advance_to with uncommitted staged submissions (acks would be lost)".into(),
            ));
        }
        let mut snapshots = 0u32;
        while let Some(next) = self.state.next_time() {
            if next.ticks() > target {
                break;
            }
            let Some(entry) = self.fed.step(&mut self.state)? else {
                break;
            };
            if entry.shard != 0 {
                continue;
            }
            if let Event::CycleTick { cycle } = entry.event {
                let every = self.manifest.snapshot_every_cycles;
                if every > 0 && (cycle + 1) % every == 0 {
                    self.snapshot()?;
                    snapshots += 1;
                }
            }
        }
        self.obs
            .set_progress(self.state.backlog(), self.virtual_time());
        Ok(snapshots)
    }

    /// Captures a rotated snapshot now.
    ///
    /// # Errors
    ///
    /// Snapshot write failures.
    pub fn snapshot(&mut self) -> Result<PathBuf, ServiceError> {
        let path = self.store.save(&self.fed.checkpoint(&self.state))?;
        self.obs.on_snapshot();
        Ok(path)
    }

    /// Commits, snapshots, and switches to draining: all later submits
    /// are rejected with [`RejectReason::ShuttingDown`]. Returns the
    /// final acks to deliver before exit.
    ///
    /// # Errors
    ///
    /// Commit or snapshot failures.
    pub fn shutdown(&mut self) -> Result<Vec<Ack>, ServiceError> {
        let acks = self.commit()?;
        self.snapshot()?;
        self.draining = true;
        Ok(acks)
    }

    /// The status answer, with the merged-log hash computed on demand.
    #[must_use]
    pub fn status(&self) -> DaemonStatus {
        let arrivals = arrivals_total(&self.state) as u64;
        let active_leases: usize = (0..self.state.shard_count())
            .map(|s| self.state.shard(s).active_leases())
            .sum();
        DaemonStatus {
            virtual_time: self.virtual_time(),
            events_processed: self.state.merged().len() as u64,
            arrivals,
            backlog: self.state.backlog() as u64,
            active_leases: active_leases as u64,
            accepted_total: arrivals,
            rejected_total: self.rejected_total,
            log_hash: self.state.merged().fnv1a_hash(),
        }
    }
}

/// Externally injected arrivals across every shard — one per accepted
/// submission, so also the count of WAL-recorded jobs in live state.
pub(crate) fn arrivals_total(state: &FederationState) -> usize {
    (0..state.shard_count())
        .map(|s| state.shard(s).arrivals_len())
        .sum()
}

/// Steps `state` to `entry`'s recorded merged-log injection point and
/// replays its recorded routing decision, checking the reconstruction
/// matches the record.
pub(crate) fn reinject<S: SlotSelector + Copy>(
    fed: &Federation<S>,
    state: &mut FederationState,
    entry: &WalEntry,
) -> Result<(), ServiceError> {
    while (state.merged().len() as u64) < entry.injected_after {
        if fed.step(state)?.is_none() {
            return Err(ServiceError::Diverged(format!(
                "merged log drained at {} events, before WAL entry {}'s \
                 injection point {}",
                state.merged().len(),
                entry.job,
                entry.injected_after
            )));
        }
    }
    if state.merged().len() as u64 != entry.injected_after {
        return Err(ServiceError::Diverged(format!(
            "stepped past WAL entry {}'s injection point ({} > {})",
            entry.job,
            state.merged().len(),
            entry.injected_after
        )));
    }
    let request = entry
        .spec
        .to_request()
        .map_err(|e| ServiceError::Diverged(format!("WAL entry {}: {e}", entry.job)))?;
    let (job, time) = fed.submit_routed(state, entry.shard, request, TimePoint::new(entry.time))?;
    if job != entry.job || time.ticks() != entry.time {
        return Err(ServiceError::Diverged(format!(
            "re-injection of WAL entry {} on shard {} produced (job {job}, time {}), \
             recorded (job {}, time {})",
            entry.job,
            entry.shard,
            time.ticks(),
            entry.job,
            entry.time
        )));
    }
    Ok(())
}
