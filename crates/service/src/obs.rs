//! Service-layer observability: admission outcomes, WAL fsync and ack
//! latency histograms, and the one-call bundle that wires a recorder
//! through every layer of the daemon (service → federation → shard
//! engines) against a single registry.
//!
//! Latency histograms here measure *wall-clock* durations — the one
//! place in the stack where real time is a legitimate observable,
//! because the daemon's fsyncs and acks happen in real time. The
//! scheduling layers below record only virtual-time-keyed facts. Either
//! way the registry is observe-only: nothing in it feeds back into
//! admission, routing, or scheduling decisions.

use std::sync::Arc;
use std::time::Duration;

use ecosched_engine::{EngineIds, EngineObs};
use ecosched_federation::{FedIds, FederationObs};
use ecosched_obs::{Buckets, CounterId, GaugeId, HistogramId, Recorder, RegistryBuilder};

use crate::protocol::RejectReason;

/// The registry's canonical label value for each rejection reason, in a
/// fixed order so the typed counters can live in a dense array.
pub const REJECT_REASONS: [&str; 6] = [
    "malformed",
    "backlog_full",
    "budget_infeasible",
    "deadline_infeasible",
    "beyond_horizon",
    "shutting_down",
];

/// Index of a [`RejectReason`] into [`REJECT_REASONS`].
#[must_use]
pub fn reason_index(reason: &RejectReason) -> usize {
    match reason {
        RejectReason::Malformed { .. } => 0,
        RejectReason::BacklogFull { .. } => 1,
        RejectReason::BudgetInfeasible { .. } => 2,
        RejectReason::DeadlineInfeasible { .. } => 3,
        RejectReason::BeyondHorizon { .. } => 4,
        RejectReason::ShuttingDown => 5,
    }
}

/// Dense metric ids for the service layer, registered at startup.
#[derive(Debug, Clone)]
pub struct ServiceIds {
    /// `ecosched_service_submissions_total` — every submit attempt.
    pub submissions: CounterId,
    /// `ecosched_service_accepted_total`.
    pub accepted: CounterId,
    /// `ecosched_service_rejected_total{reason=...}`, indexed by
    /// [`reason_index`].
    pub rejected: [CounterId; 6],
    /// `ecosched_service_wal_commits_total` — group-commit fsyncs.
    pub wal_commits: CounterId,
    /// `ecosched_service_snapshots_total`.
    pub snapshots: CounterId,
    /// `ecosched_service_wal_fsync_us` — observed once per staged entry
    /// (the commit's fsync duration attributed to each entry it made
    /// durable), so its count equals the accepted counter.
    pub wal_fsync_us: HistogramId,
    /// `ecosched_service_ack_us` — serve-loop batch intake to ack send.
    pub ack_us: HistogramId,
    /// `ecosched_service_backlog` gauge.
    pub backlog: GaugeId,
    /// `ecosched_service_virtual_time` gauge.
    pub virtual_time: GaugeId,
}

impl ServiceIds {
    /// Registers the service metric family.
    #[must_use]
    pub fn register(b: &mut RegistryBuilder) -> Self {
        let rejected = REJECT_REASONS.map(|reason| {
            b.counter_with(
                "ecosched_service_rejected_total",
                "Submissions rejected by admission control, by typed reason",
                &[("reason", reason)],
            )
        });
        ServiceIds {
            submissions: b.counter(
                "ecosched_service_submissions_total",
                "Submit requests handled (accepted plus rejected)",
            ),
            accepted: b.counter(
                "ecosched_service_accepted_total",
                "Submissions admitted, routed, and staged for commit",
            ),
            rejected,
            wal_commits: b.counter(
                "ecosched_service_wal_commits_total",
                "Group commits fsynced to the write-ahead log",
            ),
            snapshots: b.counter(
                "ecosched_service_snapshots_total",
                "Rotated snapshots written",
            ),
            wal_fsync_us: b.histogram(
                "ecosched_service_wal_fsync_us",
                "WAL group-commit fsync latency in microseconds, one observation \
                 per entry made durable",
                Buckets::pow2(1, 20),
            ),
            ack_us: b.histogram(
                "ecosched_service_ack_us",
                "Serve-loop latency from batch intake to acknowledgement send, \
                 in microseconds",
                Buckets::pow2(1, 20),
            ),
            backlog: b.gauge(
                "ecosched_service_backlog",
                "Pending plus leased jobs across all shards",
            ),
            virtual_time: b.gauge(
                "ecosched_service_virtual_time",
                "Latest merged-log virtual tick the session has reached",
            ),
        }
    }
}

#[derive(Debug)]
struct ServiceObsInner {
    rec: Recorder,
    ids: ServiceIds,
}

/// An optional service recorder handle: runtime state, never serialized,
/// a no-op when off — the same shape as the engine and federation
/// handles.
#[derive(Debug, Clone, Default)]
pub struct ServiceObs {
    inner: Option<Arc<ServiceObsInner>>,
}

impl ServiceObs {
    /// A disabled handle; every call is a no-op.
    #[must_use]
    pub fn off() -> Self {
        ServiceObs { inner: None }
    }

    /// A live handle. Degrades to [`off`](Self::off) when the recorder
    /// itself is off.
    #[must_use]
    pub fn new(rec: Recorder, ids: ServiceIds) -> Self {
        if !rec.is_on() {
            return ServiceObs::off();
        }
        ServiceObs {
            inner: Some(Arc::new(ServiceObsInner { rec, ids })),
        }
    }

    /// Whether recording is live.
    #[must_use]
    pub fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    /// The underlying recorder, when live.
    #[must_use]
    pub fn recorder(&self) -> Option<&Recorder> {
        self.inner.as_ref().map(|i| &i.rec)
    }

    /// One submit attempt arrived.
    pub fn on_submission(&self) {
        if let Some(i) = self.inner.as_deref() {
            i.rec.inc(i.ids.submissions);
        }
    }

    /// A submission was admitted and staged.
    pub fn on_accept(&self) {
        if let Some(i) = self.inner.as_deref() {
            i.rec.inc(i.ids.accepted);
        }
    }

    /// A submission was rejected.
    pub fn on_reject(&self, reason: &RejectReason) {
        if let Some(i) = self.inner.as_deref() {
            i.rec.inc(i.ids.rejected[reason_index(reason)]);
        }
    }

    /// One group commit fsynced `staged` entries in `fsync` wall time.
    /// The duration is attributed to every entry it made durable, so the
    /// fsync histogram's count tracks the accepted counter exactly.
    pub fn on_commit(&self, staged: usize, fsync: Duration) {
        let Some(i) = self.inner.as_deref() else {
            return;
        };
        if staged == 0 {
            return;
        }
        i.rec.inc(i.ids.wal_commits);
        let us = fsync.as_micros().min(u128::from(u64::MAX)) as u64;
        for _ in 0..staged {
            i.rec.observe(i.ids.wal_fsync_us, us);
        }
    }

    /// A rotated snapshot was written.
    pub fn on_snapshot(&self) {
        if let Some(i) = self.inner.as_deref() {
            i.rec.inc(i.ids.snapshots);
        }
    }

    /// One acknowledgement left the serve loop `elapsed` after its batch
    /// was taken off the channel.
    pub fn observe_ack(&self, elapsed: Duration) {
        if let Some(i) = self.inner.as_deref() {
            let us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
            i.rec.observe(i.ids.ack_us, us);
        }
    }

    /// Refreshes the session progress gauges.
    pub fn set_progress(&self, backlog: usize, virtual_time: i64) {
        if let Some(i) = self.inner.as_deref() {
            i.rec.set(i.ids.backlog, backlog as f64);
            i.rec.set(i.ids.virtual_time, virtual_time as f64);
        }
    }

    /// The `/healthz` answer: a single JSON object summarizing liveness
    /// from the registry's own counters and gauges.
    #[must_use]
    pub fn health_json(&self) -> String {
        let Some(i) = self.inner.as_deref() else {
            return "{\"status\":\"ok\",\"metrics\":false}".to_string();
        };
        let Some(reg) = i.rec.registry() else {
            return "{\"status\":\"ok\",\"metrics\":false}".to_string();
        };
        let rejected: u64 = i.ids.rejected.iter().map(|&id| reg.counter_value(id)).sum();
        format!(
            "{{\"status\":\"ok\",\"metrics\":true,\"virtual_time\":{},\"backlog\":{},\
             \"submissions\":{},\"accepted\":{},\"rejected\":{}}}",
            reg.gauge_value(i.ids.virtual_time) as i64,
            reg.gauge_value(i.ids.backlog) as i64,
            reg.counter_value(i.ids.submissions),
            reg.counter_value(i.ids.accepted),
            rejected,
        )
    }
}

/// Every observability handle the daemon needs, wired to one registry.
#[derive(Debug, Clone)]
pub struct ServiceObsBundle {
    /// The shared recorder (hand this to the metrics listener).
    pub recorder: Recorder,
    /// The service-layer handle.
    pub service: ServiceObs,
    /// The federation-layer handle.
    pub federation: FederationObs,
    /// One engine handle per shard, in shard order.
    pub shards: Vec<EngineObs>,
}

/// Builds a fresh registry carrying the full service → federation →
/// engine metric family for `shards` shards, and returns live handles
/// for every layer.
#[must_use]
pub fn build_service_obs(shards: usize) -> ServiceObsBundle {
    let mut b = RegistryBuilder::new();
    let service_ids = ServiceIds::register(&mut b);
    let fed_ids = FedIds::register(&mut b, shards);
    let shard_ids: Vec<EngineIds> = (0..shards)
        .map(|s| EngineIds::register(&mut b, Some(s as u32)))
        .collect();
    let recorder = Recorder::new(b.build());
    ServiceObsBundle {
        service: ServiceObs::new(recorder.clone(), service_ids),
        federation: FederationObs::new(recorder.clone(), fed_ids),
        shards: shard_ids
            .into_iter()
            .map(|ids| EngineObs::new(recorder.clone(), ids))
            .collect(),
        recorder,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reason_indices_cover_every_variant() {
        let reasons = [
            RejectReason::Malformed { detail: "x".into() },
            RejectReason::BacklogFull {
                backlog: 1,
                limit: 1,
            },
            RejectReason::BudgetInfeasible {
                needed_nodes: 1,
                eligible_nodes: 0,
            },
            RejectReason::DeadlineInfeasible {
                deadline: 0,
                earliest_finish: 1,
            },
            RejectReason::BeyondHorizon {
                time: 0,
                horizon: 1,
            },
            RejectReason::ShuttingDown,
        ];
        let mut seen = [false; 6];
        for reason in &reasons {
            seen[reason_index(reason)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fsync_histogram_count_tracks_accepted() {
        let bundle = build_service_obs(1);
        let obs = &bundle.service;
        for _ in 0..5 {
            obs.on_submission();
            obs.on_accept();
        }
        obs.on_commit(3, Duration::from_micros(120));
        obs.on_commit(2, Duration::from_micros(80));
        obs.on_commit(0, Duration::from_micros(999));
        let reg = bundle.recorder.registry().expect("recorder on");
        let accepted = reg
            .find_counter("ecosched_service_accepted_total", &[])
            .expect("registered");
        let fsync = reg
            .find_histogram("ecosched_service_wal_fsync_us", &[])
            .expect("registered");
        assert_eq!(reg.counter_value(accepted), 5);
        assert_eq!(reg.histogram_count(fsync), 5);
        let commits = reg
            .find_counter("ecosched_service_wal_commits_total", &[])
            .expect("registered");
        assert_eq!(reg.counter_value(commits), 2, "empty commits don't count");
    }

    #[test]
    fn health_json_reflects_counters() {
        let bundle = build_service_obs(1);
        bundle.service.on_submission();
        bundle.service.on_accept();
        bundle.service.set_progress(7, 1234);
        let health = bundle.service.health_json();
        assert!(health.contains("\"accepted\":1"));
        assert!(health.contains("\"backlog\":7"));
        assert!(health.contains("\"virtual_time\":1234"));
        assert!(ServiceObs::off()
            .health_json()
            .contains("\"metrics\":false"));
    }
}
