//! The wire protocol: newline-delimited JSON over a local socket.
//!
//! Every request and response is one JSON document on one line (no
//! embedded newlines — `serde_json::to_string` never emits them).
//! A client writes a [`Request`] line, the daemon answers with exactly
//! one [`Response`] line, in order, per connection. No framing beyond
//! `\n`, no HTTP, no external dependencies.
//!
//! Durability contract: a [`Response::Accepted`] is only sent after the
//! submission's write-ahead-log record has been fsynced, so an accepted
//! job survives `kill -9` of the daemon at any later instant.

use ecosched_core::{Perf, Price, ResourceRequest, TimeDelta};
use serde::{Deserialize, Serialize};

/// A job submission in wire form: plain integers so every client can
/// construct one without the engine's fixed-point types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Concurrent slots required (the paper's `N`).
    pub nodes: u64,
    /// Wall time in ticks at the minimum performance (the paper's `t`).
    pub wall_ticks: i64,
    /// Minimum node performance, in milli-units (1000 = etalon).
    pub min_perf_milli: i64,
    /// Per-slot price cap in micro-credits per tick (the paper's `C`).
    pub price_cap_micro: i64,
    /// Optional completion deadline (virtual tick). Admission rejects
    /// specs that cannot finish by it even if scheduled at the next
    /// cycle tick.
    pub deadline_tick: Option<i64>,
}

impl JobSpec {
    /// Converts the wire form into an engine request.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first invalid field.
    pub fn to_request(&self) -> Result<ResourceRequest, String> {
        let nodes = usize::try_from(self.nodes).map_err(|_| "nodes out of range".to_owned())?;
        ResourceRequest::new(
            nodes,
            TimeDelta::new(self.wall_ticks),
            Perf::from_milli(self.min_perf_milli),
            Price::from_micro(self.price_cap_micro),
        )
        .map_err(|e| e.to_string())
    }
}

/// Why a submission was refused. Typed so load generators can bucket
/// rejections and tests can assert on the exact cause.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The spec does not describe a valid request.
    Malformed {
        /// What was wrong with it.
        detail: String,
    },
    /// The admission backlog bound is reached; resubmit later.
    BacklogFull {
        /// Jobs currently waiting (pending plus queued arrivals).
        backlog: u64,
        /// The configured bound.
        limit: u64,
    },
    /// The current market cannot host the job within its price cap:
    /// fewer eligible nodes than the job needs (Libra-style budget
    /// feasibility — under the AMP budget `S = C·t·N`, affordability
    /// reduces to per-slot cap eligibility).
    BudgetInfeasible {
        /// Nodes the job needs.
        needed_nodes: u64,
        /// Distinct nodes currently offering an eligible slot.
        eligible_nodes: u64,
    },
    /// The deadline precedes the earliest possible completion (next
    /// cycle tick plus wall time).
    DeadlineInfeasible {
        /// The requested deadline tick.
        deadline: i64,
        /// The earliest completion the daemon could deliver.
        earliest_finish: i64,
    },
    /// Virtual time is already past the last scheduling cycle; the job
    /// could never be scheduled.
    BeyondHorizon {
        /// Current virtual time.
        time: i64,
        /// The final cycle tick.
        horizon: i64,
    },
    /// The daemon is draining for shutdown.
    ShuttingDown,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::Malformed { detail } => write!(f, "malformed spec: {detail}"),
            RejectReason::BacklogFull { backlog, limit } => {
                write!(f, "backlog full ({backlog}/{limit})")
            }
            RejectReason::BudgetInfeasible {
                needed_nodes,
                eligible_nodes,
            } => write!(
                f,
                "budget infeasible: {eligible_nodes} eligible nodes < {needed_nodes} needed"
            ),
            RejectReason::DeadlineInfeasible {
                deadline,
                earliest_finish,
            } => write!(
                f,
                "deadline {deadline} before earliest finish {earliest_finish}"
            ),
            RejectReason::BeyondHorizon { time, horizon } => {
                write!(f, "time {time} past scheduling horizon {horizon}")
            }
            RejectReason::ShuttingDown => write!(f, "daemon shutting down"),
        }
    }
}

/// A client request line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Submit a job for scheduling.
    Submit {
        /// The job.
        spec: JobSpec,
    },
    /// Report daemon state (cheap; the log hash is computed on demand).
    Status,
    /// Snapshot and exit gracefully.
    Shutdown,
}

/// A snapshot of daemon state for `Status` responses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DaemonStatus {
    /// Current virtual time in ticks.
    pub virtual_time: i64,
    /// Events processed since the run began (including before a resume).
    pub events_processed: u64,
    /// Jobs known to the run (every acked submission, processed or not).
    pub arrivals: u64,
    /// Jobs waiting to be scheduled.
    pub backlog: u64,
    /// Committed, not-yet-completed leases.
    pub active_leases: u64,
    /// Submissions accepted over the daemon's lifetime (survives resume:
    /// recomputed from the write-ahead log).
    pub accepted_total: u64,
    /// Submissions rejected since this process started.
    pub rejected_total: u64,
    /// FNV-1a 64 hash of the event log so far (16 hex digits) — the
    /// equivalence token for offline replay.
    pub log_hash: String,
}

/// A daemon response line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// The submission is durable and injected; it will be scheduled by
    /// an upcoming cycle tick.
    Accepted {
        /// The shard the router placed the job on (0 on a single-shard
        /// daemon).
        shard: u32,
        /// The shard-local job id (arrival order, stable across resume).
        job: u32,
        /// The virtual arrival time the job was injected at.
        time: i64,
    },
    /// The submission was refused; nothing was persisted.
    Rejected {
        /// Why.
        reason: RejectReason,
    },
    /// Daemon state.
    Status {
        /// The state.
        status: DaemonStatus,
    },
    /// Graceful shutdown acknowledged; the state was snapshotted.
    ShuttingDown,
    /// The request line could not be understood.
    Error {
        /// What went wrong.
        detail: String,
    },
}

/// Serializes a protocol value as one wire line (no trailing newline).
pub fn encode_line<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value).unwrap_or_default()
}

/// Parses one wire line.
///
/// # Errors
///
/// A human-readable parse failure (sent back as [`Response::Error`]).
pub fn decode_line<T: for<'de> Deserialize<'de>>(line: &str) -> Result<T, String> {
    serde_json::from_str(line.trim()).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            nodes: 2,
            wall_ticks: 30,
            min_perf_milli: 1000,
            price_cap_micro: 2_000_000,
            deadline_tick: Some(500),
        }
    }

    #[test]
    fn requests_round_trip() {
        for request in [
            Request::Submit { spec: spec() },
            Request::Status,
            Request::Shutdown,
        ] {
            let line = encode_line(&request);
            assert!(!line.contains('\n'));
            let back: Request = decode_line(&line).unwrap();
            assert_eq!(back, request);
        }
    }

    #[test]
    fn responses_round_trip() {
        for response in [
            Response::Accepted {
                shard: 1,
                job: 7,
                time: 42,
            },
            Response::Rejected {
                reason: RejectReason::BacklogFull {
                    backlog: 10,
                    limit: 10,
                },
            },
            Response::ShuttingDown,
            Response::Error {
                detail: "nope".into(),
            },
        ] {
            let back: Response = decode_line(&encode_line(&response)).unwrap();
            assert_eq!(back, response);
        }
    }

    #[test]
    fn spec_converts_and_validates() {
        let request = spec().to_request().unwrap();
        assert_eq!(request.nodes(), 2);
        assert_eq!(request.wall_time().ticks(), 30);
        let bad = JobSpec { nodes: 0, ..spec() };
        assert!(bad.to_request().is_err());
        let bad = JobSpec {
            wall_ticks: 0,
            ..spec()
        };
        assert!(bad.to_request().is_err());
    }

    #[test]
    fn garbage_lines_fail_typed() {
        assert!(decode_line::<Request>("not json").is_err());
        assert!(decode_line::<Request>("{\"Unknown\":1}").is_err());
    }
}
