//! The service crate's error type.

use ecosched_engine::EngineError;
use ecosched_federation::FederationError;
use ecosched_persist::PersistError;

/// Anything that can go wrong booting, serving, or verifying a daemon.
#[derive(Debug)]
pub enum ServiceError {
    /// Configuration or manifest problem.
    Config(String),
    /// Engine-level failure (scheduling cycle error, checkpoint
    /// mismatch).
    Engine(EngineError),
    /// Federation-level failure (shard step, routing, resume).
    Federation(FederationError),
    /// Snapshot layer failure.
    Persist(PersistError),
    /// Filesystem or socket failure.
    Io(std::io::Error),
    /// The durable record and the engine disagree — resume or replay
    /// reconstructed a different run than the one recorded.
    Diverged(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Config(detail) => write!(f, "configuration: {detail}"),
            ServiceError::Engine(e) => write!(f, "engine: {e}"),
            ServiceError::Federation(e) => write!(f, "federation: {e}"),
            ServiceError::Persist(e) => write!(f, "persistence: {e}"),
            ServiceError::Io(e) => write!(f, "i/o: {e}"),
            ServiceError::Diverged(detail) => write!(f, "replay divergence: {detail}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Engine(e) => Some(e),
            ServiceError::Federation(e) => Some(e),
            ServiceError::Persist(e) => Some(e),
            ServiceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for ServiceError {
    fn from(e: EngineError) -> Self {
        ServiceError::Engine(e)
    }
}

impl From<FederationError> for ServiceError {
    fn from(e: FederationError) -> Self {
        ServiceError::Federation(e)
    }
}

impl From<PersistError> for ServiceError {
    fn from(e: PersistError) -> Self {
        ServiceError::Persist(e)
    }
}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e)
    }
}
