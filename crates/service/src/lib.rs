//! Service mode: a long-running scheduling daemon over the
//! discrete-event engine.
//!
//! `ecosched-serve` accepts job submissions as newline-delimited JSON
//! over a local TCP or Unix socket, screens them with Libra-style
//! admission control (backlog backpressure, deadline and budget
//! feasibility against the live market — [`admission`]), injects
//! accepted jobs into the running engine between steps, and paces the
//! virtual clock against wall time ([`daemon`]). Durability is
//! fsync-before-ack: every accepted submission is group-committed to a
//! write-ahead log ([`wal`]) before its `Accepted` response, snapshots
//! rotate on a cycle cadence and on graceful shutdown
//! ([`ecosched_persist::rotate`]), and a restarted daemon resumes from
//! the newest usable snapshot plus the WAL suffix with a byte-identical
//! event log ([`session`], [`replay`]) — `kill -9` at any instant loses
//! no acknowledged job.
//!
//! Determinism contract (service form): a run is a pure function of
//! `(config, seed, accepted-submission sequence)`; the WAL records the
//! sequence, and [`replay::verify_data_dir`] proves any data directory
//! against it offline.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod admission;
pub mod client;
pub mod daemon;
pub mod error;
pub mod manifest;
pub mod metrics_http;
pub mod obs;
pub mod protocol;
pub mod replay;
pub mod session;
pub mod signals;
pub mod wal;

pub use admission::{decide, AdmissionPolicy, MarketView};
pub use client::{Client, Endpoint};
pub use daemon::{serve, ServeOptions};
pub use error::ServiceError;
pub use manifest::{load_manifest, save_manifest, SelectorChoice, ServiceManifest};
pub use metrics_http::spawn_metrics_listener;
pub use obs::{build_service_obs, ServiceIds, ServiceObs, ServiceObsBundle};
pub use protocol::{DaemonStatus, JobSpec, RejectReason, Request, Response};
pub use replay::{replay_wal, verify_data_dir, VerifyReport};
pub use session::{Ack, BootMode, Session};
pub use wal::{load_wal, LoadedWal, Wal, WalEntry};
