//! The socket daemon: accept loops, the virtual-time pacing loop, and
//! group-commit request handling around a [`Session`].
//!
//! # Threading model
//!
//! Connection handler threads never touch engine state. Each parsed
//! request is sent over an mpsc channel to the single serve loop, which
//! owns the [`Session`]; the handler blocks on a per-request reply
//! channel and writes the response line back to its client. All
//! scheduling state therefore remains single-threaded and the engine's
//! determinism contract is untouched by connection concurrency — the
//! only nondeterminism is the *order* submissions arrive in, which is
//! exactly what the write-ahead log records.
//!
//! # Pacing
//!
//! The serve loop maps wall-clock time to virtual time at
//! `ticks_per_sec`, starting from the resumed state's last event time.
//! Each iteration drains queued requests, injects accepted submissions
//! at the current virtual tick, commits them with one fsync, acks, and
//! then steps the engine up to the virtual target (taking cadence
//! snapshots after cycle ticks). SIGTERM (or a `Shutdown` request)
//! triggers commit + final snapshot + exit.

use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use ecosched_select::{Alp, Amp, SlotSelector};

use crate::client::Endpoint;
use crate::error::ServiceError;
use crate::manifest::{load_manifest, save_manifest, SelectorChoice, ServiceManifest};
use crate::metrics_http::spawn_metrics_listener;
use crate::obs::build_service_obs;
use crate::protocol::{decode_line, encode_line, RejectReason, Request, Response};
use crate::session::Session;
use crate::signals;

/// Options for one daemon process.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// The durable state directory (manifest, WAL, snapshots).
    pub data_dir: PathBuf,
    /// Where to listen.
    pub listen: Endpoint,
    /// Virtual ticks per wall-clock second.
    pub ticks_per_sec: f64,
    /// Manifest for a *fresh* data directory. An existing directory's
    /// stored manifest always wins (the engine identity is pinned);
    /// `None` means use [`ServiceManifest::default`] when fresh.
    pub manifest: Option<ServiceManifest>,
    /// Where to expose `/metrics`, `/healthz`, and `/trace` over plain
    /// HTTP/1.1; `None` disables observability entirely (the recorder
    /// stays off and every instrumentation call is a no-op).
    pub metrics: Option<Endpoint>,
}

/// One parsed request plus the channel its response goes back on.
struct Inbound {
    request: Request,
    reply: mpsc::Sender<Response>,
}

/// Runs the daemon until shutdown. Prints exactly one
/// `READY <endpoint>` line to stdout once the socket is listening and
/// the session has booted (crash recovery included) — supervisors and
/// tests key on it.
///
/// # Errors
///
/// Boot, bind, or fatal serve-loop failures (a failed group commit is
/// fatal by design: un-acked state must not keep serving).
pub fn serve(options: &ServeOptions) -> Result<(), ServiceError> {
    let manifest = match load_manifest(&options.data_dir)? {
        Some(stored) => stored,
        None => {
            let manifest = options.manifest.clone().unwrap_or_default();
            manifest.validate()?;
            std::fs::create_dir_all(&options.data_dir)?;
            save_manifest(&options.data_dir, &manifest)?;
            manifest
        }
    };
    match manifest.selector {
        SelectorChoice::Amp => serve_with(options, manifest, Amp::new()),
        SelectorChoice::Alp => serve_with(options, manifest, Alp::new()),
    }
}

fn serve_with<S: SlotSelector + Copy>(
    options: &ServeOptions,
    manifest: ServiceManifest,
    selector: S,
) -> Result<(), ServiceError> {
    let mut session = Session::open(&options.data_dir, manifest, selector)?;
    signals::install_term_handler();

    // Observability comes up after boot replay (recovery is not live
    // traffic) and before READY, so a supervisor that saw READY can
    // already scrape.
    if let Some(metrics_endpoint) = &options.metrics {
        let bundle = build_service_obs(session.state().shard_count());
        let recorder = bundle.recorder.clone();
        let service_obs = bundle.service.clone();
        session.set_obs(bundle);
        let bound = spawn_metrics_listener(metrics_endpoint, recorder, service_obs)?;
        println!("METRICS {bound}");
    }

    let (tx, rx) = mpsc::channel::<Inbound>();
    let ready_endpoint = spawn_listener(&options.listen, tx)?;
    // The READY line is the durability barrier for supervisors: the boot
    // replay is done and the socket is accepting.
    println!("READY {ready_endpoint}");
    let _ = std::io::stdout().flush();

    let epoch = Instant::now();
    let origin = session.virtual_time();
    let tps = if options.ticks_per_sec > 0.0 {
        options.ticks_per_sec
    } else {
        1000.0
    };

    loop {
        let now_vt = origin + (epoch.elapsed().as_secs_f64() * tps) as i64;

        // Gather a batch: block until the first request or the next
        // pacing deadline, then drain whatever else is already queued
        // (group commit). A request arriving mid-wait wakes the loop
        // immediately, so the timeout only bounds *pacing* granularity:
        // short when the next event is imminent, long when the queue is
        // idle (an idle daemon must not spin).
        let wait = match session.next_event_in(now_vt, tps) {
            Some(due) => due.clamp(Duration::from_millis(2), Duration::from_millis(50)),
            None => Duration::from_millis(50),
        };
        let mut batch = Vec::new();
        let mut batch_start = Instant::now();
        match rx.recv_timeout(wait) {
            Ok(inbound) => {
                // The ack-latency clock starts when the batch leaves the
                // channel, not when the loop woke up idle.
                batch_start = Instant::now();
                batch.push(inbound);
                while let Ok(more) = rx.try_recv() {
                    batch.push(more);
                    if batch.len() >= 1024 {
                        break;
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => return Ok(()),
        }

        let mut pending_acks: Vec<(mpsc::Sender<Response>, u32, u32)> = Vec::new();
        let mut shutdown_replies: Vec<mpsc::Sender<Response>> = Vec::new();
        for inbound in batch {
            match inbound.request {
                Request::Submit { spec } => match session.submit(&spec, now_vt) {
                    Ok(ack) => pending_acks.push((inbound.reply, ack.shard, ack.job)),
                    Err(reason) => {
                        let _ = inbound.reply.send(Response::Rejected { reason });
                    }
                },
                Request::Status => {
                    let _ = inbound.reply.send(Response::Status {
                        status: session.status(),
                    });
                }
                Request::Shutdown => shutdown_replies.push(inbound.reply),
            }
        }

        // One fsync covers the whole batch; only then do acks go out.
        let acks = session.commit()?;
        for (reply, shard, job) in pending_acks {
            let ack = acks.iter().find(|a| a.shard == shard && a.job == job);
            let response = match ack {
                Some(a) => Response::Accepted {
                    shard: a.shard,
                    job: a.job,
                    time: a.time,
                },
                // Unreachable by construction; never ack un-fsynced work.
                None => Response::Error {
                    detail: "commit did not cover this submission".into(),
                },
            };
            let _ = reply.send(response);
            session.obs().observe_ack(batch_start.elapsed());
        }

        if !shutdown_replies.is_empty() || signals::term_requested() {
            session.shutdown()?;
            for reply in shutdown_replies {
                let _ = reply.send(Response::ShuttingDown);
                // The handler drops its receiver only after the response
                // line is flushed to the socket, which turns send() into
                // an error — poll for that (bounded) so process exit
                // can't race the write. Probe sends are never read.
                let deadline = Instant::now() + Duration::from_secs(1);
                while reply.send(Response::ShuttingDown).is_ok() && Instant::now() < deadline {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            return Ok(());
        }

        session.advance_to(now_vt)?;
    }
}

/// Binds the endpoint and spawns the accept loop. Returns the endpoint
/// actually bound (TCP port 0 is resolved to the assigned port).
fn spawn_listener(listen: &Endpoint, tx: mpsc::Sender<Inbound>) -> Result<Endpoint, ServiceError> {
    match listen {
        Endpoint::Tcp(addr) => {
            let listener = TcpListener::bind(addr)?;
            let bound = Endpoint::Tcp(listener.local_addr()?.to_string());
            std::thread::spawn(move || {
                for stream in listener.incoming().flatten() {
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        let reader = match stream.try_clone() {
                            Ok(clone) => BufReader::new(clone),
                            Err(_) => return,
                        };
                        handle_connection(reader, stream, &tx);
                    });
                }
            });
            Ok(bound)
        }
        Endpoint::Unix(path) => {
            // A stale socket file from a killed process blocks bind.
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)?;
            let bound = Endpoint::Unix(path.clone());
            std::thread::spawn(move || {
                for stream in listener.incoming().flatten() {
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        let reader = match stream.try_clone() {
                            Ok(clone) => BufReader::new(clone),
                            Err(_) => return,
                        };
                        handle_connection(reader, stream, &tx);
                    });
                }
            });
            Ok(bound)
        }
    }
}

/// Reads request lines, relays them to the serve loop, writes response
/// lines. Ends on EOF, I/O failure, or daemon shutdown.
fn handle_connection<R: std::io::Read, W: std::io::Write>(
    reader: BufReader<R>,
    mut writer: W,
    tx: &mpsc::Sender<Inbound>,
) {
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        let (reply_tx, reply_rx) = mpsc::channel();
        let response = match decode_line::<Request>(&line) {
            Err(detail) => Response::Error { detail },
            Ok(request) => {
                if tx
                    .send(Inbound {
                        request,
                        reply: reply_tx,
                    })
                    .is_err()
                {
                    // Serve loop gone (shutdown); refuse politely.
                    Response::Rejected {
                        reason: RejectReason::ShuttingDown,
                    }
                } else {
                    match reply_rx.recv() {
                        Ok(response) => response,
                        Err(_) => Response::Rejected {
                            reason: RejectReason::ShuttingDown,
                        },
                    }
                }
            }
        };
        let done = matches!(response, Response::ShuttingDown);
        if writeln!(writer, "{}", encode_line(&response)).is_err() {
            return;
        }
        let _ = writer.flush();
        // Only now release the reply channel: the serve loop's shutdown
        // path probes it to learn the line reached the wire before the
        // process exits (process exit must not race this write).
        drop(reply_rx);
        if done {
            return;
        }
    }
}
