//! A small blocking client for the daemon's NDJSON protocol, with
//! per-request timeouts and bounded-exponential-backoff connect.

use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

use crate::protocol::{decode_line, encode_line, JobSpec, Request, Response};

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// `tcp:HOST:PORT` — a loopback TCP address.
    Tcp(String),
    /// `unix:PATH` — a Unix-domain socket.
    Unix(PathBuf),
}

impl Endpoint {
    /// Parses `tcp:ADDR` / `unix:PATH`.
    ///
    /// # Errors
    ///
    /// A description of the expected syntax.
    pub fn parse(text: &str) -> Result<Endpoint, String> {
        if let Some(addr) = text.strip_prefix("tcp:") {
            Ok(Endpoint::Tcp(addr.to_owned()))
        } else if let Some(path) = text.strip_prefix("unix:") {
            Ok(Endpoint::Unix(PathBuf::from(path)))
        } else {
            Err(format!(
                "endpoint must be tcp:HOST:PORT or unix:PATH, got {text:?}"
            ))
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

#[derive(Debug)]
enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

/// A connected protocol client. One request in flight at a time.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<Stream>,
}

impl std::io::Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Stream {
    fn write_line(&mut self, line: &str) -> std::io::Result<()> {
        let text = format!("{line}\n");
        match self {
            Stream::Tcp(s) => s.write_all(text.as_bytes()),
            Stream::Unix(s) => s.write_all(text.as_bytes()),
        }
    }

    fn try_clone(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }

    fn set_timeouts(&self, timeout: Duration) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => {
                s.set_read_timeout(Some(timeout))?;
                s.set_write_timeout(Some(timeout))
            }
            Stream::Unix(s) => {
                s.set_read_timeout(Some(timeout))?;
                s.set_write_timeout(Some(timeout))
            }
        }
    }
}

impl Client {
    /// Connects with bounded exponential backoff: `attempts` tries,
    /// sleeping `base_delay * 2^k` (capped at one second) between
    /// failures. Every request on the returned client uses `timeout`
    /// for both write and read.
    ///
    /// # Errors
    ///
    /// The last connect failure after the attempt budget is spent.
    pub fn connect(
        endpoint: &Endpoint,
        timeout: Duration,
        attempts: u32,
        base_delay: Duration,
    ) -> std::io::Result<Client> {
        let mut last_err =
            std::io::Error::new(std::io::ErrorKind::NotConnected, "no connect attempts made");
        for k in 0..attempts.max(1) {
            if k > 0 {
                let backoff = base_delay
                    .saturating_mul(2u32.saturating_pow(k - 1))
                    .min(Duration::from_secs(1));
                std::thread::sleep(backoff);
            }
            let connected = match endpoint {
                Endpoint::Tcp(addr) => TcpStream::connect(addr).map(Stream::Tcp),
                Endpoint::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
            };
            match connected {
                Ok(stream) => {
                    stream.set_timeouts(timeout)?;
                    return Ok(Client {
                        reader: BufReader::new(stream),
                    });
                }
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    /// Sends one request and reads its response line.
    ///
    /// # Errors
    ///
    /// I/O failure or timeout (`WouldBlock`/`TimedOut` kinds), or
    /// `InvalidData` when the response line does not parse. After an
    /// error the connection state is unknown — reconnect.
    pub fn request(&mut self, request: &Request) -> std::io::Result<Response> {
        self.reader
            .get_mut()
            .try_clone()?
            .write_line(&encode_line(request))?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        decode_line(&line).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Submits one job.
    ///
    /// # Errors
    ///
    /// As [`Self::request`].
    pub fn submit(&mut self, spec: JobSpec) -> std::io::Result<Response> {
        self.request(&Request::Submit { spec })
    }

    /// Fetches daemon status.
    ///
    /// # Errors
    ///
    /// As [`Self::request`].
    pub fn status(&mut self) -> std::io::Result<Response> {
        self.request(&Request::Status)
    }

    /// Requests graceful shutdown.
    ///
    /// # Errors
    ///
    /// As [`Self::request`].
    pub fn shutdown(&mut self) -> std::io::Result<Response> {
        self.request(&Request::Shutdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_parse_and_display() {
        assert_eq!(
            Endpoint::parse("tcp:127.0.0.1:7444").unwrap(),
            Endpoint::Tcp("127.0.0.1:7444".into())
        );
        assert_eq!(
            Endpoint::parse("unix:/tmp/e.sock").unwrap(),
            Endpoint::Unix(PathBuf::from("/tmp/e.sock"))
        );
        assert!(Endpoint::parse("http://nope").is_err());
        assert_eq!(
            Endpoint::parse("tcp:1.2.3.4:5").unwrap().to_string(),
            "tcp:1.2.3.4:5"
        );
    }

    #[test]
    fn connect_backoff_is_bounded() {
        let start = std::time::Instant::now();
        let missing = Endpoint::Unix(PathBuf::from("/nonexistent/ecosched.sock"));
        let err = Client::connect(
            &missing,
            Duration::from_millis(100),
            3,
            Duration::from_millis(5),
        )
        .unwrap_err();
        assert!(start.elapsed() < Duration::from_secs(2));
        assert_ne!(err.kind(), std::io::ErrorKind::Other);
    }
}
