//! A minimal hand-rolled HTTP/1.1 listener for metrics exposition — no
//! HTTP dependency, just enough protocol for `curl` and a Prometheus
//! scraper:
//!
//! - `GET /metrics` — Prometheus text exposition format 0.0.4;
//! - `GET /healthz` — a one-object JSON liveness summary;
//! - `GET /trace` — the span ring buffer as NDJSON.
//!
//! Each connection serves one request and closes (`Connection: close`),
//! which sidesteps keep-alive state entirely; scrapers reconnect per
//! scrape anyway. The listener thread never touches session state — it
//! reads the lock-free registry through a cloned [`Recorder`] handle, so
//! scraping cannot perturb the serve loop or the determinism contract.

use std::io::{BufRead as _, BufReader, Read, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;

use ecosched_obs::Recorder;

use crate::client::Endpoint;
use crate::error::ServiceError;
use crate::obs::ServiceObs;

/// Binds `listen` and spawns the scrape loop. Returns the endpoint
/// actually bound (TCP port 0 resolved to the assigned port).
///
/// # Errors
///
/// Bind failures.
pub fn spawn_metrics_listener(
    listen: &Endpoint,
    recorder: Recorder,
    obs: ServiceObs,
) -> Result<Endpoint, ServiceError> {
    match listen {
        Endpoint::Tcp(addr) => {
            let listener = TcpListener::bind(addr.as_str())?;
            let bound = Endpoint::Tcp(listener.local_addr()?.to_string());
            std::thread::spawn(move || {
                for stream in listener.incoming().flatten() {
                    let recorder = recorder.clone();
                    let obs = obs.clone();
                    std::thread::spawn(move || serve_one(stream, &recorder, &obs));
                }
            });
            Ok(bound)
        }
        Endpoint::Unix(path) => {
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)?;
            let bound = Endpoint::Unix(path.clone());
            std::thread::spawn(move || {
                for stream in listener.incoming().flatten() {
                    let recorder = recorder.clone();
                    let obs = obs.clone();
                    std::thread::spawn(move || serve_one(stream, &recorder, &obs));
                }
            });
            Ok(bound)
        }
    }
}

/// Reads one request, writes one response, closes.
fn serve_one<S: Read + Write>(stream: S, recorder: &Recorder, obs: &ServiceObs) {
    let mut stream = stream;
    let mut reader = BufReader::new(&mut stream);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain headers up to the blank line; their content is irrelevant.
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => {}
            Err(_) => return,
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or(path);
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                recorder
                    .registry()
                    .map(|reg| reg.render_prometheus())
                    .unwrap_or_default(),
            ),
            "/healthz" => ("200 OK", "application/json", obs.health_json()),
            "/trace" => (
                "200 OK",
                "application/x-ndjson",
                recorder
                    .tracer()
                    .map(|t| t.dump_ndjson())
                    .unwrap_or_default(),
            ),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found\n".to_string(),
            ),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::build_service_obs;
    use std::net::TcpStream;

    fn get(endpoint: &Endpoint, path: &str) -> (String, String) {
        let Endpoint::Tcp(addr) = endpoint else {
            panic!("test uses TCP");
        };
        let mut stream = TcpStream::connect(addr.as_str()).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut reader = BufReader::new(stream);
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        let mut body = String::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            if line == "\r\n" || line.is_empty() {
                break;
            }
        }
        std::io::Read::read_to_string(&mut reader, &mut body).unwrap();
        (status.trim().to_string(), body)
    }

    #[test]
    fn serves_metrics_health_and_404() {
        let bundle = build_service_obs(1);
        bundle.service.on_submission();
        bundle.service.on_accept();
        let endpoint = spawn_metrics_listener(
            &Endpoint::Tcp("127.0.0.1:0".into()),
            bundle.recorder.clone(),
            bundle.service.clone(),
        )
        .unwrap();

        let (status, body) = get(&endpoint, "/metrics");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("# TYPE ecosched_service_accepted_total counter"));
        assert!(body.contains("ecosched_service_accepted_total 1"));

        let (status, body) = get(&endpoint, "/healthz");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("\"accepted\":1"));

        let (status, _) = get(&endpoint, "/nope");
        assert_eq!(status, "HTTP/1.1 404 Not Found");
    }
}
