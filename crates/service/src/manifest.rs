//! The service manifest: the `(config, seed, policy)` identity of a
//! data directory, persisted at first boot and reloaded on every
//! restart.
//!
//! Resume correctness requires the restarted daemon to rebuild the
//! *identical* engine — same configuration fingerprint, same selector,
//! same seed — before replaying the write-ahead log. The manifest pins
//! all of that in `manifest.json` inside the data directory, so restart
//! takes only `--data-dir`; command-line scheduling flags apply to
//! fresh directories and are refused as drift on existing ones.

use std::path::{Path, PathBuf};

use ecosched_engine::{ArrivalConfig, EngineConfig};
use ecosched_federation::{FederationConfig, RoutePolicy};
use serde::{Deserialize, Serialize};

use crate::admission::AdmissionPolicy;
use crate::error::ServiceError;

/// Which slot-selection algorithm the daemon schedules with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectorChoice {
    /// Aggregated-budget selection (the paper's AMP).
    Amp,
    /// Per-slot price-cap selection (the paper's ALP).
    Alp,
}

/// Everything a restarted daemon needs to rebuild the exact engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceManifest {
    /// The engine seed.
    pub seed: u64,
    /// The engine configuration. `arrivals` must be
    /// [`ArrivalConfig::External`] — service mode owns the job stream.
    pub config: EngineConfig,
    /// The scheduling algorithm.
    pub selector: SelectorChoice,
    /// Shard engines behind the submission surface. One shard is the
    /// classic single-engine daemon; more shards run a federation whose
    /// routing decisions are WAL-recorded per job.
    pub shards: u32,
    /// How submissions are routed across shards (ignored at one shard).
    pub route: RoutePolicy,
    /// The admission policy.
    pub admission: AdmissionPolicy,
    /// Snapshot after every N-th cycle tick (0 disables cadence
    /// snapshots; shutdown still snapshots).
    pub snapshot_every_cycles: u32,
    /// Rotated snapshots retained on disk.
    pub keep_snapshots: usize,
}

impl Default for ServiceManifest {
    fn default() -> Self {
        ServiceManifest {
            seed: 42,
            config: EngineConfig {
                arrivals: ArrivalConfig::External,
                cycles: 64,
                ..EngineConfig::default()
            },
            selector: SelectorChoice::Amp,
            shards: 1,
            route: RoutePolicy::LeastBacklog,
            admission: AdmissionPolicy::default(),
            snapshot_every_cycles: 4,
            keep_snapshots: 3,
        }
    }
}

impl ServiceManifest {
    /// Validates service-mode constraints on top of engine validation.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Config`] describing the violation.
    pub fn validate(&self) -> Result<(), ServiceError> {
        self.fed_config()
            .validate()
            .map_err(|e| ServiceError::Config(e.to_string()))?;
        if self.config.arrivals != ArrivalConfig::External {
            return Err(ServiceError::Config(
                "service mode requires arrivals = External: every job must enter \
                 through the socket so the WAL is the complete job stream"
                    .into(),
            ));
        }
        Ok(())
    }

    /// The federation this manifest describes. Cross-shard co-allocation
    /// stays off in service mode: every WAL entry must replay as exactly
    /// one single-shard injection, so recovery never re-runs a two-phase
    /// protocol whose outcome the log does not record.
    #[must_use]
    pub fn fed_config(&self) -> FederationConfig {
        FederationConfig {
            route: self.route,
            ..FederationConfig::new(self.config.clone(), self.shards)
        }
    }

    /// The final cycle tick — the daemon's scheduling horizon.
    #[must_use]
    pub fn horizon(&self) -> i64 {
        i64::from(self.config.cycles.saturating_sub(1)) * self.config.cycle_length
    }
}

/// Path of the manifest inside a data directory.
#[must_use]
pub fn manifest_path(data_dir: &Path) -> PathBuf {
    data_dir.join("manifest.json")
}

/// Saves the manifest (pretty-printed for operator eyes).
///
/// # Errors
///
/// [`ServiceError::Io`] on write failure.
pub fn save_manifest(data_dir: &Path, manifest: &ServiceManifest) -> Result<(), ServiceError> {
    let text = serde_json::to_string_pretty(manifest).unwrap_or_default();
    std::fs::write(manifest_path(data_dir), text)?;
    Ok(())
}

/// Loads the manifest of an existing data directory, if there is one.
///
/// # Errors
///
/// [`ServiceError::Io`] on read failure, [`ServiceError::Config`] when
/// the file exists but does not parse or validate.
pub fn load_manifest(data_dir: &Path) -> Result<Option<ServiceManifest>, ServiceError> {
    let path = manifest_path(data_dir);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(ServiceError::Io(e)),
    };
    let manifest: ServiceManifest = serde_json::from_str(&text)
        .map_err(|e| ServiceError::Config(format!("manifest.json does not parse: {e}")))?;
    manifest.validate()?;
    Ok(Some(manifest))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_manifest_validates() {
        ServiceManifest::default().validate().unwrap();
    }

    #[test]
    fn generator_arrivals_are_refused() {
        let bad = ServiceManifest {
            config: EngineConfig::default(), // Poisson arrivals
            ..ServiceManifest::default()
        };
        assert!(matches!(bad.validate(), Err(ServiceError::Config(_))));
    }

    #[test]
    fn manifest_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("ecosched-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = ServiceManifest::default();
        save_manifest(&dir, &manifest).unwrap();
        let back = load_manifest(&dir).unwrap().expect("saved");
        assert_eq!(back, manifest);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_manifest_is_none() {
        let dir = std::env::temp_dir().join("ecosched-manifest-missing");
        std::fs::create_dir_all(&dir).unwrap();
        let _ = std::fs::remove_file(manifest_path(&dir));
        assert!(load_manifest(&dir).unwrap().is_none());
    }

    #[test]
    fn horizon_is_last_tick() {
        let m = ServiceManifest::default();
        assert_eq!(m.horizon(), 63 * 60);
    }
}
