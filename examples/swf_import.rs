//! Scheduling a real-world-style trace: parse a Standard Workload Format
//! (SWF) excerpt — the format of the Parallel Workloads Archive the
//! backfilling literature evaluates on — give its rigid jobs economic
//! attributes, and run them through the full two-stage pipeline.
//!
//! Run with: `cargo run --example swf_import [path/to/trace.swf]`

use ecosched::prelude::*;
use ecosched::sim::swf::{batch_from_swf, parse_swf, SwfImportConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A small excerpt in SWF 2.2 layout (job, submit, wait, run time,
/// allocated procs, …, requested procs, requested time, …).
const EMBEDDED_TRACE: &str = "\
; SWF excerpt for the ecosched quick demo
1   0  10  3600  4 -1 -1  4  3600 -1 1 3 4 1 1 1 -1 -1
2  30   5  1800  2 -1 -1  2  2400 -1 1 3 4 1 1 1 -1 -1
3  60   0  5400  1 -1 -1  1  6000 -1 1 3 4 1 1 1 -1 -1
4  90   2   600  8 -1 -1  8   900 -1 1 3 4 1 1 1 -1 -1
5 120   1  2700  3 -1 -1  3  3000 -1 1 3 4 1 1 1 -1 -1
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let text = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => EMBEDDED_TRACE.to_string(),
    };

    let trace = parse_swf(&text)?;
    println!("parsed {} trace jobs", trace.len());

    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let config = SwfImportConfig::default();
    let batch = batch_from_swf(&trace, &config, &mut rng);
    println!(
        "imported as an economic batch ({} jobs, {} s per tick, VO width cap {}):",
        batch.len(),
        config.seconds_per_tick,
        config.max_procs
    );
    for job in &batch {
        println!("  {job}");
    }

    let list = SlotGenerator::new(SlotGenConfig::default()).generate(&mut rng);
    let result = run_iteration(Amp::new(), &list, &batch, &IterationConfig::default())?;
    println!(
        "\nscheduled {} of {} jobs on a {}-slot market (AMP, time minimization)",
        batch.len() - result.postponed.len(),
        batch.len(),
        list.len()
    );
    if let Some(assignment) = &result.assignment {
        println!(
            "chosen combination: T(s̄) = {}, C(s̄) = {} (B* = {})",
            assignment.total_time(),
            assignment.total_cost(),
            result.budget.expect("assignment implies budget")
        );
    }
    Ok(())
}
