//! The full two-stage pipeline on generated inputs: the paper's
//! generators → alternatives search (ALP and AMP) → VO limits (Eq. 2/3) →
//! backward-run combination optimization, under both criteria.
//!
//! Run with: `cargo run --example batch_pipeline [seed]`

use ecosched::optimize::efficient_menu;
use ecosched::prelude::*;
use ecosched::sim::IterationResult;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn describe(name: &str, result: &IterationResult) {
    println!("--- {name}");
    println!(
        "  alternatives: {} total ({:.2} per job), {} passes",
        result.search.alternatives.total_found(),
        result.search.alternatives.avg_per_job(),
        result.search.stats.passes
    );
    println!(
        "  VO limits: T* = {}, B* = {}",
        result.quota,
        result
            .budget
            .map_or_else(|| "-".to_string(), |b| b.to_string())
    );
    match &result.assignment {
        Some(a) => {
            println!(
                "  chosen combination: T(s̄) = {} ({:.2}/job), C(s̄) = {} ({:.2}/job)",
                a.total_time(),
                a.avg_time(),
                a.total_cost(),
                a.avg_cost()
            );
        }
        None => println!("  no job could be scheduled this iteration"),
    }
    if !result.postponed.is_empty() {
        println!("  postponed to the next iteration: {:?}", result.postponed);
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2011);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    // The paper's Sec. 5 distributions.
    let list = SlotGenerator::new(SlotGenConfig::default()).generate(&mut rng);
    let batch = JobGenerator::new(JobGenConfig::default()).generate(&mut rng);
    println!(
        "generated {} vacant slots and a {}-job batch (seed {seed})\n",
        list.len(),
        batch.len()
    );

    for criterion in [Criterion::MinTimeUnderBudget, Criterion::MinCostUnderTime] {
        let config = IterationConfig {
            criterion,
            ..IterationConfig::default()
        };
        println!("== criterion: {criterion:?}");
        let alp = run_iteration(Alp::new(), &list, &batch, &config)?;
        let amp = run_iteration(Amp::new(), &list, &batch, &config)?;
        describe("ALP", &alp);
        describe("AMP", &amp);
        if let (Some(a), Some(b)) = (&alp.assignment, &amp.assignment) {
            if alp.all_covered() && amp.all_covered() {
                println!(
                    "  ⇒ AMP vs ALP: time ×{:.2}, cost ×{:.2}\n",
                    b.avg_time() / a.avg_time(),
                    b.avg_cost() / a.avg_cost()
                );
            } else {
                println!();
            }
        } else {
            println!();
        }
    }

    // The VO's full decision menu (the paper's general vector-criteria
    // case): every Pareto-efficient combination within B* and T*,
    // evaluated as ⟨C, D, T, I⟩.
    let amp = run_iteration(Amp::new(), &list, &batch, &IterationConfig::default())?;
    let covered: Vec<_> = amp
        .search
        .alternatives
        .per_job()
        .iter()
        .filter(|ja| !ja.is_empty())
        .cloned()
        .collect();
    if let Some(budget) = amp.budget {
        let menu = efficient_menu(&covered, budget, amp.quota)?;
        println!(
            "== VO decision menu over AMP's alternatives ({} efficient combinations):",
            menu.len()
        );
        for (assignment, criteria) in menu.iter().take(8) {
            println!(
                "  T(s̄)={:>5} C(s̄)={:>12}  {}",
                assignment.total_time(),
                assignment.total_cost(),
                criteria
            );
        }
        if menu.len() > 8 {
            println!("  … and {} more", menu.len() - 8);
        }
    }
    Ok(())
}
