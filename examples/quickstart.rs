//! Quickstart: publish a handful of vacant slots, ask for a co-allocation
//! window with both ALP and AMP, commit the better one, and watch the
//! slot list shrink.
//!
//! Run with: `cargo run --example quickstart`

use ecosched::prelude::*;

fn main() -> Result<(), CoreError> {
    // Five heterogeneous nodes publish one vacant slot each. Prices grow
    // with performance (the paper's price/quality coupling).
    let specs = [
        // (node, performance, price/tick, vacant from, vacant to)
        (0, 1.0, 2, 0, 500),
        (1, 1.2, 2, 30, 400),
        (2, 1.5, 3, 60, 520),
        (3, 2.0, 5, 60, 450),
        (4, 3.0, 9, 100, 600),
    ];
    let slots = specs
        .iter()
        .enumerate()
        .map(|(i, &(node, perf, price, from, to))| {
            Slot::new(
                SlotId::new(i as u64),
                NodeId::new(node),
                Perf::from_f64(perf),
                Price::from_credits(price),
                Span::new(TimePoint::new(from), TimePoint::new(to)).expect("valid span"),
            )
        })
        .collect::<Result<Vec<_>, _>>()?;
    let mut list = SlotList::from_slots(slots)?;
    println!("published vacancies:\n{list}");

    // A parallel job: 3 concurrent tasks, 120 etalon ticks of work each,
    // nodes of rate ≥ 1.0, at most 4 credits per slot per tick.
    let request = ResourceRequest::new(
        3,
        TimeDelta::new(120),
        Perf::from_f64(1.0),
        Price::from_credits(4),
    )?;
    println!("request: {request}");
    println!("AMP budget S = C·t·N = {}\n", request.budget());

    let mut stats = ScanStats::new();
    match Alp::new().find_window(&list, &request, &mut stats) {
        Some(w) => println!("ALP window: {w}"),
        None => println!("ALP found no window (every node priced ≤ 4 is needed at once)"),
    }

    let window = Amp::new()
        .find_window(&list, &request, &mut stats)
        .expect("AMP finds a window within the budget");
    println!("AMP window: {window}");
    println!(
        "  starts at {}, ends at {}, costs {} (≤ budget {})",
        window.start(),
        window.end(),
        window.total_cost(),
        request.budget()
    );

    // Commit it: the used intervals disappear from the vacancy list.
    list.subtract_window(&window)?;
    println!("\nvacancies after committing the window:\n{list}");
    println!("scan work: {} slots examined", stats.slots_examined);
    Ok(())
}
