//! The classic baselines the paper positions itself against: FCFS,
//! conservative backfilling, and event-driven EASY backfilling on a
//! homogeneous cluster — plus the quadratic backfill-style window search
//! running on the same slot list as ALP/AMP.
//!
//! Run with: `cargo run --example backfill_baseline`

use ecosched::baseline::{
    conservative_backfill, easy_backfill, fcfs, BackfillWindow, QueuedJob, Schedule,
};
use ecosched::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn summarize(name: &str, schedule: &Schedule, nodes: usize) {
    println!(
        "  {name:<14} makespan {:>5}  mean start {:>7.1}  utilization {:>5.1}%",
        schedule.makespan().ticks(),
        schedule.mean_start(),
        schedule.utilization(nodes) * 100.0
    );
}

fn main() {
    // A queue that rewards backfilling: wide job blocks the cluster while
    // narrow jobs can slip around it.
    let jobs = vec![
        QueuedJob::new(JobId::new(0), 3, TimeDelta::new(60)),
        QueuedJob::new(JobId::new(1), 4, TimeDelta::new(30)),
        QueuedJob::new(JobId::new(2), 1, TimeDelta::new(50)),
        QueuedJob::new(JobId::new(3), 1, TimeDelta::new(40)),
        QueuedJob::new(JobId::new(4), 2, TimeDelta::new(25)),
        QueuedJob::new(JobId::new(5), 1, TimeDelta::new(55)),
    ];
    let nodes = 4;
    println!(
        "queue of {} rigid jobs on a {nodes}-node homogeneous cluster:",
        jobs.len()
    );
    for j in &jobs {
        println!("  {j}");
    }
    println!();
    summarize("FCFS", &fcfs(&jobs, nodes), nodes);
    summarize("conservative", &conservative_backfill(&jobs, nodes), nodes);
    summarize("EASY", &easy_backfill(&jobs, nodes), nodes);

    // The same interface as ALP/AMP, on a generated slot list: backfill's
    // window search ignores economics and rescans per anchor.
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let list = SlotGenerator::new(SlotGenConfig::default()).generate(&mut rng);
    let request = ResourceRequest::new(4, TimeDelta::new(100), Perf::UNIT, Price::from_credits(4))
        .expect("valid request");

    println!(
        "\nwindow search on a {}-slot list (N=4, t=100):",
        list.len()
    );
    for (name, selector) in [
        ("ALP", &Alp::new() as &dyn SlotSelector),
        ("AMP", &Amp::new()),
        ("backfill", &BackfillWindow::new()),
    ] {
        let mut stats = ScanStats::new();
        let found = selector.find_window(&list, &request, &mut stats);
        println!(
            "  {name:<9} {} (examined {} slots)",
            found.map_or_else(
                || "no window".to_string(),
                |w| format!("window at {} costing {}", w.start(), w.total_cost())
            ),
            stats.slots_examined
        );
    }
}
