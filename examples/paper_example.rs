//! The paper's Sec. 4 worked example (Fig. 2–3): three jobs co-allocated
//! on six nodes, showing why AMP's job-budget rule reaches windows the
//! per-slot-capped ALP cannot.
//!
//! Run with: `cargo run --example paper_example`

use ecosched::core::NodeId;
use ecosched::experiments::paper_example;

fn main() {
    let run = paper_example::run().expect("the worked example always builds");

    println!("=== Fig. 2 (a): initial state (reconstruction) ===");
    println!("{}", run.example.list);
    println!("{}", run.example.batch);

    println!("=== first alternatives (the paper's W1, W2, W3) ===");
    for (label, ja) in ["W1", "W2", "W3"]
        .iter()
        .zip(run.amp.alternatives.per_job())
    {
        let w = ja.alternatives()[0].window();
        println!("{label}: {w}");
    }

    println!("\n=== Fig. 3: every alternative found ===");
    for (name, outcome) in [("ALP", &run.alp), ("AMP", &run.amp)] {
        println!(
            "{name}: {} alternatives ({:.2} per job)",
            outcome.alternatives.total_found(),
            outcome.alternatives.avg_per_job()
        );
        for ja in outcome.alternatives.per_job() {
            for alt in ja {
                println!("  {} ← {}", ja.job(), alt.window());
            }
        }
    }

    let amp_cpu6 = run
        .amp
        .alternatives
        .per_job()
        .iter()
        .flat_map(|ja| ja.iter())
        .filter(|a| a.window().uses_node(NodeId::new(6)))
        .count();
    println!(
        "\nAMP placed {amp_cpu6} window(s) on the expensive cpu6 line; \
         ALP's per-slot cap (10 for Job 2) locks cpu6 (12/t) out entirely — \
         exactly the Sec. 4 observation."
    );
}
