//! The environment substrate end-to-end: generate resource domains with
//! local (owner) job flows, extract the vacant slots from the local
//! schedules, and run the metascheduler for several cycles — the "whole
//! distributed system model" the paper's study skipped for convenience.
//!
//! Run with: `cargo run --example cluster_sim [seed]`

use ecosched::prelude::*;
use ecosched::sim::env::{extract_vacant_slots, generate_local_flow, EnvConfig, Environment};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    // 1. The physical world: domains of heterogeneous nodes.
    let env_config = EnvConfig::default();
    let env = Environment::generate(&env_config, &mut rng);
    println!(
        "environment: {} domains, {} nodes, horizon {}",
        env.domains().len(),
        env.node_count(),
        env.horizon()
    );
    for domain in env.domains() {
        let perfs: Vec<String> = domain
            .resources()
            .iter()
            .map(|r| format!("{:.1}", r.perf().to_f64()))
            .collect();
        println!(
            "  {}: {} nodes (rates {})",
            domain.id(),
            domain.len(),
            perfs.join(", ")
        );
    }

    // 2. The owners' local job flows fragment each node's schedule.
    let occupancy = generate_local_flow(&env, &env_config, &mut rng);
    println!(
        "\nlocal flows occupy {} node-ticks of {} total",
        occupancy.total_busy().ticks(),
        env.horizon().ticks() * env.node_count() as i64
    );

    // 3. The vacancies that remain are what the metascheduler sees.
    let list = extract_vacant_slots(&env, &occupancy);
    println!(
        "extracted {} vacant slots ({} node-ticks vacant)",
        list.len(),
        list.total_vacant_time().ticks()
    );

    // 4. One scheduling iteration on the derived list.
    let batch = JobGenerator::new(JobGenConfig::default()).generate(&mut rng);
    let result = run_iteration(Amp::new(), &list, &batch, &IterationConfig::default())?;
    println!(
        "\none AMP iteration over the derived list: {} alternatives, {} of {} jobs scheduled",
        result.search.alternatives.total_found(),
        batch.len() - result.postponed.len(),
        batch.len()
    );

    // 5. And the iterative metascheduler over freshly generated lists,
    //    carrying postponed jobs across cycles.
    let meta = Metascheduler::new(
        SlotGenConfig::default(),
        JobGenConfig::default(),
        IterationConfig::default(),
    );
    let report = meta.run(Amp::new(), 6, &mut rng)?;
    println!("\nmetascheduler, 6 cycles:");
    for (i, cycle) in report.cycles.iter().enumerate() {
        println!(
            "  cycle {}: batch {}, scheduled {}, postponed {} (re-postponed {}), avg time {:.1}, avg cost {:.1}",
            i + 1,
            cycle.batch_size,
            cycle.scheduled,
            cycle.postponed,
            cycle.postponed_again,
            cycle.avg_time,
            cycle.avg_cost
        );
    }
    println!(
        "total scheduled {}, final backlog {}",
        report.total_scheduled(),
        report.final_backlog()
    );
    Ok(())
}
