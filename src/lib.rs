//! # ecosched — economic slot selection and co-allocation
//!
//! A Rust reproduction of Toporkov, Bobchenkov, Toporkova, Tselishchev &
//! Yemelyanov, *"Slot Selection and Co-allocation for Economic Scheduling
//! in Distributed Computing"* (PaCT 2011, LNCS 6873).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — the domain model (slots, windows, jobs, money, time);
//! * [`select`] — the ALP/AMP slot-selection algorithms and the
//!   multi-pass alternatives search;
//! * [`optimize`] — the backward-run DP combination optimizer, VO limits
//!   (Eq. 2/3), Pareto and brute-force reference solvers;
//! * [`baseline`] — FCFS / conservative / EASY backfilling and the
//!   quadratic backfill-style window search;
//! * [`sim`] — the paper's generators, the full environment substrate,
//!   the scheduling-iteration driver, and the metascheduler loop;
//! * [`engine`] — the deterministic discrete-event engine driving the
//!   pipeline online over a virtual clock;
//! * [`federation`] — the sharded multi-VO superscheduler: routing
//!   policies, two-phase cross-shard co-allocation, and deterministic
//!   merged event logs over shard engines;
//! * [`persist`] — checkpoint/restore containers, snapshot rotation,
//!   and event-log replay;
//! * [`service`] — the streaming-submission daemon (`ecosched-serve`),
//!   its wire protocol and client, and the crash-durable session;
//! * [`experiments`] — one runner per table/figure of the paper.
//!
//! See the repository README for a tour, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! # Quickstart
//!
//! ```
//! use ecosched::prelude::*;
//!
//! // Two nodes publish vacant slots…
//! let slots = vec![
//!     Slot::new(
//!         SlotId::new(0),
//!         NodeId::new(0),
//!         Perf::from_f64(1.0),
//!         Price::from_credits(2),
//!         Span::new(TimePoint::new(0), TimePoint::new(500)).unwrap(),
//!     )?,
//!     Slot::new(
//!         SlotId::new(1),
//!         NodeId::new(1),
//!         Perf::from_f64(2.0),
//!         Price::from_credits(5),
//!         Span::new(TimePoint::new(40), TimePoint::new(500)).unwrap(),
//!     )?,
//! ];
//! let list = SlotList::from_slots(slots)?;
//!
//! // …and a job asks for both of them for 100 etalon ticks.
//! let request = ResourceRequest::new(2, TimeDelta::new(100), Perf::UNIT, Price::from_credits(4))?;
//!
//! let mut stats = ScanStats::new();
//! let window = Amp::new()
//!     .find_window(&list, &request, &mut stats)
//!     .expect("a window exists");
//! assert_eq!(window.slot_count(), 2);
//! assert!(window.total_cost() <= request.budget());
//! # Ok::<(), ecosched::core::CoreError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use ecosched_baseline as baseline;
pub use ecosched_core as core;
pub use ecosched_engine as engine;
pub use ecosched_experiments as experiments;
pub use ecosched_federation as federation;
pub use ecosched_optimize as optimize;
pub use ecosched_persist as persist;
pub use ecosched_select as select;
pub use ecosched_service as service;
pub use ecosched_sim as sim;

/// The most common imports in one place.
pub mod prelude {
    pub use ecosched_core::{
        Alternative, Batch, BatchAlternatives, CoreError, Job, JobAlternatives, JobId, Lease,
        LeaseOrigin, Money, NodeId, Perf, Price, Resource, ResourceRequest, Revocation,
        RevocationReason, Slot, SlotId, SlotList, Span, TimeDelta, TimePoint, Window, WindowSlot,
    };
    pub use ecosched_optimize::{
        max_cost_under_time, min_cost_under_time, min_time_under_budget, time_quota, vo_budget,
        Assignment,
    };
    pub use ecosched_select::{
        find_alternatives, find_alternatives_coscheduled, Alp, Amp, LengthRule, ScanStats,
        SearchOutcome, SlotSelector,
    };
    pub use ecosched_sim::{
        run_iteration, Criterion, IterationConfig, JobFate, JobGenConfig, JobGenerator,
        Metascheduler, PostponeReason, RepairPolicy, RepairStats, RevocationConfig, SearchMode,
        SlotGenConfig, SlotGenerator,
    };
}
