//! Failure injection: the pipeline must degrade with typed errors — never
//! panics, never partial state — when a component misbehaves.

use ecosched::prelude::*;
use ecosched::sim::IterationError;

/// A selector that fabricates windows referencing slots that do not exist.
#[derive(Debug)]
struct PhantomSlotSelector;

impl SlotSelector for PhantomSlotSelector {
    fn name(&self) -> &'static str {
        "phantom"
    }

    fn find_window(
        &self,
        _list: &SlotList,
        request: &ResourceRequest,
        _stats: &mut ScanStats,
    ) -> Option<Window> {
        let ghost = Slot::new(
            SlotId::new(u64::MAX),
            NodeId::new(u32::MAX),
            Perf::UNIT,
            Price::from_credits(1),
            Span::new(TimePoint::new(0), TimePoint::new(10_000)).unwrap(),
        )
        .unwrap();
        let ws = WindowSlot::from_slot(&ghost, request.runtime_on(Perf::UNIT)).unwrap();
        Some(Window::new(TimePoint::new(0), vec![ws]).unwrap())
    }
}

/// A selector that cites a real slot but cuts outside its vacant span.
#[derive(Debug)]
struct OverhangSelector;

impl SlotSelector for OverhangSelector {
    fn name(&self) -> &'static str {
        "overhang"
    }

    fn find_window(
        &self,
        list: &SlotList,
        _request: &ResourceRequest,
        _stats: &mut ScanStats,
    ) -> Option<Window> {
        let victim = list.iter().next()?;
        // Claim the slot for twice its actual length.
        let runtime = victim.length() * 2;
        let ws = WindowSlot::from_slot(victim, runtime).unwrap();
        Some(Window::new(victim.start(), vec![ws]).unwrap())
    }
}

fn environment() -> (SlotList, Batch) {
    let slots = (0..3)
        .map(|i| {
            Slot::new(
                SlotId::new(i),
                NodeId::new(i as u32),
                Perf::UNIT,
                Price::from_credits(2),
                Span::new(TimePoint::new(0), TimePoint::new(200)).unwrap(),
            )
            .unwrap()
        })
        .collect();
    let list = SlotList::from_slots(slots).unwrap();
    let job = Job::new(
        JobId::new(0),
        ResourceRequest::new(1, TimeDelta::new(50), Perf::UNIT, Price::from_credits(5)).unwrap(),
    );
    (list, Batch::from_jobs(vec![job]).unwrap())
}

#[test]
fn phantom_slots_yield_a_typed_error() {
    let (list, batch) = environment();
    let err = find_alternatives(&PhantomSlotSelector, &list, &batch).unwrap_err();
    assert!(matches!(err, CoreError::SlotNotFound { .. }), "{err}");
}

#[test]
fn overhanging_cuts_yield_a_typed_error() {
    let (list, batch) = environment();
    let err = find_alternatives(&OverhangSelector, &list, &batch).unwrap_err();
    assert!(matches!(err, CoreError::CutOutsideSlot { .. }), "{err}");
}

#[test]
fn iteration_wraps_selector_failures() {
    let (list, batch) = environment();
    let err = run_iteration(
        &PhantomSlotSelector,
        &list,
        &batch,
        &IterationConfig::default(),
    )
    .unwrap_err();
    assert!(matches!(err, IterationError::Core(_)));
    // The error chains to its source and formats meaningfully.
    assert!(std::error::Error::source(&err).is_some());
    assert!(format!("{err}").contains("slot bookkeeping failed"));
}

#[test]
fn coscheduled_search_rejects_misbehaving_selectors_too() {
    let (list, batch) = environment();
    let err = find_alternatives_coscheduled(&OverhangSelector, &list, &batch).unwrap_err();
    assert!(matches!(err, CoreError::CutOutsideSlot { .. }));
}

#[test]
fn original_list_is_never_mutated_by_failures() {
    let (list, batch) = environment();
    let before = list.clone();
    let _ = find_alternatives(&OverhangSelector, &list, &batch);
    let _ = find_alternatives(&PhantomSlotSelector, &list, &batch);
    assert_eq!(list, before);
}

// ---------------------------------------------------------------------------
// Environment-level faults: the revocation model withdraws committed slots
// after optimization, and the metascheduler must degrade to typed fates —
// never panics, never partial state.

use ecosched::sim::{JobGenConfig, SlotGenConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn churn_meta(churn: RevocationConfig) -> Metascheduler {
    Metascheduler::new(
        SlotGenConfig::default(),
        JobGenConfig::default(),
        IterationConfig::default(),
    )
    .with_revocation(churn)
}

#[test]
fn total_revocation_postpones_every_job_with_a_clean_reason() {
    // Every published slot is revoked: all leases break, every alternative
    // is stale, and the repair search runs on an empty survivor list. With
    // an ample attempt budget, the only possible fates are the two clean
    // postpone reasons — never a panic, never a budget artifact.
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let run = churn_meta(RevocationConfig::per_slot(1.0))
        .with_repair_policy(RepairPolicy {
            max_attempts: 1_000,
            full_rescan_on_exhaustion: false,
        })
        .run_traced(Amp::new(), 3, &mut rng)
        .unwrap();
    for (cycle, trace) in run.report.cycles.iter().zip(&run.traces) {
        assert_eq!(cycle.scheduled, 0, "nothing can survive total revocation");
        assert!(trace.leases.is_empty());
        assert!(trace.fates.iter().all(|f| matches!(
            f,
            JobFate::Postponed(PostponeReason::NoAlternatives)
                | JobFate::Postponed(PostponeReason::AllAlternativesStale)
        )));
        // Every failover validation failed for the *revoked* reason, and
        // no repair search could succeed.
        assert_eq!(
            cycle.repair.failover_stale_revoked,
            cycle.repair.failover_validations
        );
        assert_eq!(cycle.repair.repairs_succeeded, 0);
        assert_eq!(cycle.repair.postponed_stale, cycle.repair.leases_broken);
    }
}

#[test]
fn heavy_mixed_churn_degrades_without_partial_state() {
    let churn = RevocationConfig {
        per_slot: 0.5,
        domain_outage: 0.4,
        nodes_per_domain: 6,
        price_burst: 0.8,
        burst_fraction: 0.3,
    };
    for seed in 0..5 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let run = churn_meta(churn)
            .run_traced(Amp::new(), 4, &mut rng)
            .unwrap();
        for (cycle, trace) in run.report.cycles.iter().zip(&run.traces) {
            // Full accounting: every revocation classified, every broken
            // lease terminal, every job fated.
            assert_eq!(
                cycle.repair.revocations_injected,
                cycle.repair.revocations_breaking + cycle.repair.revocations_vacant_only
            );
            assert_eq!(
                cycle.repair.leases_broken,
                cycle.repair.recovered()
                    + cycle.repair.postponed_stale
                    + cycle.repair.postponed_budget_exhausted
            );
            assert_eq!(trace.fates.len(), cycle.batch_size);
            assert_eq!(
                trace.leases.len(),
                trace.fates.iter().filter(|f| f.is_scheduled()).count()
            );
            // No surviving lease touches a revoked region.
            for lease in &trace.leases {
                for r in &trace.revocations {
                    assert!(!lease.broken_by(r));
                }
            }
        }
    }
}

#[test]
fn revocation_disabled_is_byte_identical_to_the_legacy_loop() {
    // The fault layer must be invisible when off: same RNG consumption,
    // same cycle summaries, zero repair activity.
    let run = |churn: Option<RevocationConfig>| {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let meta = match churn {
            Some(c) => churn_meta(c),
            None => churn_meta(RevocationConfig::default()),
        };
        meta.run(Amp::new(), 4, &mut rng).unwrap()
    };
    let disabled = run(None);
    let explicit_none = run(Some(RevocationConfig::default()));
    assert_eq!(disabled, explicit_none);
    let totals = disabled.repair_totals();
    assert_eq!(totals.revocations_injected, 0);
    assert_eq!(totals.leases_broken, 0);
}
