//! Failure injection: the pipeline must degrade with typed errors — never
//! panics, never partial state — when a component misbehaves.

use ecosched::prelude::*;
use ecosched::sim::IterationError;

/// A selector that fabricates windows referencing slots that do not exist.
#[derive(Debug)]
struct PhantomSlotSelector;

impl SlotSelector for PhantomSlotSelector {
    fn name(&self) -> &'static str {
        "phantom"
    }

    fn find_window(
        &self,
        _list: &SlotList,
        request: &ResourceRequest,
        _stats: &mut ScanStats,
    ) -> Option<Window> {
        let ghost = Slot::new(
            SlotId::new(u64::MAX),
            NodeId::new(u32::MAX),
            Perf::UNIT,
            Price::from_credits(1),
            Span::new(TimePoint::new(0), TimePoint::new(10_000)).unwrap(),
        )
        .unwrap();
        let ws = WindowSlot::from_slot(&ghost, request.runtime_on(Perf::UNIT)).unwrap();
        Some(Window::new(TimePoint::new(0), vec![ws]).unwrap())
    }
}

/// A selector that cites a real slot but cuts outside its vacant span.
#[derive(Debug)]
struct OverhangSelector;

impl SlotSelector for OverhangSelector {
    fn name(&self) -> &'static str {
        "overhang"
    }

    fn find_window(
        &self,
        list: &SlotList,
        _request: &ResourceRequest,
        _stats: &mut ScanStats,
    ) -> Option<Window> {
        let victim = list.as_slice().first()?;
        // Claim the slot for twice its actual length.
        let runtime = victim.length() * 2;
        let ws = WindowSlot::from_slot(victim, runtime).unwrap();
        Some(Window::new(victim.start(), vec![ws]).unwrap())
    }
}

fn environment() -> (SlotList, Batch) {
    let slots = (0..3)
        .map(|i| {
            Slot::new(
                SlotId::new(i),
                NodeId::new(i as u32),
                Perf::UNIT,
                Price::from_credits(2),
                Span::new(TimePoint::new(0), TimePoint::new(200)).unwrap(),
            )
            .unwrap()
        })
        .collect();
    let list = SlotList::from_slots(slots).unwrap();
    let job = Job::new(
        JobId::new(0),
        ResourceRequest::new(1, TimeDelta::new(50), Perf::UNIT, Price::from_credits(5)).unwrap(),
    );
    (list, Batch::from_jobs(vec![job]).unwrap())
}

#[test]
fn phantom_slots_yield_a_typed_error() {
    let (list, batch) = environment();
    let err = find_alternatives(&PhantomSlotSelector, &list, &batch).unwrap_err();
    assert!(matches!(err, CoreError::SlotNotFound { .. }), "{err}");
}

#[test]
fn overhanging_cuts_yield_a_typed_error() {
    let (list, batch) = environment();
    let err = find_alternatives(&OverhangSelector, &list, &batch).unwrap_err();
    assert!(matches!(err, CoreError::CutOutsideSlot { .. }), "{err}");
}

#[test]
fn iteration_wraps_selector_failures() {
    let (list, batch) = environment();
    let err = run_iteration(
        &PhantomSlotSelector,
        &list,
        &batch,
        &IterationConfig::default(),
    )
    .unwrap_err();
    assert!(matches!(err, IterationError::Core(_)));
    // The error chains to its source and formats meaningfully.
    assert!(std::error::Error::source(&err).is_some());
    assert!(format!("{err}").contains("slot bookkeeping failed"));
}

#[test]
fn coscheduled_search_rejects_misbehaving_selectors_too() {
    let (list, batch) = environment();
    let err = find_alternatives_coscheduled(&OverhangSelector, &list, &batch).unwrap_err();
    assert!(matches!(err, CoreError::CutOutsideSlot { .. }));
}

#[test]
fn original_list_is_never_mutated_by_failures() {
    let (list, batch) = environment();
    let before = list.clone();
    let _ = find_alternatives(&OverhangSelector, &list, &batch);
    let _ = find_alternatives(&PhantomSlotSelector, &list, &batch);
    assert_eq!(list, before);
}
