//! Integration of the environment substrate with the scheduling pipeline:
//! slot lists *derived from local schedules* behave like the directly
//! generated ones — the validation the paper's convenience shortcut
//! deserved.

use ecosched::prelude::*;
use ecosched::sim::env::{extract_vacant_slots, generate_local_flow, EnvConfig, Environment};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn derived_list(seed: u64) -> SlotList {
    let cfg = EnvConfig::default();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let env = Environment::generate(&cfg, &mut rng);
    let occupancy = generate_local_flow(&env, &cfg, &mut rng);
    extract_vacant_slots(&env, &occupancy)
}

#[test]
fn derived_lists_feed_the_pipeline() {
    let mut scheduled_somewhere = false;
    for seed in 0..10 {
        let list = derived_list(seed);
        list.validate().unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1000 + seed);
        let batch = JobGenerator::new(JobGenConfig::default()).generate(&mut rng);
        let result = run_iteration(Amp::new(), &list, &batch, &IterationConfig::default()).unwrap();
        if let Some(assignment) = &result.assignment {
            scheduled_somewhere = true;
            assert!(assignment.total_cost() <= result.budget.unwrap());
        }
    }
    assert!(
        scheduled_somewhere,
        "derived environments must admit at least some schedules"
    );
}

#[test]
fn amp_beats_alp_on_derived_lists_too() {
    // The paper's headline relation is a property of the economics, not of
    // the list generator — it must survive the substrate swap.
    let mut alp_alts = 0usize;
    let mut amp_alts = 0usize;
    for seed in 0..12 {
        let list = derived_list(seed);
        let mut rng = ChaCha8Rng::seed_from_u64(2000 + seed);
        let batch = JobGenerator::new(JobGenConfig::default()).generate(&mut rng);
        alp_alts += find_alternatives(Alp::new(), &list, &batch)
            .unwrap()
            .alternatives
            .total_found();
        amp_alts += find_alternatives(Amp::new(), &list, &batch)
            .unwrap()
            .alternatives
            .total_found();
    }
    assert!(
        amp_alts > alp_alts,
        "AMP found {amp_alts} vs ALP {alp_alts} on derived lists"
    );
}

#[test]
fn same_start_clustering_emerges_from_local_flows() {
    // The paper's generator hard-codes a 0.4 same-start probability; in
    // the environment model the clustering *emerges* from multi-node local
    // jobs releasing nodes together.
    let mut shared = 0usize;
    let mut total = 0usize;
    for seed in 0..10 {
        let list = derived_list(seed);
        total += list.len().saturating_sub(1);
        shared += list
            .iter()
            .zip(list.iter().skip(1))
            .filter(|(a, b)| a.start() == b.start())
            .count();
    }
    let share = shared as f64 / total as f64;
    assert!(
        share > 0.05,
        "expected emergent same-start clustering, got {share:.3}"
    );
}

#[test]
fn metascheduler_drains_backlog_over_cycles() {
    let meta = Metascheduler::new(
        SlotGenConfig::default(),
        JobGenConfig::default(),
        IterationConfig::default(),
    );
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let report = meta.run(Amp::new(), 12, &mut rng).unwrap();
    assert_eq!(report.cycles.len(), 12);
    // Backlogs stay bounded: postponed jobs get rescheduled rather than
    // accumulating without bound.
    let max_backlog = report.cycles.iter().map(|c| c.postponed).max().unwrap();
    assert!(max_backlog <= 10, "backlog exploded to {max_backlog}");
    assert!(report.total_scheduled() >= 12 * 2);
}
