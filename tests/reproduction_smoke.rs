//! Scaled-down reproduction smoke tests: the paper's qualitative results
//! must already show at a few hundred iterations. The full-scale numbers
//! live in EXPERIMENTS.md and regenerate via the `exp_*` binaries.

use ecosched::experiments::{run_paired, ExperimentConfig};
use ecosched::sim::Criterion;

fn run(criterion: Criterion, iterations: u64) -> ecosched::experiments::PairedOutcome {
    run_paired(
        &ExperimentConfig {
            iterations,
            criterion,
            ..ExperimentConfig::default()
        },
        50,
    )
}

#[test]
fn fig4_shape_time_minimization() {
    let o = run(Criterion::MinTimeUnderBudget, 400);
    assert!(o.counted_iterations >= 20, "too few counted iterations");
    let time_ratio = o.amp.job_time.mean() / o.alp.job_time.mean();
    let cost_ratio = o.amp.job_cost.mean() / o.alp.job_cost.mean();
    // Paper: AMP is ~35 % faster (ratio 0.65) and ~18 % costlier (1.18).
    assert!(
        (0.5..0.85).contains(&time_ratio),
        "time ratio {time_ratio} out of the paper's band"
    );
    assert!(
        (1.02..1.6).contains(&cost_ratio),
        "cost ratio {cost_ratio} out of the paper's band"
    );
}

#[test]
fn fig6_shape_cost_minimization() {
    let o = run(Criterion::MinCostUnderTime, 400);
    assert!(o.counted_iterations >= 20);
    // Paper: ALP's cost advantage is small (~9 %), AMP still ~15 % faster.
    let cost_ratio = o.amp.job_cost.mean() / o.alp.job_cost.mean();
    let time_ratio = o.amp.job_time.mean() / o.alp.job_time.mean();
    assert!(
        (1.0..1.4).contains(&cost_ratio),
        "cost ratio {cost_ratio} out of band"
    );
    assert!(
        time_ratio < 0.95,
        "AMP must still be faster under cost minimization, got {time_ratio}"
    );
    // The cost gap shrinks relative to the time-minimization experiment.
    let time_min = run(Criterion::MinTimeUnderBudget, 400);
    let fig4_cost_ratio = time_min.amp.job_cost.mean() / time_min.alp.job_cost.mean();
    assert!(
        cost_ratio < fig4_cost_ratio,
        "cost minimization must narrow AMP's cost premium ({cost_ratio} vs {fig4_cost_ratio})"
    );
}

#[test]
fn alternatives_gap_matches_the_prose() {
    let o = run(Criterion::MinTimeUnderBudget, 400);
    let alp = o.alp.alternatives_per_job();
    let amp = o.amp.alternatives_per_job();
    // Paper: 7.39 vs 34.28 — "several times more".
    assert!(
        amp > 2.5 * alp,
        "AMP/ALP alternatives ratio only {}",
        amp / alp
    );
    assert!(
        (4.0..16.0).contains(&alp),
        "ALP per-job count {alp} out of band"
    );
    assert!(
        (20.0..60.0).contains(&amp),
        "AMP per-job count {amp} out of band"
    );
}

#[test]
fn environment_statistics_match_the_prose() {
    let o = run(Criterion::MinTimeUnderBudget, 300);
    // Paper: 135.11 slots, 4.18 jobs per counted iteration.
    let slots = o.slots.mean();
    let jobs = o.jobs.mean();
    assert!((120.0..150.0).contains(&slots), "avg slots {slots}");
    assert!((3.0..7.0).contains(&jobs), "avg jobs {jobs}");
    // Counted iterations have *fewer* jobs than the unconditional mean of
    // 5 — the paper notes exactly this selection effect.
    assert!(jobs < 5.0, "selection effect missing: {jobs}");
}
