//! Cross-crate integration: the full two-stage pipeline on seeded inputs.

use ecosched::prelude::*;
use ecosched::sim::OptimizerKind;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn generate(seed: u64) -> (SlotList, Batch) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let list = SlotGenerator::new(SlotGenConfig::default()).generate(&mut rng);
    let batch = JobGenerator::new(JobGenConfig::default()).generate(&mut rng);
    (list, batch)
}

#[test]
fn assignments_respect_the_vo_limits_across_seeds() {
    for seed in 0..30 {
        let (list, batch) = generate(seed);
        for criterion in [Criterion::MinTimeUnderBudget, Criterion::MinCostUnderTime] {
            let config = IterationConfig {
                criterion,
                ..IterationConfig::default()
            };
            let result = run_iteration(Amp::new(), &list, &batch, &config)
                .expect("iteration never fails on generated inputs");
            let Some(assignment) = &result.assignment else {
                continue;
            };
            let budget = result.budget.expect("assignment implies budget");
            match criterion {
                Criterion::MinTimeUnderBudget => {
                    assert!(
                        assignment.total_cost() <= budget,
                        "seed {seed}: cost {} over B* {budget}",
                        assignment.total_cost()
                    );
                }
                Criterion::MinCostUnderTime => {
                    assert!(
                        assignment.total_time() <= result.quota,
                        "seed {seed}: time {} over T* {}",
                        assignment.total_time(),
                        result.quota
                    );
                }
            }
        }
    }
}

#[test]
fn chosen_windows_fit_each_jobs_own_budget() {
    for seed in 0..20 {
        let (list, batch) = generate(seed);
        for selector in [&Alp::new() as &dyn SlotSelector, &Amp::new()] {
            let outcome = find_alternatives(selector, &list, &batch).unwrap();
            for (job, ja) in batch.iter().zip(outcome.alternatives.per_job()) {
                for alt in ja {
                    assert_eq!(alt.window().slot_count(), job.request().nodes());
                    assert!(alt.cost() <= job.request().budget());
                    for ws in alt.window().slots() {
                        assert!(ws.perf().satisfies(job.request().min_perf()));
                    }
                }
            }
        }
    }
}

#[test]
fn time_min_never_beats_cost_min_on_cost_and_vice_versa() {
    // The two criteria optimize different measures over the same
    // alternatives, so each must win (or tie) its own measure whenever the
    // time-min run also fits inside T* (their feasible sets differ:
    // time-min is budget-capped, cost-min quota-capped).
    for seed in 0..30 {
        let (list, batch) = generate(seed);
        // Exact solver: this test checks true optimality relations, which
        // the quantized DP is (documented to be) allowed to miss.
        let time_cfg = IterationConfig {
            criterion: Criterion::MinTimeUnderBudget,
            optimizer: OptimizerKind::ParetoExact,
            ..IterationConfig::default()
        };
        let cost_cfg = IterationConfig {
            criterion: Criterion::MinCostUnderTime,
            optimizer: OptimizerKind::ParetoExact,
            ..IterationConfig::default()
        };
        let t = run_iteration(Amp::new(), &list, &batch, &time_cfg).unwrap();
        let c = run_iteration(Amp::new(), &list, &batch, &cost_cfg).unwrap();
        if let (Some(ta), Some(ca)) = (&t.assignment, &c.assignment) {
            // Same search → same alternatives → cost-min's cost is the
            // floor among quota-feasible combos.
            if ta.total_time() <= c.quota {
                assert!(ca.total_cost() <= ta.total_cost(), "seed {seed}");
            }
            // And if the cost-min combo also fits the budget, time-min's
            // time is the floor.
            if ca.total_cost() <= t.budget.unwrap() {
                assert!(ta.total_time() <= ca.total_time(), "seed {seed}");
            }
        }
    }
}

#[test]
fn pareto_and_dp_optimizers_agree_end_to_end() {
    for seed in 0..12 {
        let (list, batch) = generate(seed);
        let dp = run_iteration(
            Amp::new(),
            &list,
            &batch,
            &IterationConfig {
                criterion: Criterion::MinCostUnderTime,
                optimizer: OptimizerKind::BackwardRun {
                    resolution_steps: 1500,
                },
                ..IterationConfig::default()
            },
        )
        .unwrap();
        let pareto = run_iteration(
            Amp::new(),
            &list,
            &batch,
            &IterationConfig {
                criterion: Criterion::MinCostUnderTime,
                optimizer: OptimizerKind::ParetoExact,
                ..IterationConfig::default()
            },
        )
        .unwrap();
        // Cost-min is exact in both solvers (time is integral).
        match (&dp.assignment, &pareto.assignment) {
            (Some(a), Some(b)) => assert_eq!(a.total_cost(), b.total_cost(), "seed {seed}"),
            (None, None) => {}
            other => panic!("seed {seed}: solvers disagree on feasibility: {other:?}"),
        }
    }
}

#[test]
fn full_pipeline_is_deterministic() {
    let (list, batch) = generate(99);
    let config = IterationConfig::default();
    let a = run_iteration(Amp::new(), &list, &batch, &config).unwrap();
    let b = run_iteration(Amp::new(), &list, &batch, &config).unwrap();
    assert_eq!(a.assignment, b.assignment);
    assert_eq!(a.quota, b.quota);
    assert_eq!(a.budget, b.budget);
    assert_eq!(
        a.search.alternatives.total_found(),
        b.search.alternatives.total_found()
    );
}

#[test]
fn remaining_list_is_consistent_after_search() {
    for seed in 0..10 {
        let (list, batch) = generate(seed);
        let outcome = find_alternatives(Amp::new(), &list, &batch).unwrap();
        outcome.remaining.validate().unwrap();
        let used: TimeDelta = outcome
            .alternatives
            .per_job()
            .iter()
            .flat_map(|ja| ja.iter())
            .flat_map(|alt| alt.window().slots().iter().map(|ws| ws.runtime()))
            .sum();
        assert_eq!(
            outcome.remaining.total_vacant_time() + used,
            list.total_vacant_time(),
            "seed {seed}: vacancy not conserved"
        );
    }
}
