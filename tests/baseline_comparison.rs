//! Integration of the baselines with the economic algorithms: agreement
//! where theory predicts it, divergence where the economics bite.

use ecosched::baseline::{conservative_backfill, easy_backfill, fcfs, BackfillWindow, QueuedJob};
use ecosched::prelude::*;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn backfill_and_alp_agree_without_economics() {
    // On homogeneous, uniformly priced lists with a permissive cap the
    // backfill window search and ALP pick windows with the same start
    // (both take the earliest N-concurrency point).
    for seed in 0..20 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let config = SlotGenConfig {
            node_perf: ecosched::sim::RealRange::new(1.0, 1.0),
            price_jitter: ecosched::sim::RealRange::new(1.0, 1.0),
            ..SlotGenConfig::default()
        };
        let list = SlotGenerator::new(config).generate(&mut rng);
        let request = ResourceRequest::new(
            3,
            TimeDelta::new(80),
            Perf::UNIT,
            Price::from_credits(1_000),
        )
        .unwrap();
        let mut s1 = ScanStats::new();
        let mut s2 = ScanStats::new();
        let alp = Alp::new().find_window(&list, &request, &mut s1);
        let bf = BackfillWindow::new().find_window(&list, &request, &mut s2);
        match (alp, bf) {
            (Some(a), Some(b)) => assert_eq!(a.start(), b.start(), "seed {seed}"),
            (None, None) => {}
            other => panic!("seed {seed}: availability disagrees: {other:?}"),
        }
        // …and ALP never does more than one pass of work.
        assert!(s1.slots_examined <= list.len() as u64);
    }
}

#[test]
fn backfill_ignores_prices_alp_respects_them() {
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let list = SlotGenerator::new(SlotGenConfig::default()).generate(&mut rng);
    // A cap below every generated price (minimum price is 0.75·1.7 ≈ 1.27).
    let request =
        ResourceRequest::new(2, TimeDelta::new(60), Perf::UNIT, Price::from_f64(1.0)).unwrap();
    let mut stats = ScanStats::new();
    assert!(Alp::new()
        .find_window(&list, &request, &mut stats)
        .is_none());
    assert!(BackfillWindow::new()
        .find_window(&list, &request, &mut stats)
        .is_some());
}

#[test]
fn queue_schedulers_keep_their_guarantees_on_random_queues() {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    for _ in 0..25 {
        let nodes = rng.gen_range(2..=8usize);
        let jobs: Vec<QueuedJob> = (0..rng.gen_range(3..=20u32))
            .map(|i| {
                QueuedJob::new(
                    JobId::new(i),
                    rng.gen_range(1..=nodes),
                    TimeDelta::new(rng.gen_range(5..=80)),
                )
            })
            .collect();
        let f = fcfs(&jobs, nodes);
        let c = conservative_backfill(&jobs, nodes);
        let e = easy_backfill(&jobs, nodes);
        // All jobs placed exactly once.
        for schedule in [&f, &c, &e] {
            assert_eq!(schedule.placements().len(), jobs.len());
        }
        // Backfilling never worsens any job's start vs FCFS under
        // conservative semantics…
        for job in &jobs {
            let fcfs_start = f.get(job.id).unwrap().start;
            let cons_start = c.get(job.id).unwrap().start;
            assert!(
                cons_start <= fcfs_start,
                "conservative delayed {} ({} > {})",
                job.id,
                cons_start,
                fcfs_start
            );
        }
        // …and conservative backfill beats or matches FCFS's makespan (it
        // never delays any job, so every completion is no later). EASY has
        // no such bound: only the queue head's reservation is protected, so
        // a backfilled job may delay later jobs and occasionally worsen the
        // makespan (e.g. 11 jobs on 8 nodes where a 60-tick backfill blocks
        // a 3-node job until the shadow time).
        assert!(c.makespan() <= f.makespan());
        // EASY never delays the queue head past its FCFS start.
        if let Some(head) = jobs.first() {
            assert!(e.get(head.id).unwrap().start <= f.get(head.id).unwrap().start);
        }
    }
}
