//! Median reporter: merges measured medians into `BENCH_select.json` at the
//! repository root.
//!
//! The file is a single JSON object mapping `"group/bench"` names to
//! `{ "median_ns": <f64> }`. Each bench run merges its results into the
//! existing file, so successive `cargo bench` invocations (different bench
//! targets, before/after variants) accumulate into one report.

use serde::Value;
use std::path::PathBuf;

/// File name written at the workspace root.
pub const REPORT_FILE: &str = "BENCH_select.json";

/// Locates the repository root by walking up from the current directory
/// until `ROADMAP.md` is found (cargo runs benches from the package dir).
fn repo_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("ROADMAP.md").exists() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Merges `(name, median_ns)` pairs into the report file. Existing entries
/// for other benchmarks are preserved; entries for the same name are
/// overwritten with the fresh measurement.
pub fn record(results: &[(String, f64)]) {
    let Some(root) = repo_root() else {
        eprintln!("criterion shim: repo root not found; skipping {REPORT_FILE}");
        return;
    };
    let path = root.join(REPORT_FILE);

    let mut entries: Vec<(String, Value)> = std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| serde_json::from_str::<Value>(&text).ok())
        .and_then(|value| value.as_map().map(<[(String, Value)]>::to_vec))
        .unwrap_or_default();

    for (name, median_ns) in results {
        let entry = Value::Map(vec![("median_ns".to_string(), Value::Float(*median_ns))]);
        if let Some(slot) = entries.iter_mut().find(|(key, _)| key == name) {
            slot.1 = entry;
        } else {
            entries.push((name.clone(), entry));
        }
    }
    entries.sort_by(|a, b| a.0.cmp(&b.0));

    let report = Value::Map(entries);
    match serde_json::to_string_pretty(&report) {
        Ok(text) => {
            if let Err(error) = std::fs::write(&path, text) {
                eprintln!(
                    "criterion shim: failed to write {}: {error}",
                    path.display()
                );
            }
        }
        Err(error) => eprintln!("criterion shim: failed to serialize report: {error}"),
    }
}
