//! Median reporter: merges measured medians into a JSON report at the
//! repository root — `BENCH_select.json` by default, or the file named by
//! the `ECOSCHED_BENCH_REPORT` environment variable (so different bench
//! targets can keep separate committed reports).
//!
//! The file is a single JSON object mapping `"group/bench"` names to
//! `{ "median_ns": <f64> }`. Each bench run merges its results into the
//! existing file, so successive `cargo bench` invocations (different bench
//! targets, before/after variants) accumulate into one report.

use serde::Value;
use std::path::PathBuf;

/// Default file name written at the workspace root.
pub const REPORT_FILE: &str = "BENCH_select.json";

/// Environment variable overriding the report file name.
pub const REPORT_FILE_ENV: &str = "ECOSCHED_BENCH_REPORT";

/// The report file name for this run: `ECOSCHED_BENCH_REPORT` when set
/// (non-empty), [`REPORT_FILE`] otherwise.
fn report_file() -> String {
    match std::env::var(REPORT_FILE_ENV) {
        Ok(name) if !name.is_empty() => name,
        _ => REPORT_FILE.to_string(),
    }
}

/// Locates the repository root by walking up from the current directory
/// until `ROADMAP.md` is found (cargo runs benches from the package dir).
fn repo_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("ROADMAP.md").exists() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Merges `(name, median_ns)` pairs into the report file. Existing entries
/// for other benchmarks are preserved; entries for the same name are
/// overwritten with the fresh measurement.
pub fn record(results: &[(String, f64)]) {
    let file = report_file();
    let Some(root) = repo_root() else {
        eprintln!("criterion shim: repo root not found; skipping {file}");
        return;
    };
    let path = root.join(file);

    let mut entries: Vec<(String, Value)> = std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| serde_json::from_str::<Value>(&text).ok())
        .and_then(|value| value.as_map().map(<[(String, Value)]>::to_vec))
        .unwrap_or_default();

    for (name, median_ns) in results {
        let entry = Value::Map(vec![("median_ns".to_string(), Value::Float(*median_ns))]);
        if let Some(slot) = entries.iter_mut().find(|(key, _)| key == name) {
            slot.1 = entry;
        } else {
            entries.push((name.clone(), entry));
        }
    }
    entries.sort_by(|a, b| a.0.cmp(&b.0));

    let report = Value::Map(entries);
    match serde_json::to_string_pretty(&report) {
        Ok(text) => {
            if let Err(error) = std::fs::write(&path, text) {
                eprintln!(
                    "criterion shim: failed to write {}: {error}",
                    path.display()
                );
            }
        }
        Err(error) => eprintln!("criterion shim: failed to serialize report: {error}"),
    }
}
