//! Vendored benchmark harness (see `vendor/README.md`).
//!
//! API-compatible with the slice of `criterion` this workspace uses:
//! `criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function`, `bench_with_input`, [`BenchmarkId`], and
//! [`Bencher::iter`]. Instead of criterion's statistical machinery it
//! measures wall-clock medians and serializes every median into
//! **`BENCH_select.json` at the repository root** (see [`reporter`]).
//!
//! Modes, chosen from the process arguments the way cargo invokes bench
//! targets:
//! * `--bench` present (`cargo bench`): full measurement + JSON report.
//! * otherwise (`cargo test` runs `harness = false` targets too): each
//!   benchmark body runs once as a smoke test and nothing is written.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub mod reporter;

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self {
            id: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    mode: Mode,
    /// Median nanoseconds per iteration, filled by [`Bencher::iter`].
    result_ns: &'a mut Option<f64>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Full measurement (`cargo bench`).
    Measure,
    /// Single smoke iteration (`cargo test`).
    Smoke,
}

impl Bencher<'_> {
    /// Times `routine`, recording the median time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.mode == Mode::Smoke {
            std::hint::black_box(routine());
            *self.result_ns = Some(f64::NAN);
            return;
        }

        // Warm-up and calibration: find an iteration count that makes one
        // sample take ~2 ms, so cheap routines aren't all timer noise.
        let mut iters_per_sample: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 2;
        }

        // Measurement: fixed sample count, capped total time so slow
        // benchmarks (naive baselines at large m) stay tractable.
        let samples = sample_count();
        let budget = Duration::from_secs(3);
        let started = Instant::now();
        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            per_iter_ns.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
            if started.elapsed() > budget && per_iter_ns.len() >= 5 {
                break;
            }
        }
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let mid = per_iter_ns.len() / 2;
        let median = if per_iter_ns.len().is_multiple_of(2) {
            (per_iter_ns[mid - 1] + per_iter_ns[mid]) / 2.0
        } else {
            per_iter_ns[mid]
        };
        *self.result_ns = Some(median);
    }
}

fn sample_count() -> usize {
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n >= 3)
        .unwrap_or(15)
}

/// A named group of benchmarks, mirroring criterion's `BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark identified by `id` within this group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&full, |b| f(b));
        self
    }

    /// Runs a benchmark that receives a borrowed input.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Accepted for API compatibility; the shim's sample count comes from
    /// `CRITERION_SAMPLES` instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim caps measurement time
    /// internally.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Ends the group (markers only; results are flushed by the group
    /// runner generated by `criterion_group!`).
    pub fn finish(&mut self) {}
}

/// The benchmark manager handed to each `criterion_group!` function.
pub struct Criterion {
    mode: Mode,
    results: Vec<(String, f64)>,
}

impl Default for Criterion {
    fn default() -> Self {
        let measure = std::env::args().any(|a| a == "--bench");
        Self {
            mode: if measure { Mode::Measure } else { Mode::Smoke },
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Runs a top-level benchmark (no group prefix).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        self.run_one(name, |b| f(b));
        self
    }

    fn run_one<F: FnOnce(&mut Bencher)>(&mut self, full_name: &str, f: F) {
        let mut result = None;
        let mut bencher = Bencher {
            mode: self.mode,
            result_ns: &mut result,
        };
        f(&mut bencher);
        if self.mode == Mode::Measure {
            if let Some(ns) = result {
                eprintln!("bench {full_name}: median {:.1} ns/iter", ns);
                self.results.push((full_name.to_string(), ns));
            }
        }
    }

    /// Writes collected medians through the [`reporter`]. Called by the
    /// runner generated by `criterion_group!`.
    pub fn flush(&mut self) {
        if self.mode == Mode::Measure && !self.results.is_empty() {
            reporter::record(&self.results);
            self.results.clear();
        }
    }
}

/// Declares a group-runner function executing each benchmark function with
/// a shared [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
            criterion.flush();
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        // Test binaries are not invoked with --bench, so Default is Smoke.
        let mut criterion = Criterion::default();
        let mut runs = 0usize;
        {
            let mut group = criterion.benchmark_group("g");
            group.bench_function("one", |b| b.iter(|| runs += 1));
            group.finish();
        }
        assert_eq!(runs, 1);
        assert!(criterion.results.is_empty());
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("alp", 135).id, "alp/135");
        assert_eq!(BenchmarkId::from_parameter(64_000).id, "64000");
    }
}
