//! Vendored API-compatible shim for `rand` (see `vendor/README.md`).
//!
//! Implements the subset of the `rand 0.8` API this workspace uses:
//! [`RngCore`], [`SeedableRng`], [`Rng::gen_range`] over inclusive integer
//! and float ranges, [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`].
//! Value streams differ from upstream for the same seed; the workspace's
//! tests assert structural properties (counts, bounds, reproducibility),
//! never exact streams.

#![forbid(unsafe_code)]

use std::ops::RangeInclusive;

/// The core of a random number generator: raw output blocks.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A type that can be sampled uniformly from a range by an RNG.
///
/// Implemented for the inclusive integer and float ranges this workspace
/// draws from (`i64`, `u64`, `usize`, `f64`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough uniform draw on `[0, span]` (inclusive) via
/// Lemire-style widening multiply with rejection for exactness.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == u64::MAX {
        return rng.next_u64();
    }
    let bound = span + 1;
    // Rejection sampling on the top zone keeps the draw exactly uniform.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                let draw = uniform_u64(rng, span) as $u;
                ((lo as $u).wrapping_add(draw)) as $t
            }
        }
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                (self.start..=self.end - 1).sample(rng)
            }
        }
    )*};
}

impl_int_range!(i64 => u64, u64 => u64, i32 => u32, u32 => u32, usize => usize);

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(
            lo <= hi && lo.is_finite() && hi.is_finite(),
            "gen_range: bad range"
        );
        // 53 random mantissa bits give a uniform draw in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        (self.start..=self.end).sample(rng)
    }
}

/// Convenience sampling methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        if p >= 1.0 {
            return true;
        }
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 and builds the
    /// generator from it.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Slice extensions for random reordering.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample(rng);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample(rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn int_range_inclusive_hits_bounds() {
        let mut rng = Lcg(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = rng.gen_range(0i64..=3);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_range_stays_in_bounds() {
        let mut rng = Lcg(2);
        for _ in 0..200 {
            let v = rng.gen_range(2.0f64..=3.0);
            assert!((2.0..=3.0).contains(&v));
        }
    }

    #[test]
    fn bool_extremes() {
        let mut rng = Lcg(3);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Lcg(4);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
    }
}
