//! Vendored property-testing shim (see `vendor/README.md`).
//!
//! Implements the subset of the `proptest` API this workspace uses:
//! the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! [`prop_assert!`]/[`prop_assert_eq!`], range and tuple strategies,
//! `prop::collection::vec`, `prop::sample::Index`, `Just`, `prop_map`,
//! and [`test_runner::ProptestConfig::with_cases`].
//!
//! **No shrinking**: a failing case reports the generated inputs and its
//! deterministic case seed instead of a minimized counterexample. Case
//! counts honour the `PROPTEST_CASES` environment variable.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator used to drive strategies (SplitMix64 core).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a case seed.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below: empty bound");
        // Rejection sampling keeps the draw exactly uniform.
        let zone = u64::MAX - (u64::MAX % bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of values for one test argument.
pub trait Strategy {
    /// The generated value type.
    type Value: std::fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: std::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical strategy, selected via [`any`].
pub trait Arbitrary: std::fmt::Debug + Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct Any<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// The canonical strategy for `A` (upstream `any::<A>()`).
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

/// Sub-modules mirroring upstream's `prop::` namespace.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Accepted length specifications: an exact length or a half-open
        /// range, mirroring upstream's `SizeRange` conversions.
        pub struct SizeRange(Range<usize>);

        impl From<usize> for SizeRange {
            fn from(exact: usize) -> Self {
                SizeRange(exact..exact + 1)
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(range: Range<usize>) -> Self {
                SizeRange(range)
            }
        }

        /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// Generates vectors whose length lies in `size` (half-open, like
        /// upstream's `1..max`, or exact when given a plain `usize`).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            let SizeRange(size) = size.into();
            assert!(size.start < size.end, "empty vec size range");
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.size.end - self.size.start) as u64;
                let len = self.size.start + rng.below(span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Random index selection.
    pub mod sample {
        use super::super::{Arbitrary, TestRng};

        /// A deferred uniform index: bound to a concrete collection length
        /// only when [`Index::get`]/[`Index::index`] is called.
        #[derive(Clone, Copy, Debug)]
        pub struct Index {
            raw: u64,
        }

        impl Index {
            /// Resolves to an index in `[0, len)`.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                (self.raw % len as u64) as usize
            }

            /// Picks an element of `slice` uniformly.
            pub fn get<'a, T>(&self, slice: &'a [T]) -> &'a T {
                &slice[self.index(slice.len())]
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Self {
                Self {
                    raw: rng.next_u64(),
                }
            }
        }
    }
}

/// Test-runner configuration and the case loop driving [`proptest!`].
pub mod test_runner {
    use super::TestRng;

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    fn env_cases() -> Option<u32> {
        std::env::var("PROPTEST_CASES").ok()?.parse().ok()
    }

    /// Deterministic per-case seed: FNV-1a over the property name, mixed
    /// with the case number.
    fn case_seed(name: &str, case: u32) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash.wrapping_add(u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Runs `cases` cases of a property. The closure generates its inputs
    /// from the provided RNG and records their `Debug` form into the
    /// provided buffer *before* exercising the property, so failures can
    /// report what was generated (this shim does not shrink).
    pub fn run<F>(config: ProptestConfig, name: &str, mut property: F)
    where
        F: FnMut(&mut TestRng, &mut String),
    {
        let cases = env_cases().unwrap_or(config.cases);
        for case in 0..cases {
            let seed = case_seed(name, case);
            let mut rng = TestRng::from_seed(seed);
            let mut inputs = String::new();
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                property(&mut rng, &mut inputs)
            }));
            if let Err(payload) = outcome {
                eprintln!(
                    "proptest shim: property `{name}` failed at case {case} \
                     (seed {seed:#x}); no shrinking — generated inputs:\n{inputs}"
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use super::prop;
    pub use super::test_runner::ProptestConfig;
    pub use super::{any, Arbitrary, Just, Strategy, TestRng};
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run(
                    config,
                    stringify!($name),
                    |__rng: &mut $crate::TestRng, __inputs: &mut String| {
                        $(
                            let $arg = $crate::Strategy::generate(&($strat), __rng);
                            __inputs.push_str(&format!(
                                "  {} = {:?}\n", stringify!($arg), $arg
                            ));
                        )*
                        $body
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..500 {
            let v = Strategy::generate(&(3i64..9), &mut rng);
            assert!((3..9).contains(&v));
            let f = Strategy::generate(&(0.5f64..=1.5), &mut rng);
            assert!((0.5..=1.5).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..100 {
            let v = Strategy::generate(&prop::collection::vec(0u32..10, 1..5), &mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    fn index_picks_valid_elements() {
        let mut rng = TestRng::from_seed(3);
        let data = [10, 20, 30];
        for _ in 0..50 {
            let idx = Strategy::generate(&any::<prop::sample::Index>(), &mut rng);
            assert!(data.contains(idx.get(&data)));
        }
    }

    #[test]
    fn same_seed_is_deterministic() {
        let gen = |seed| {
            let mut rng = TestRng::from_seed(seed);
            Strategy::generate(&prop::collection::vec(0u64..1000, 1..20), &mut rng)
        };
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(7), gen(8));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_and_asserts(a in 0i64..100, pair in (0u32..4, 1.0f64..2.0)) {
            prop_assert!((0..100).contains(&a));
            let (small, unit) = pair;
            prop_assert!(small < 4);
            prop_assert!((1.0..2.0).contains(&unit));
            prop_assert_eq!(a, a);
            prop_assert_ne!(unit, 0.0);
        }
    }
}
