//! Vendored JSON codec over the serde shim (see `vendor/README.md`).
//!
//! Serializes [`serde::Value`] trees to JSON text and parses JSON text back.
//! Numbers are limited to `i64`/`u64`/`f64`; map key order is preserved.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Result alias matching upstream's `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    out.push('\n');
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Deserializes a value of type `T` from a [`Value`] tree.
pub fn from_value<T: for<'de> Deserialize<'de>>(value: Value) -> Result<T> {
    T::from_value(&value)
}

/// Parses JSON text into a value of type `T`.
pub fn from_str<T: for<'de> Deserialize<'de>>(text: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let text = format!("{f}");
        out.push_str(&text);
        // Keep round floats recognizably floating-point, like upstream.
        if !text.contains('.') && !text.contains('e') && !text.contains('E') {
            out.push_str(".0");
        }
    } else {
        // JSON has no Inf/NaN; upstream writes null.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected input {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_seq(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // workspace's data; reject rather than corrupt.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::custom("unpaired surrogate"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        other => return Err(Error::custom(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Bulk-copy the run up to the next quote or escape.
                    // Scanning bytes is UTF-8-safe (`"` and `\` never
                    // occur as continuation bytes), and validating only
                    // the run keeps parsing linear — re-validating from
                    // here to the end of input for every character made
                    // megabyte documents quadratic.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::custom("invalid utf-8"))?;
                    out.push_str(run);
                }
                None => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(if i >= 0 {
                    Value::UInt(i as u64)
                } else {
                    Value::Int(i)
                });
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_value() {
        let value = Value::Map(vec![
            ("name".to_string(), Value::Str("w1 \"quoted\"".to_string())),
            ("count".to_string(), Value::UInt(3)),
            ("delta".to_string(), Value::Int(-7)),
            ("ratio".to_string(), Value::Float(1.5)),
            (
                "items".to_string(),
                Value::Seq(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let text = to_string(&value).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let back: Value = from_str(" { \"a\" : [ 1 , 2.0 ] , \"b\" : \"x\\ny\" } ").unwrap();
        let entries = back.as_map().unwrap();
        assert_eq!(entries[0].0, "a");
        assert_eq!(entries[1].1, Value::Str("x\ny".to_string()));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn pretty_output_is_indented() {
        let value = Value::Map(vec![("a".to_string(), Value::UInt(1))]);
        let text = to_string_pretty(&value).unwrap();
        assert_eq!(text, "{\n  \"a\": 1\n}\n");
    }

    #[test]
    fn typed_round_trip() {
        let v: Vec<u64> = from_str("[1,2,3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
    }

    #[test]
    fn strings_mix_runs_escapes_and_multibyte() {
        let cases = [
            "plain",
            "tab\there",
            "quote\"and\\slash",
            "héllo wörld — ∑ 日本語",
            "run\nrun\"run\\é",
            "",
            "\\",
            "\u{1}\u{1f}",
        ];
        for case in cases {
            let text = to_string(&case.to_string()).unwrap();
            let back: String = from_str(&text).unwrap();
            assert_eq!(back, case, "round trip of {case:?}");
        }
    }

    #[test]
    fn megabyte_documents_parse_in_linear_time() {
        // Regression guard: per-character re-validation of the whole
        // remaining input once made string-heavy multi-megabyte
        // documents (engine snapshots) take tens of seconds to parse.
        let entry = r#"{"kind":"SlotPublished","slot":12345,"node":67,"price":"1.702500"}"#;
        let doc = format!(
            "[{}]",
            std::iter::repeat_n(entry, 40_000)
                .collect::<Vec<_>>()
                .join(",")
        );
        assert!(doc.len() > 2_000_000);
        let started = std::time::Instant::now();
        let value: Value = from_str(&doc).unwrap();
        assert_eq!(value.as_seq().unwrap().len(), 40_000);
        // Generous bound: ~40 ms release / well under 1 s debug when
        // linear; the quadratic version took >10 s in release.
        assert!(
            started.elapsed() < std::time::Duration::from_secs(8),
            "large-document parse took {:?}",
            started.elapsed()
        );
    }
}
