//! Vendored API-compatible shim for `serde` (see `vendor/README.md`).
//!
//! Instead of serde's visitor-based data model, this shim routes everything
//! through an owned [`Value`] tree: `Serialize` renders a value into a
//! `Value`, `Deserialize` reads one back. `serde_json` (also vendored)
//! prints and parses that tree. The public trait names, module paths, and
//! derive-macro names match upstream so that workspace code compiles
//! unchanged.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every (de)serialization goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also the unit value).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer outside `i64` range.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The sequence items, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// The single error type for both directions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn custom(message: impl fmt::Display) -> Self {
        Error {
            message: message.to_string(),
        }
    }

    /// Creates a "type mismatch" error.
    pub fn expected(what: &str, got: &Value) -> Self {
        Error::custom(format!("expected {what}, found {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Renders `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
///
/// The lifetime parameter exists only for upstream signature compatibility
/// (`serde::de::DeserializeOwned` bounds); this shim always deserializes
/// from an owned tree.
pub trait Deserialize<'de>: Sized {
    /// Reads a `Self` out of a [`Value`].
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Upstream-compatible module path for [`Serialize`].
pub mod ser {
    pub use crate::{Error, Serialize};
}

/// Upstream-compatible module path for [`Deserialize`] and `DeserializeOwned`.
pub mod de {
    pub use crate::{Deserialize, Error};

    /// A type deserializable without borrowing from the input.
    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}
    impl<T: for<'de> crate::Deserialize<'de>> DeserializeOwned for T {}
}

/// Looks up a required field in a map value (derive-macro helper).
pub fn get_field<'a>(value: &'a Value, name: &str) -> Result<&'a Value, Error> {
    let entries = value
        .as_map()
        .ok_or_else(|| Error::expected("map", value))?;
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(i64::from(*self))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    other => Err(Error::expected("integer", other)),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                match i64::try_from(wide) {
                    Ok(n) => Value::Int(n),
                    Err(_) => Value::UInt(wide),
                }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    other => Err(Error::expected("integer", other)),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::Int(*self as i64)
    }
}

impl<'de> Deserialize<'de> for isize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        i64::from_value(value).and_then(|n| {
            isize::try_from(n).map_err(|_| Error::custom("integer out of range for isize"))
        })
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(x) => Ok(*x),
            Value::Int(n) => Ok(*n as f64),
            Value::UInt(n) => Ok(*n as f64),
            other => Err(Error::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::expected("single-char string", value))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected a single-character string")),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl<'de> Deserialize<'de> for () {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(()),
            other => Err(Error::expected("null", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_seq()
            .ok_or_else(|| Error::expected("sequence", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let vec: Vec<T> = Vec::from_value(value)?;
        <[T; N]>::try_from(vec)
            .map_err(|v: Vec<T>| Error::custom(format!("expected {N} elements, found {}", v.len())))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_seq().ok_or_else(|| Error::expected("sequence", value))?;
                let expected = [$(stringify!($idx)),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected a {expected}-tuple, found {} elements", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

// Maps serialize as a sequence of `[key, value]` pairs so that non-string
// keys (newtype ids, tuples) round-trip losslessly through JSON, which only
// allows string object keys.
fn map_to_value<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
) -> Value {
    Value::Seq(
        entries
            .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
            .collect(),
    )
}

fn map_from_value<'de, K: Deserialize<'de>, V: Deserialize<'de>>(
    value: &Value,
) -> Result<Vec<(K, V)>, Error> {
    value
        .as_seq()
        .ok_or_else(|| Error::expected("sequence of [key, value] pairs", value))?
        .iter()
        .map(|pair| {
            let items = pair
                .as_seq()
                .filter(|items| items.len() == 2)
                .ok_or_else(|| Error::expected("[key, value] pair", pair))?;
            Ok((K::from_value(&items[0])?, V::from_value(&items[1])?))
        })
        .collect()
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(map_from_value::<K, V>(value)?.into_iter().collect())
    }
}

impl<K: Serialize + Ord, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        map_to_value(entries.into_iter())
    }
}

impl<'de, K, V, S> Deserialize<'de> for HashMap<K, V, S>
where
    K: Deserialize<'de> + std::hash::Hash + Eq,
    V: Deserialize<'de>,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(map_from_value::<K, V>(value)?.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for std::collections::BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_seq()
            .ok_or_else(|| Error::expected("sequence", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize + Ord, S> Serialize for std::collections::HashSet<T, S> {
    fn to_value(&self) -> Value {
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Seq(items.into_iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T, S> Deserialize<'de> for std::collections::HashSet<T, S>
where
    T: Deserialize<'de> + std::hash::Hash + Eq,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_seq()
            .ok_or_else(|| Error::expected("sequence", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i64::from_value(&42i64.to_value()).unwrap(), 42);
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<i32>::from_value(&None::<i32>.to_value()).unwrap(),
            None
        );
        assert_eq!(
            Vec::<i32>::from_value(&vec![1, 2, 3].to_value()).unwrap(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn field_lookup_reports_missing() {
        let v = Value::Map(vec![("a".into(), Value::Int(1))]);
        assert!(get_field(&v, "a").is_ok());
        assert!(get_field(&v, "b").is_err());
        assert!(get_field(&Value::Null, "a").is_err());
    }
}
