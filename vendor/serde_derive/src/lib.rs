//! Vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the serde
//! shim (see `vendor/README.md`).
//!
//! Implemented directly on `proc_macro` token trees — no `syn`/`quote`
//! available offline. Supports exactly the shapes this workspace derives:
//!
//! * structs with named fields,
//! * tuple structs (newtypes serialize transparently),
//! * unit structs,
//! * enums with unit, tuple, and struct variants (externally tagged, like
//!   upstream serde's default representation).
//!
//! Generic types and `#[serde(...)]` attributes are intentionally not
//! supported; hitting either fails the build with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// `struct S { a: A, b: B }` — field names in declaration order.
    Named(Vec<String>),
    /// `struct S(A, B);` — arity.
    Tuple(usize),
    /// `struct S;`
    Unit,
    /// `enum E { ... }`
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

/// Derives `serde::Serialize` for the supported shapes.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated impl parses")
}

/// Derives `serde::Deserialize` for the supported shapes.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse(input: TokenStream) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attributes(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let kind = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic type `{name}` is not supported");
    }

    let shape = match kind.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => panic!("serde shim derive: unexpected struct body {other:?}"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    };

    Parsed { name, shape }
}

fn skip_attributes(tokens: &[TokenTree], pos: &mut usize) {
    while matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *pos += 1; // '#'
        match tokens.get(*pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                let inner = g.stream().to_string();
                if inner.starts_with("serde") {
                    panic!("serde shim derive: #[serde(...)] attributes are not supported");
                }
                *pos += 1;
            }
            other => panic!("serde shim derive: malformed attribute {other:?}"),
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *pos += 1;
        if matches!(
            tokens.get(*pos),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *pos += 1; // pub(crate) / pub(super)
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            id.to_string()
        }
        other => panic!("serde shim derive: expected identifier, found {other:?}"),
    }
}

/// Parses `a: A, b: B, ...` — returns the field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        let field = expect_ident(&tokens, &mut pos);
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => {
                panic!("serde shim derive: expected `:` after field `{field}`, found {other:?}")
            }
        }
        skip_type(&tokens, &mut pos);
        fields.push(field);
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    fields
}

/// Skips a type expression up to a top-level `,` (angle-bracket aware).
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(token) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *pos += 1;
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut pos);
        count += 1;
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                pos += 1;
                VariantShape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                pos += 1;
                VariantShape::Named(fields)
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant `= expr` if present.
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            pos += 1;
            while pos < tokens.len()
                && !matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',')
            {
                pos += 1;
            }
        }
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(parsed: &Parsed) -> String {
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Map(::std::vec::Vec::from([{}]))",
                entries.join(", ")
            )
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "::serde::Value::Seq(::std::vec::Vec::from([{}]))",
                items.join(", ")
            )
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| gen_serialize_variant(name, v))
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
           fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
}

fn gen_serialize_variant(enum_name: &str, variant: &Variant) -> String {
    let v = &variant.name;
    match &variant.shape {
        VariantShape::Unit => format!(
            "{enum_name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
        ),
        VariantShape::Tuple(arity) => {
            let binders: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
            let payload = if *arity == 1 {
                "::serde::Serialize::to_value(__f0)".to_string()
            } else {
                let items: Vec<String> = binders
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                format!(
                    "::serde::Value::Seq(::std::vec::Vec::from([{}]))",
                    items.join(", ")
                )
            };
            format!(
                "{enum_name}::{v}({binder_list}) => ::serde::Value::Map(\
                   ::std::vec::Vec::from([(::std::string::String::from(\"{v}\"), {payload})])),",
                binder_list = binders.join(", ")
            )
        }
        VariantShape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                    )
                })
                .collect();
            format!(
                "{enum_name}::{v} {{ {field_list} }} => ::serde::Value::Map(\
                   ::std::vec::Vec::from([(::std::string::String::from(\"{v}\"), \
                   ::serde::Value::Map(::std::vec::Vec::from([{entry_list}])))])),",
                field_list = fields.join(", "),
                entry_list = entries.join(", ")
            )
        }
    }
}

fn gen_deserialize(parsed: &Parsed) -> String {
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::get_field(__value, \"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        Shape::Tuple(arity) => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = __value.as_seq().ok_or_else(|| \
                     ::serde::Error::expected(\"sequence\", __value))?; \
                 if __items.len() != {arity} {{ \
                     return ::std::result::Result::Err(::serde::Error::custom(\
                         \"wrong tuple arity for {name}\")); \
                 }} \
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Shape::Unit => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => gen_deserialize_enum(name, variants),
    };
    format!(
        "#[automatically_derived] impl<'de> ::serde::Deserialize<'de> for {name} {{ \
           fn from_value(__value: &::serde::Value) -> \
               ::std::result::Result<Self, ::serde::Error> {{ {body} }} \
         }}"
    )
}

fn gen_deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.shape, VariantShape::Unit))
        .map(|v| {
            format!(
                "\"{v}\" => return ::std::result::Result::Ok({name}::{v}),",
                v = v.name
            )
        })
        .collect();
    let payload_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let vn = &v.name;
            match &v.shape {
                VariantShape::Unit => None,
                VariantShape::Tuple(1) => Some(format!(
                    "\"{vn}\" => return ::std::result::Result::Ok(\
                        {name}::{vn}(::serde::Deserialize::from_value(__payload)?)),"
                )),
                VariantShape::Tuple(arity) => {
                    let inits: Vec<String> = (0..*arity)
                        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                        .collect();
                    Some(format!(
                        "\"{vn}\" => {{ \
                           let __items = __payload.as_seq().ok_or_else(|| \
                               ::serde::Error::expected(\"sequence\", __payload))?; \
                           if __items.len() != {arity} {{ \
                               return ::std::result::Result::Err(::serde::Error::custom(\
                                   \"wrong payload arity for {name}::{vn}\")); \
                           }} \
                           return ::std::result::Result::Ok({name}::{vn}({inits})); \
                         }}",
                        inits = inits.join(", ")
                    ))
                }
                VariantShape::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(\
                                     ::serde::get_field(__payload, \"{f}\")?)?"
                            )
                        })
                        .collect();
                    Some(format!(
                        "\"{vn}\" => return ::std::result::Result::Ok(\
                             {name}::{vn} {{ {inits} }}),",
                        inits = inits.join(", ")
                    ))
                }
            }
        })
        .collect();

    format!(
        "if let ::serde::Value::Str(__s) = __value {{ \
             match __s.as_str() {{ {unit_arms} _ => {{}} }} \
         }} \
         if let ::std::option::Option::Some(__entries) = __value.as_map() {{ \
             if __entries.len() == 1 {{ \
                 let (__tag, __payload) = (&__entries[0].0, &__entries[0].1); \
                 match __tag.as_str() {{ {payload_arms} _ => {{}} }} \
             }} \
         }} \
         ::std::result::Result::Err(::serde::Error::custom(\
             \"unknown variant for enum {name}\"))",
        unit_arms = unit_arms.join(" "),
        payload_arms = payload_arms.join(" ")
    )
}
