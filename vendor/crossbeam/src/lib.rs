//! Vendored scoped-thread shim for `crossbeam` (see `vendor/README.md`).
//!
//! Exposes `crossbeam::scope` with the upstream signature — the closure
//! receives a [`Scope`], `spawn` passes the scope back into the thread
//! closure, and `scope` returns `Result` — implemented on top of
//! `std::thread::scope`.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::thread;

/// A scope handle that spawns threads joined before `scope` returns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
    _marker: PhantomData<&'env ()>,
}

/// Handle to a spawned scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread inside the scope. The closure receives the scope,
    /// matching the upstream crossbeam signature.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || {
                let scope = Scope {
                    inner,
                    _marker: PhantomData,
                };
                f(&scope)
            }),
        }
    }
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish, returning its result or the panic
    /// payload.
    pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
        self.inner.join()
    }
}

/// Runs `f` with a thread scope; all spawned threads are joined before this
/// returns. Returns `Err` with the panic payload if the closure panics.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        thread::scope(|s| {
            let scope = Scope {
                inner: s,
                _marker: PhantomData,
            };
            f(&scope)
        })
    }))
}

#[cfg(test)]
mod tests {
    #[test]
    fn spawns_and_joins() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn panics_surface_as_err() {
        let result = super::scope(|_| panic!("boom"));
        assert!(result.is_err());
    }
}
