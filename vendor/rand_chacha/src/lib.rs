//! Vendored ChaCha8 random number generator (see `vendor/README.md`).
//!
//! A genuine ChaCha permutation with 8 rounds over a 32-byte seed, exposed
//! through the shimmed [`rand::RngCore`] / [`rand::SeedableRng`] traits.
//! Output streams differ from upstream `rand_chacha` (block scheduling and
//! `seed_from_u64` expansion are not bit-compatible); within this workspace
//! only determinism per seed matters.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, keyed by a 32-byte seed.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means "exhausted".
    cursor: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A resumable capture of a [`ChaCha8Rng`]'s position in its stream.
///
/// The buffer is *not* stored: ChaCha output is a pure function of
/// `(key, block counter)`, so [`ChaCha8Rng::restore`] regenerates the
/// in-flight block and re-seeks to `cursor`. Two generators — the captured
/// one and a restored one — produce identical streams from the capture
/// point onward.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaChaState {
    /// The 8-word key the generator was seeded with.
    pub key: [u32; 8],
    /// The next block counter `refill` would use.
    pub counter: u64,
    /// Next unread word in the current block; 16 means "exhausted".
    pub cursor: usize,
}

impl ChaCha8Rng {
    /// Captures the generator's position for later [`Self::restore`].
    pub fn capture(&self) -> ChaChaState {
        ChaChaState {
            key: self.key,
            counter: self.counter,
            cursor: self.cursor,
        }
    }

    /// Rebuilds a generator at a captured position.
    ///
    /// When the capture was taken mid-block (`cursor < 16`) the block the
    /// buffer held was generated from `counter - 1` (`refill` increments
    /// after generating), so the restore refills from there and the
    /// post-refill counter lands back on the captured value.
    pub fn restore(state: ChaChaState) -> Self {
        let mut rng = ChaCha8Rng {
            key: state.key,
            counter: state.counter,
            buffer: [0; 16],
            cursor: 16,
        };
        if state.cursor < 16 {
            rng.counter = state.counter.wrapping_sub(1);
            rng.refill();
            rng.cursor = state.cursor;
            debug_assert_eq!(rng.counter, state.counter);
        }
        rng
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column + diagonal).
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(input.iter()) {
            *word = word.wrapping_add(*init);
        }
        self.buffer = state;
        self.cursor = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            counter: 0,
            buffer: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.buffer[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn capture_restore_resumes_identical_stream() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        // Exercise every cursor phase: fresh (16), mid-block, and the
        // block boundary.
        for warmup in [0usize, 1, 7, 15, 16, 17, 31, 32, 100] {
            let mut original = rng.clone();
            for _ in 0..warmup {
                original.next_u32();
            }
            let mut restored = ChaCha8Rng::restore(original.capture());
            for _ in 0..64 {
                assert_eq!(original.next_u64(), restored.next_u64(), "warmup {warmup}");
            }
        }
        rng.next_u32();
    }

    #[test]
    fn capture_is_a_pure_read() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        a.next_u32();
        b.next_u32();
        let _ = a.capture();
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn output_looks_mixed() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..64).map(|_| rng.next_u64().count_ones()).sum();
        // 64 draws × 64 bits: expect about half ones.
        assert!((1500..=2600).contains(&ones), "popcount {ones}");
    }
}
